"""Named dataset stand-ins for the paper's evaluation graphs.

The paper evaluates on seven real-world skewed graphs (Table 2: Pokec,
Flickr, LiveJournal, Orkut, Twitter, Friendster, WebUK) and three road
networks (Table 6: California, Pennsylvania, Texas).  None of those are
shippable here (billions of edges, no network access), so this module
registers *scaled-down synthetic stand-ins* that preserve the features
partitioning quality depends on:

* skewed datasets use RMAT with per-dataset density (edge factor) chosen
  to match the real graph's average degree, so "hard to partition"
  datasets (Orkut: avg degree 76) stay hard relative to "easy" ones
  (WebUK-like web graphs, which have strong locality — modelled with a
  less-skewed RMAT mix);
* relative size ordering is preserved (Pokec < Flickr < LiveJ < Orkut <
  Twitter < Friendster < WebUK);
* road networks use the perturbed-grid generator.

The substitution is documented in DESIGN.md §2.  Every stand-in is a
:class:`DatasetSpec` so benchmarks can iterate the registry; all are
deterministic given the registry seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_road_network, rmat_edges

__all__ = ["DatasetSpec", "DATASETS", "SKEWED_DATASETS", "ROAD_DATASETS",
           "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one named dataset stand-in.

    Attributes
    ----------
    name:
        Registry key, matching the paper's dataset name (lower-case).
    kind:
        ``"rmat"`` or ``"road"``.
    params:
        Generator keyword arguments.
    paper_vertices, paper_edges:
        The real graph's size, recorded for documentation and for the
        scale-factor note printed by the bench harness.
    skewed:
        True for the Table 2 social/web graphs, False for road networks.
    """

    name: str
    kind: str
    params: dict = field(hash=False)
    paper_vertices: int = 0
    paper_edges: int = 0
    skewed: bool = True

    def generate(self, seed: int = 0) -> np.ndarray:
        """Materialise the stand-in's canonical edge array."""
        if self.kind == "rmat":
            return rmat_edges(seed=seed, **self.params)
        if self.kind == "road":
            return grid_road_network(seed=seed, **self.params)
        raise ValueError(f"unknown dataset kind {self.kind!r}")


def _m(x: float) -> int:
    return int(x * 1_000_000)


# Skewed stand-ins.  ``scale`` fixes the vertex count (2**scale); the
# edge factor is tuned to the real graph's density.  ``a`` controls the
# degree skew: web graphs (WebUK) have strong locality => milder skew.
SKEWED_DATASETS: dict[str, DatasetSpec] = {
    "pokec": DatasetSpec(
        "pokec", "rmat", {"scale": 12, "edge_factor": 19},
        paper_vertices=_m(1.63), paper_edges=_m(30.62)),
    "flickr": DatasetSpec(
        "flickr", "rmat",
        {"scale": 12, "edge_factor": 14, "a": 0.65, "b": 0.15, "c": 0.15},
        paper_vertices=_m(2.30), paper_edges=_m(33.14)),
    "livejournal": DatasetSpec(
        "livejournal", "rmat", {"scale": 13, "edge_factor": 14},
        paper_vertices=_m(4.84), paper_edges=_m(68.47)),
    "orkut": DatasetSpec(
        "orkut", "rmat", {"scale": 12, "edge_factor": 38},
        paper_vertices=_m(3.07), paper_edges=_m(117.18)),
    "twitter": DatasetSpec(
        "twitter", "rmat", {"scale": 14, "edge_factor": 35, "a": 0.6},
        paper_vertices=_m(41.65), paper_edges=_m(1460.0)),
    "friendster": DatasetSpec(
        "friendster", "rmat", {"scale": 14, "edge_factor": 28},
        paper_vertices=_m(65.60), paper_edges=_m(1800.0)),
    "webuk": DatasetSpec(
        "webuk", "rmat", {"scale": 14, "edge_factor": 35, "a": 0.72, "b": 0.12, "c": 0.12},
        paper_vertices=_m(105.15), paper_edges=_m(3720.0)),
}

# Road-network stand-ins (Table 6).  Real graphs: CA 1.96M/2.76M,
# PA 1.08M/1.54M, TX 1.37M/1.92M — avg degree ~2.8, near-planar.
ROAD_DATASETS: dict[str, DatasetSpec] = {
    "roadnet-ca": DatasetSpec(
        "roadnet-ca", "road", {"rows": 110, "cols": 110, "extra_fraction": 0.42},
        paper_vertices=_m(1.96), paper_edges=_m(2.76), skewed=False),
    "roadnet-pa": DatasetSpec(
        "roadnet-pa", "road", {"rows": 82, "cols": 82, "extra_fraction": 0.43},
        paper_vertices=_m(1.08), paper_edges=_m(1.54), skewed=False),
    "roadnet-tx": DatasetSpec(
        "roadnet-tx", "road", {"rows": 92, "cols": 92, "extra_fraction": 0.40},
        paper_vertices=_m(1.37), paper_edges=_m(1.92), skewed=False),
}

DATASETS: dict[str, DatasetSpec] = {**SKEWED_DATASETS, **ROAD_DATASETS}


def load_dataset(name: str, seed: int = 0, as_csr: bool = True):
    """Generate a registered dataset stand-in by name.

    Returns a :class:`~repro.graph.csr.CSRGraph` (default) or the raw
    canonical edge array when ``as_csr=False``.
    """
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    edges = DATASETS[key].generate(seed=seed)
    return CSRGraph(edges) if as_csr else edges
