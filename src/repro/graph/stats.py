"""Graph statistics: degree skew, power-law fitting, components.

The paper's entire premise is about *skewed* graphs (§1: a few hubs,
many low-degree vertices), and §6 models them with the Clauset et al.
discrete power law.  This module provides the measurement side:

* :func:`degree_statistics` — summary numbers (mean/median/max degree,
  hub ratio, Gini coefficient of the degree distribution);
* :func:`fit_powerlaw_alpha` — the Clauset et al. maximum-likelihood
  estimator for the discrete power-law exponent, so stand-in datasets
  can be checked against the α range the paper's Table 1 assumes;
* :func:`connected_components` — union-find components (used to sanity
  check generators and to explain expansion behaviour on disconnected
  graphs);
* :func:`is_skewed` — the operational "is this a Table 2-style graph or
  a Table 6-style graph" predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "DegreeStatistics",
    "degree_statistics",
    "fit_powerlaw_alpha",
    "connected_components",
    "num_connected_components",
    "is_skewed",
]


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary statistics of a graph's degree distribution."""

    mean: float
    median: float
    max: int
    #: fraction of total degree held by the top 1% of vertices
    hub_share: float
    #: Gini coefficient of the degree distribution (0 = uniform)
    gini: float


def degree_statistics(graph: CSRGraph,
                      include_isolated: bool = False) -> DegreeStatistics:
    """Compute :class:`DegreeStatistics` for ``graph``.

    By default isolated vertices are excluded, matching how the paper's
    metrics normalise by covered vertices.
    """
    degrees = graph.degrees()
    if not include_isolated:
        degrees = degrees[degrees > 0]
    if len(degrees) == 0:
        return DegreeStatistics(0.0, 0.0, 0, 0.0, 0.0)

    sorted_deg = np.sort(degrees)
    top = max(1, len(sorted_deg) // 100)
    hub_share = float(sorted_deg[-top:].sum() / sorted_deg.sum())

    # Gini via the sorted-cumulative formula.
    n = len(sorted_deg)
    index = np.arange(1, n + 1)
    gini = float((2 * index - n - 1).dot(sorted_deg)
                 / (n * sorted_deg.sum()))

    return DegreeStatistics(
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        max=int(degrees.max()),
        hub_share=hub_share,
        gini=gini,
    )


def fit_powerlaw_alpha(graph: CSRGraph, d_min: int = 1) -> float:
    """Clauset et al. MLE for the discrete power-law exponent.

    Uses the standard continuous approximation
    ``alpha ~= 1 + n / sum(ln(d / (d_min - 0.5)))`` over degrees
    ``>= d_min``, which is accurate for the α ∈ (2, 3) range the paper
    works in.  Raises on graphs with no vertex of degree >= d_min.
    """
    if d_min < 1:
        raise ValueError("d_min must be >= 1")
    degrees = graph.degrees()
    degrees = degrees[degrees >= d_min]
    if len(degrees) == 0:
        raise ValueError(f"no vertices with degree >= {d_min}")
    return 1.0 + len(degrees) / float(
        np.log(degrees / (d_min - 0.5)).sum())


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (labels are component-min vertex ids).

    Plain union-find over the edge list; isolated vertices form
    singleton components.
    """
    parent = np.arange(graph.num_vertices, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    for u, v in graph.edges:
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            # union by smaller root id keeps labels canonical
            if ru < rv:
                parent[rv] = ru
            else:
                parent[ru] = rv

    return np.array([find(v) for v in range(graph.num_vertices)],
                    dtype=np.int64)


def num_connected_components(graph: CSRGraph,
                             ignore_isolated: bool = True) -> int:
    """Number of components, by default skipping isolated vertices."""
    labels = connected_components(graph)
    if ignore_isolated:
        covered = graph.degrees() > 0
        labels = labels[covered]
    if len(labels) == 0:
        return 0
    return len(np.unique(labels))


def is_skewed(graph: CSRGraph, hub_share_threshold: float = 0.10,
              max_to_mean_threshold: float = 10.0) -> bool:
    """Operational skew check.

    A graph counts as skewed (Table 2-like) when its top-1% vertices
    hold a large share of the degree mass *and* the max degree towers
    over the mean — both are true for the social/web stand-ins and
    false for road networks.
    """
    stats = degree_statistics(graph)
    if stats.mean == 0:
        return False
    return (stats.hub_share >= hub_share_threshold
            and stats.max >= max_to_mean_threshold * stats.mean)
