"""Edge-list utilities.

Every graph in this library is, at its root, an ``(m, 2)`` int64 numpy
array of undirected edges.  The canonical form used throughout is:

* each edge stored once, with ``src <= dst`` (lexicographically sorted
  rows),
* no duplicate rows,
* self-loops removed (the partitioning problem in the paper is defined
  on simple undirected graphs).

The helpers here convert arbitrary pair lists into that form, relabel
vertex ids into a compact ``0..n-1`` range, and read/write simple TSV
edge files, which is the interchange format the examples use.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "edges_from_pairs",
    "canonical_edges",
    "relabel_compact",
    "num_vertices",
    "vertex_ids",
    "save_edges_tsv",
    "load_edges_tsv",
    "random_permute_edges",
]


def edges_from_pairs(pairs) -> np.ndarray:
    """Convert an iterable of ``(u, v)`` pairs into an ``(m, 2)`` array.

    Accepts lists of tuples, lists of lists, or an existing array.
    The result is *not* canonicalised; call :func:`canonical_edges`
    for that.
    """
    arr = np.asarray(list(pairs) if not isinstance(pairs, np.ndarray) else pairs,
                     dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edge array must have shape (m, 2), got {arr.shape}")
    return arr


def canonical_edges(edges: np.ndarray) -> np.ndarray:
    """Return the canonical undirected form of ``edges``.

    Rows are oriented ``src <= dst``, self-loops dropped, duplicates
    merged, and the result sorted lexicographically.  This is the form
    every partitioner in the library expects.
    """
    edges = edges_from_pairs(edges)
    if len(edges) == 0:
        return edges
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    if len(lo) == 0:
        return np.empty((0, 2), dtype=np.int64)
    stacked = np.stack([lo, hi], axis=1)
    return np.unique(stacked, axis=0)


def num_vertices(edges: np.ndarray) -> int:
    """Number of vertices implied by the edge list (``max id + 1``)."""
    if len(edges) == 0:
        return 0
    return int(edges.max()) + 1


def vertex_ids(edges: np.ndarray) -> np.ndarray:
    """Sorted array of distinct vertex ids that appear in ``edges``."""
    if len(edges) == 0:
        return np.empty(0, dtype=np.int64)
    return np.unique(edges)


def relabel_compact(edges: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Relabel vertex ids to a dense ``0..n-1`` range.

    Returns ``(new_edges, old_ids)`` where ``old_ids[new_id]`` recovers
    the original id.  Useful after generators that leave id gaps (RMAT
    leaves many isolated ids at low edge factors).
    """
    edges = edges_from_pairs(edges)
    if len(edges) == 0:
        return edges, np.empty(0, dtype=np.int64)
    old_ids, inverse = np.unique(edges, return_inverse=True)
    new_edges = inverse.reshape(edges.shape).astype(np.int64)
    return new_edges, old_ids


def random_permute_edges(edges: np.ndarray, seed: int = 0) -> np.ndarray:
    """Return ``edges`` with rows in a random order.

    Streaming partitioners (HDRF, SNE) are order-sensitive; benchmarks
    shuffle the stream with a fixed seed so runs are reproducible.
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(edges))
    return edges[order]


def save_edges_tsv(path, edges: np.ndarray) -> None:
    """Write one ``src\\tdst`` line per edge."""
    edges = edges_from_pairs(edges)
    with open(path, "w", encoding="utf-8") as fh:
        for u, v in edges:
            fh.write(f"{int(u)}\t{int(v)}\n")


def load_edges_tsv(path) -> np.ndarray:
    """Read an edge list written by :func:`save_edges_tsv`.

    Lines starting with ``#`` are skipped, so SNAP-format files load
    directly.
    """
    rows = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            rows.append((int(parts[0]), int(parts[1])))
    return edges_from_pairs(rows)
