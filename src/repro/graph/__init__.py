"""Graph substrate: storage, generators, and dataset registry.

This package provides everything the partitioners need to know about
graphs:

* :mod:`repro.graph.edgelist` — raw edge-list manipulation (canonical
  undirected form, dedup, relabeling, IO).
* :mod:`repro.graph.csr` — an immutable compressed-sparse-row adjacency
  structure (the same layout the paper uses inside allocation processes).
* :mod:`repro.graph.generators` — synthetic graph generators: RMAT
  (Graph500-style), Erdős–Rényi, Chung–Lu power-law, ring, complete,
  the ring+complete construction from Theorem 2, and grid-like road
  networks.
* :mod:`repro.graph.datasets` — named, scaled-down stand-ins for the
  real-world graphs evaluated in the paper.
"""

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import (
    canonical_edges,
    edges_from_pairs,
    load_edges_tsv,
    relabel_compact,
    save_edges_tsv,
)
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    grid_road_network,
    powerlaw_chung_lu,
    ring_graph,
    ring_plus_complete,
    rmat_edges,
)
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.stats import (
    degree_statistics,
    fit_powerlaw_alpha,
    is_skewed,
    num_connected_components,
)

__all__ = [
    "CSRGraph",
    "canonical_edges",
    "edges_from_pairs",
    "load_edges_tsv",
    "save_edges_tsv",
    "relabel_compact",
    "rmat_edges",
    "erdos_renyi",
    "powerlaw_chung_lu",
    "ring_graph",
    "complete_graph",
    "ring_plus_complete",
    "grid_road_network",
    "DATASETS",
    "load_dataset",
    "degree_statistics",
    "fit_powerlaw_alpha",
    "is_skewed",
    "num_connected_components",
]
