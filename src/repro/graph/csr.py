"""Immutable CSR adjacency structure.

The paper stores the graph inside each allocation process as a
compressed sparse row array (§4, "Data Structure"): a contiguous
``indptr`` / ``indices`` pair rather than hash maps, which is the source
of its order-of-magnitude memory advantage over ParMETIS/Sheep.  This
module provides the same structure for the whole library: generators
produce edge lists, everything that needs traversal builds a
:class:`CSRGraph`.

For an undirected graph each edge ``{u, v}`` appears twice in the
adjacency (once per endpoint); ``edge_ids`` maps each adjacency slot
back to the canonical edge index so per-edge state (e.g. "already
allocated") can live in one flat array.

Adjacency rows are sorted by neighbour id, which makes ``has_edge`` a
``np.searchsorted`` probe and keeps gather kernels cache-friendly.  The
build exploits the lexicographic order of canonical edges: the forward
half (``u -> v``, ``u < v``) is already grouped by ``u`` with ``v``
ascending, so only the backward half needs ordering — a stable integer
argsort (NumPy's radix counting sort) on the second endpoint — and the
two halves are scattered straight into their row segments.  No
comparison sort over the full ``2m`` symmetrised array is performed.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import canonical_edges

__all__ = ["CSRGraph", "adjacency_slots", "first_occurrence",
           "symmetrised_csr"]


def first_occurrence(values: np.ndarray) -> np.ndarray:
    """Indices of the first occurrence of each distinct value, in
    ascending position order — exactly the slots a sequential walk over
    ``values`` would act on (later duplicates see the work already
    done).  Shared by the vectorized kernels' order-preserving dedup.
    """
    _, first = np.unique(values, return_index=True)
    return np.sort(first)


def adjacency_slots(indptr: np.ndarray, rows: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the index ranges ``[indptr[r], indptr[r+1])`` of the
    given rows, in row order — the batched form of a per-row slice walk.

    Returns ``(slot_idx, counts)``: ``slot_idx`` indexes the flat
    adjacency arrays in (row, slot) order, ``counts`` is the per-row
    slice length.  Shared by every vectorized kernel that gathers whole
    adjacency slices (one-hop/two-hop allocation, NE expansion), so the
    arithmetic lives in exactly one place.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    bases = np.cumsum(counts) - counts
    slot_idx = np.arange(int(counts.sum()), dtype=np.int64) + np.repeat(
        starts - bases, counts)
    return slot_idx, counts


def symmetrised_csr(edges: np.ndarray, n: int
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build ``(indptr, indices, edge_ids)`` with neighbour-sorted rows.

    ``edges`` must be canonical (``u < v``, lexicographically sorted).
    Counting-sort bucketing: row x is [neighbours < x] ++
    [neighbours > x], each ascending.  The backward (v->u) half is
    grouped by v with u ascending via a stable integer argsort (NumPy's
    radix counting sort); the forward (u->v) half inherits its order
    from the lexicographically sorted canonical edges, so both halves
    scatter directly into place.  No comparison sort over the full
    ``2m`` symmetrised array is performed.
    """
    m = len(edges)
    indptr = np.zeros(n + 1, dtype=np.int64)
    indices = np.empty(2 * m, dtype=np.int64)
    edge_ids = np.empty(2 * m, dtype=np.int64)
    if m:
        u, v = edges[:, 0], edges[:, 1]
        cf = np.bincount(u, minlength=n)   # forward row sizes
        cb = np.bincount(v, minlength=n)   # backward row sizes
        np.cumsum(cf + cb, out=indptr[1:])
        eid = np.arange(m, dtype=np.int64)

        border = np.argsort(v, kind="stable")
        vs = v[border]
        pos_b = indptr[vs] + (np.arange(m) - (np.cumsum(cb) - cb)[vs])
        indices[pos_b] = u[border]
        edge_ids[pos_b] = border

        pos_f = indptr[u] + cb[u] + (np.arange(m) - (np.cumsum(cf) - cf)[u])
        indices[pos_f] = v
        edge_ids[pos_f] = eid
    return indptr, indices, edge_ids


class CSRGraph:
    """Undirected graph in CSR form.

    Parameters
    ----------
    edges:
        ``(m, 2)`` canonical edge array (see
        :func:`repro.graph.edgelist.canonical_edges`).  The constructor
        canonicalises defensively, so any pair list works.
    num_vertices:
        Optional vertex-count override.  Must be at least ``max id + 1``;
        ids in ``[0, num_vertices)`` with no incident edge are isolated
        vertices (degree 0).

    Attributes
    ----------
    indptr, indices:
        Standard CSR arrays over the *symmetrised* adjacency.
    edge_ids:
        Parallel to ``indices``; ``edge_ids[k]`` is the canonical edge
        index of the adjacency slot ``k``.
    edges:
        The canonical ``(m, 2)`` edge array; edge ``i`` is
        ``edges[i] = (u, v)`` with ``u < v``.
    """

    __slots__ = ("edges", "indptr", "indices", "edge_ids", "n", "m")

    def __init__(self, edges: np.ndarray, num_vertices: int | None = None):
        edges = canonical_edges(edges)
        self.edges = edges
        self.m = len(edges)
        inferred = int(edges.max()) + 1 if self.m else 0
        if num_vertices is None:
            num_vertices = inferred
        elif num_vertices < inferred:
            raise ValueError(
                f"num_vertices={num_vertices} smaller than max id + 1 = {inferred}")
        self.n = int(num_vertices)

        # Symmetrise: each canonical edge contributes (u->v) and (v->u).
        self.indptr, self.indices, self.edge_ids = symmetrised_csr(
            edges, self.n)

    @classmethod
    def from_csr_arrays(cls, edges: np.ndarray, indptr: np.ndarray,
                        indices: np.ndarray, edge_ids: np.ndarray
                        ) -> "CSRGraph":
        """Wrap prebuilt CSR arrays without copying or re-deriving.

        The arrays are trusted to be a consistent
        canonical-edges/symmetrised-CSR quadruple (as produced by the
        normal constructor).  Used by the shared-memory execution
        backend to reconstruct the graph in worker processes as
        zero-copy views over one shared segment.
        """
        graph = cls.__new__(cls)
        graph.edges = edges
        graph.m = len(edges)
        graph.n = len(indptr) - 1
        graph.indptr = indptr
        graph.indices = indices
        graph.edge_ids = edge_ids
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (including isolated ones)."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of canonical undirected edges."""
        return self.m

    def degree(self, v: int) -> int:
        """Degree of vertex ``v`` (each undirected edge counts once)."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees."""
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        """Maximum degree, 0 for an empty graph."""
        if self.n == 0:
            return 0
        return int(self.degrees().max())

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of ``v``, ascending (view into ``indices``)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def incident_edge_ids(self, v: int) -> np.ndarray:
        """Canonical edge ids incident to ``v`` (view into ``edge_ids``)."""
        return self.edge_ids[self.indptr[v]:self.indptr[v + 1]]

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        """Endpoints ``(u, v)`` with ``u < v`` of a canonical edge id."""
        u, v = self.edges[edge_id]
        return int(u), int(v)

    def has_edge(self, u: int, v: int) -> bool:
        """True if the undirected edge ``{u, v}`` exists.

        Binary search over the smaller (neighbour-sorted) adjacency row.
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            return False
        # Probe the smaller adjacency list.
        if self.degree(u) > self.degree(v):
            u, v = v, u
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < len(row) and int(row[i]) == v

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def average_degree(self) -> float:
        """Mean degree ``2m / n`` (0 for the empty graph)."""
        if self.n == 0:
            return 0.0
        return 2.0 * self.m / self.n

    def memory_bytes(self) -> int:
        """Bytes held by the CSR arrays.

        This is the quantity Figure 9's "mem score" normalises: the
        resident size of the graph structure itself.
        """
        return (self.edges.nbytes + self.indptr.nbytes
                + self.indices.nbytes + self.edge_ids.nbytes)

    def subgraph_edges(self, edge_mask: np.ndarray) -> np.ndarray:
        """Canonical edges selected by a boolean mask over edge ids."""
        return self.edges[edge_mask]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.n}, m={self.m})"
