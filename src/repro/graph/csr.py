"""Immutable CSR adjacency structure.

The paper stores the graph inside each allocation process as a
compressed sparse row array (§4, "Data Structure"): a contiguous
``indptr`` / ``indices`` pair rather than hash maps, which is the source
of its order-of-magnitude memory advantage over ParMETIS/Sheep.  This
module provides the same structure for the whole library: generators
produce edge lists, everything that needs traversal builds a
:class:`CSRGraph`.

For an undirected graph each edge ``{u, v}`` appears twice in the
adjacency (once per endpoint); ``edge_ids`` maps each adjacency slot
back to the canonical edge index so per-edge state (e.g. "already
allocated") can live in one flat array.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import canonical_edges

__all__ = ["CSRGraph"]


class CSRGraph:
    """Undirected graph in CSR form.

    Parameters
    ----------
    edges:
        ``(m, 2)`` canonical edge array (see
        :func:`repro.graph.edgelist.canonical_edges`).  The constructor
        canonicalises defensively, so any pair list works.
    num_vertices:
        Optional vertex-count override.  Must be at least ``max id + 1``;
        ids in ``[0, num_vertices)`` with no incident edge are isolated
        vertices (degree 0).

    Attributes
    ----------
    indptr, indices:
        Standard CSR arrays over the *symmetrised* adjacency.
    edge_ids:
        Parallel to ``indices``; ``edge_ids[k]`` is the canonical edge
        index of the adjacency slot ``k``.
    edges:
        The canonical ``(m, 2)`` edge array; edge ``i`` is
        ``edges[i] = (u, v)`` with ``u < v``.
    """

    __slots__ = ("edges", "indptr", "indices", "edge_ids", "n", "m")

    def __init__(self, edges: np.ndarray, num_vertices: int | None = None):
        edges = canonical_edges(edges)
        self.edges = edges
        self.m = len(edges)
        inferred = int(edges.max()) + 1 if self.m else 0
        if num_vertices is None:
            num_vertices = inferred
        elif num_vertices < inferred:
            raise ValueError(
                f"num_vertices={num_vertices} smaller than max id + 1 = {inferred}")
        self.n = int(num_vertices)

        # Symmetrise: each canonical edge contributes (u->v) and (v->u).
        src = np.concatenate([edges[:, 0], edges[:, 1]]) if self.m else np.empty(0, np.int64)
        dst = np.concatenate([edges[:, 1], edges[:, 0]]) if self.m else np.empty(0, np.int64)
        eid = np.concatenate([np.arange(self.m), np.arange(self.m)]) if self.m else np.empty(0, np.int64)

        order = np.argsort(src, kind="stable")
        src, dst, eid = src[order], dst[order], eid[order]

        self.indptr = np.zeros(self.n + 1, dtype=np.int64)
        if self.m:
            counts = np.bincount(src, minlength=self.n)
            np.cumsum(counts, out=self.indptr[1:])
        self.indices = dst.astype(np.int64)
        self.edge_ids = eid.astype(np.int64)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (including isolated ones)."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of canonical undirected edges."""
        return self.m

    def degree(self, v: int) -> int:
        """Degree of vertex ``v`` (each undirected edge counts once)."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees."""
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        """Maximum degree, 0 for an empty graph."""
        if self.n == 0:
            return 0
        return int(self.degrees().max())

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of ``v`` (view into ``indices``)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def incident_edge_ids(self, v: int) -> np.ndarray:
        """Canonical edge ids incident to ``v`` (view into ``edge_ids``)."""
        return self.edge_ids[self.indptr[v]:self.indptr[v + 1]]

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        """Endpoints ``(u, v)`` with ``u < v`` of a canonical edge id."""
        u, v = self.edges[edge_id]
        return int(u), int(v)

    def has_edge(self, u: int, v: int) -> bool:
        """True if the undirected edge ``{u, v}`` exists."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            return False
        # Scan the smaller adjacency list.
        if self.degree(u) > self.degree(v):
            u, v = v, u
        return bool(np.any(self.neighbors(u) == v))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def average_degree(self) -> float:
        """Mean degree ``2m / n`` (0 for the empty graph)."""
        if self.n == 0:
            return 0.0
        return 2.0 * self.m / self.n

    def memory_bytes(self) -> int:
        """Bytes held by the CSR arrays.

        This is the quantity Figure 9's "mem score" normalises: the
        resident size of the graph structure itself.
        """
        return (self.edges.nbytes + self.indptr.nbytes
                + self.indices.nbytes + self.edge_ids.nbytes)

    def subgraph_edges(self, edge_mask: np.ndarray) -> np.ndarray:
        """Canonical edges selected by a boolean mask over edge ids."""
        return self.edges[edge_mask]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.n}, m={self.m})"
