"""Synthetic graph generators.

The paper's evaluation leans on RMAT graphs (§7.1) because the real
trillion-edge graph is not publicly available; we use the same move one
level down: RMAT and Chung–Lu stand-ins replace the billion-edge SNAP /
KONECT datasets.  All generators return canonical undirected edge
arrays (see :mod:`repro.graph.edgelist`) and take an explicit ``seed``
so every experiment is reproducible.

Generators provided:

* :func:`rmat_edges` — recursive-matrix graphs with Graph500's default
  ``(a, b, c, d)`` skew; the paper's Scale-N / edge-factor vocabulary.
* :func:`erdos_renyi` — G(n, m) uniform random graphs (non-skewed
  control).
* :func:`powerlaw_chung_lu` — expected-degree power-law graphs, used to
  check the Table 1 bound formulas empirically.
* :func:`ring_graph`, :func:`complete_graph`,
  :func:`ring_plus_complete` — the Theorem 2 tightness construction.
* :func:`grid_road_network` — 2D lattice with perturbed diagonals, the
  stand-in for the Table 6 road networks (CA/PA/TX), which are nearly
  planar with tiny average degree.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import canonical_edges

__all__ = [
    "rmat_edges",
    "erdos_renyi",
    "powerlaw_chung_lu",
    "ring_graph",
    "complete_graph",
    "ring_plus_complete",
    "grid_road_network",
]

# Graph500 default RMAT probabilities.
_RMAT_A, _RMAT_B, _RMAT_C = 0.57, 0.19, 0.19


def rmat_edges(scale: int, edge_factor: int, seed: int = 0,
               a: float = _RMAT_A, b: float = _RMAT_B, c: float = _RMAT_C,
               dedup: bool = True) -> np.ndarray:
    """Generate an RMAT graph with ``2**scale`` vertices.

    ``edge_factor`` is the paper's EF: the number of generated edges per
    vertex *before* dedup/self-loop removal, matching Graph500 semantics
    (the paper's trillion-edge graph is Scale30, EF 1024).

    The recursive-matrix probabilities default to Graph500's
    ``(0.57, 0.19, 0.19, 0.05)``.  Generation is fully vectorised: each
    of the ``scale`` bits of both endpoints is drawn at once.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("RMAT probabilities must satisfy 0 < a+b+c < 1")
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # Quadrant choice: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1)
        src_bit = (r >= a + b).astype(np.int64)
        dst_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit

    edges = np.stack([src, dst], axis=1)
    if dedup:
        edges = canonical_edges(edges)
    return edges


def erdos_renyi(n: int, m: int, seed: int = 0) -> np.ndarray:
    """G(n, m)-style uniform random graph with ~``m`` distinct edges.

    Samples ``m`` endpoint pairs uniformly and canonicalises; like RMAT,
    collisions and self-loops are dropped, so the final count can be
    slightly under ``m``.
    """
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    return canonical_edges(np.stack([src, dst], axis=1))


def powerlaw_chung_lu(n: int, alpha: float, mean_degree: float | None = None,
                      seed: int = 0) -> np.ndarray:
    """Chung–Lu graph whose expected degrees follow a power law.

    Degree weights are drawn as ``w_i ~ Pareto``-style
    ``(1 - u)^(-1/(alpha-1))`` with minimum degree 1, matching the
    discrete power-law model of Clauset et al. used in §6 (Equation 6).
    Edges are then sampled proportionally to ``w_u * w_v``.

    ``mean_degree`` optionally rescales the weights so the expected
    average degree hits a target (before dedup).
    """
    if alpha <= 1.0:
        raise ValueError("power-law exponent must be > 1")
    rng = np.random.default_rng(seed)
    u = rng.random(n)
    weights = (1.0 - u) ** (-1.0 / (alpha - 1.0))
    if mean_degree is not None:
        weights *= mean_degree / weights.mean()
    total = weights.sum()
    m = int(round(total / 2.0))
    probs = weights / total
    src = rng.choice(n, size=m, p=probs)
    dst = rng.choice(n, size=m, p=probs)
    return canonical_edges(np.stack([src, dst], axis=1).astype(np.int64))


def ring_graph(n: int, offset: int = 0) -> np.ndarray:
    """Cycle on ``n`` vertices with ids ``offset .. offset+n-1``."""
    if n < 3:
        raise ValueError("a ring needs at least 3 vertices")
    ids = np.arange(offset, offset + n, dtype=np.int64)
    return canonical_edges(np.stack([ids, np.roll(ids, -1)], axis=1))


def complete_graph(n: int, offset: int = 0) -> np.ndarray:
    """Complete graph K_n with ids ``offset .. offset+n-1``."""
    if n < 2:
        raise ValueError("a complete graph needs at least 2 vertices")
    iu = np.triu_indices(n, k=1)
    src = iu[0].astype(np.int64) + offset
    dst = iu[1].astype(np.int64) + offset
    return np.stack([src, dst], axis=1)


def ring_plus_complete(n: int) -> np.ndarray:
    """The Theorem 2 tightness construction.

    Two isolated components: K_n (``n`` vertices, ``n(n-1)/2`` edges)
    plus a ring with ``n(n-1)/2`` vertices and the same number of edges.
    With ``|P| = n(n-1)/2`` partitions the replication factor approaches
    the Theorem 1 upper bound as ``n`` grows.
    """
    complete = complete_graph(n)
    ring_size = n * (n - 1) // 2
    if ring_size < 3:
        raise ValueError("need n >= 3 so the ring has >= 3 vertices")
    ring = ring_graph(ring_size, offset=n)
    return canonical_edges(np.concatenate([complete, ring], axis=0))


def grid_road_network(rows: int, cols: int, extra_fraction: float = 0.1,
                      seed: int = 0) -> np.ndarray:
    """2D lattice with a sprinkling of diagonal shortcuts.

    Road networks (Table 6) are nearly planar, low-degree, non-skewed
    graphs; a grid with ``extra_fraction`` random diagonals reproduces
    their mean degree (~2.8) and locality.  Vertex ``(r, c)`` gets id
    ``r * cols + c``.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid must be at least 2x2")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vert = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    edges = [horiz, vert]

    rng = np.random.default_rng(seed)
    n_extra = int(extra_fraction * (rows - 1) * (cols - 1))
    if n_extra > 0:
        r = rng.integers(0, rows - 1, size=n_extra)
        c = rng.integers(0, cols - 1, size=n_extra)
        diag = np.stack([ids[r, c], ids[r + 1, c + 1]], axis=1)
        edges.append(diag)
    return canonical_edges(np.concatenate(edges, axis=0))
