"""Graph transformations.

Utilities a user needs to get a real edge list into the shape the
partitioners expect: extract the largest connected component (the
standard preprocessing for the paper's datasets — SNAP distributes
LCC-trimmed versions of several of them), sample edges, cap hub
degrees, and relabel by degree (a locality optimisation several graph
systems apply before partitioning).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.stats import connected_components

__all__ = [
    "largest_connected_component",
    "sample_edges",
    "cap_degrees",
    "relabel_by_degree",
]


def largest_connected_component(graph: CSRGraph) -> CSRGraph:
    """The induced subgraph on the largest component, ids compacted.

    Vertices are renumbered ``0..n'-1`` preserving relative order.
    Returns an empty graph for an empty input.
    """
    if graph.num_edges == 0:
        return CSRGraph(np.empty((0, 2), dtype=np.int64))
    labels = connected_components(graph)
    covered = graph.degrees() > 0
    values, counts = np.unique(labels[covered], return_counts=True)
    winner = values[np.argmax(counts)]
    keep_vertex = labels == winner

    mask = keep_vertex[graph.edges[:, 0]] & keep_vertex[graph.edges[:, 1]]
    edges = graph.edges[mask]
    # Compact ids.
    old_ids = np.flatnonzero(keep_vertex)
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[old_ids] = np.arange(len(old_ids))
    return CSRGraph(remap[edges])


def sample_edges(graph: CSRGraph, fraction: float,
                 seed: int = 0) -> CSRGraph:
    """Uniform edge sample of the given fraction (ids preserved).

    Useful to scale a workload down while keeping the id space, e.g.
    to pilot a partitioning configuration before the full run.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    keep = rng.random(graph.num_edges) < fraction
    return CSRGraph(graph.edges[keep], num_vertices=graph.num_vertices)


def cap_degrees(graph: CSRGraph, max_degree: int, seed: int = 0) -> CSRGraph:
    """Drop random incident edges of vertices above ``max_degree``.

    Produces a degree-capped variant of a skewed graph — handy for
    ablating how much of a partitioner's difficulty comes from hubs.
    The cap is approximate: edges are dropped while *either* endpoint
    exceeds the cap, processed in random order.
    """
    if max_degree < 1:
        raise ValueError("max_degree must be >= 1")
    rng = np.random.default_rng(seed)
    degrees = graph.degrees().astype(np.int64).copy()
    keep = np.ones(graph.num_edges, dtype=bool)
    for eid in rng.permutation(graph.num_edges):
        u, v = graph.edges[eid]
        if degrees[u] > max_degree or degrees[v] > max_degree:
            keep[eid] = False
            degrees[u] -= 1
            degrees[v] -= 1
    return CSRGraph(graph.edges[keep], num_vertices=graph.num_vertices)


def relabel_by_degree(graph: CSRGraph,
                      descending: bool = True) -> tuple[CSRGraph, np.ndarray]:
    """Renumber vertices by degree; returns ``(graph', old_of_new)``.

    ``descending=True`` gives hubs the smallest ids (the layout several
    frameworks use so hub state is contiguous).  ``old_of_new[i]`` maps
    a new id back to the original.
    """
    degrees = graph.degrees()
    order = np.argsort(-degrees if descending else degrees,
                       kind="stable").astype(np.int64)
    new_of_old = np.empty_like(order)
    new_of_old[order] = np.arange(graph.num_vertices)
    edges = new_of_old[graph.edges]
    return CSRGraph(edges, num_vertices=graph.num_vertices), order
