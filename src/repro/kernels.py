"""Kernel-selection constants shared by every dual-implementation path.

The partitioning/engine hot paths each ship a flat-array NumPy kernel
(``"vectorized"``, the default) and a per-slot reference kernel
(``"python"``), pinned bit-identical by the kernel equivalence tests.
The flag covers both planes of Distributed NE — the allocation phases
(``core/allocation.py``) and the selection/expansion plane
(``core/expansion.py``: boundary queue, multicast fan-out, boundary
fold) — plus NE/SNE expansion, the GAS engine gathers, the streaming
baseline zoo on the shared ``core/streaming.py`` substrate (HDRF,
FENNEL, Oblivious, and Hybrid Ginger's re-homing rounds, pinned by
``tests/test_streaming_equivalence.py``), and Sheep's batched
elimination order.  This module is the single home of the valid names
so constructors all fail fast with the same message.
"""

from __future__ import annotations

#: valid values for every ``kernel=`` argument
KERNELS = ("vectorized", "python")


def validate_kernel(kernel: str) -> str:
    """Return ``kernel`` unchanged, or raise ``ValueError``."""
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}")
    return kernel
