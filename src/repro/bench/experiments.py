"""Per-figure / per-table experiment drivers.

One function per experiment in the paper's evaluation (see DESIGN.md §4
for the index).  Each driver returns structured rows *and* can render a
paper-style table via the harness formatters; the ``benchmarks/``
pytest-benchmark suite calls these with scaled-down parameters, and the
examples call them interactively.

Scaling note: every driver takes explicit graph/partition parameters so
callers choose the scale; defaults are laptop-sized versions of the
paper's setup (the stand-in datasets are ~10^4–10^5 edges instead of
10^7–10^9; the trillion-edge weak-scaling run becomes a
Scale14→Scale18 sweep).
"""

from __future__ import annotations


from repro.apps import pagerank, sssp, wcc
from repro.bench.harness import (
    QUALITY_METHODS,
    TABLE5_METHODS,
    TABLE6_METHODS,
    mem_score,
    run_method,
)
from repro.core import DistributedNE
from repro.graph.csr import CSRGraph
from repro.graph.datasets import ROAD_DATASETS, SKEWED_DATASETS
from repro.graph.generators import ring_plus_complete, rmat_edges
from repro.metrics.bounds import (
    PAPER_TABLE1,
    TABLE1_ALPHAS,
    table1_rows,
    theorem1_upper_bound,
    theorem2_construction_rf,
)

__all__ = [
    "fig6_lambda_sweep",
    "table1_bounds",
    "theorem2_tightness",
    "fig8_replication_factor",
    "fig8_rmat_replication",
    "fig9_memory",
    "fig10_elapsed_time",
    "fig10h_edge_factor_sweep",
    "fig10i_scale_sweep",
    "fig10j_weak_scaling",
    "table4_sequential_comparison",
    "table5_applications",
    "table6_road_networks",
    "ablation_two_hop",
    "ablation_placement",
    "ablation_seed_strategy",
]


# ---------------------------------------------------------------------------
# Figure 6 — iterations and RF vs the expansion factor lambda
# ---------------------------------------------------------------------------

def fig6_lambda_sweep(graph: CSRGraph, num_partitions: int = 32,
                      lams=(1e-3, 1e-2, 1e-1, 1.0), seed: int = 0) -> list[dict]:
    """Sweep λ; the paper's trend is iterations ↓ linearly with λ while
    RF stays flat until λ→1, where it degrades."""
    rows = []
    for lam in lams:
        result = DistributedNE(num_partitions, seed=seed, lam=lam).partition(graph)
        rows.append({
            "lambda": lam,
            "iterations": result.iterations,
            "replication_factor": result.replication_factor(),
        })
    return rows


# ---------------------------------------------------------------------------
# Table 1 — theoretical bounds on power-law graphs
# ---------------------------------------------------------------------------

def table1_bounds(num_partitions: int = 256, model: str = "pareto-mean",
                  max_degree: int = 200_000) -> list[dict]:
    """Computed bound rows next to the paper's reported values."""
    computed = table1_rows(TABLE1_ALPHAS, num_partitions, model=model,
                           max_degree=max_degree)
    rows = []
    for method, values in computed.items():
        rows.append({
            "method": method,
            "alphas": TABLE1_ALPHAS,
            "computed": values,
            "paper": PAPER_TABLE1[method],
        })
    return rows


# ---------------------------------------------------------------------------
# Theorem 2 — tightness of the bound on ring+complete
# ---------------------------------------------------------------------------

def theorem2_tightness(ns=(4, 6, 8, 12, 16), seed: int = 0,
                       measure: bool = True) -> list[dict]:
    """RF/UB ratio of the adversarial construction tends to 1.

    ``measure=True`` additionally runs Distributed NE on the
    construction with ``|P| = n(n-1)/2`` and checks its measured RF
    stays at or below the bound (the theorem is existential: the
    measured greedy usually does *better* than the adversarial
    schedule).
    """
    rows = []
    for n in ns:
        rf_adv, ub = theorem2_construction_rf(n)
        row = {"n": n, "adversarial_rf": rf_adv, "upper_bound": ub,
               "ratio": rf_adv / ub}
        if measure:
            edges = ring_plus_complete(n)
            graph = CSRGraph(edges)
            p = n * (n - 1) // 2
            result = DistributedNE(p, seed=seed, lam=1e-9).partition(graph)
            row["measured_rf"] = result.replication_factor()
            row["measured_le_bound"] = bool(
                result.replication_factor()
                <= theorem1_upper_bound(graph.num_vertices, graph.num_edges,
                                        p) + 1e-9)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 8 — replication factor across methods / datasets / |P|
# ---------------------------------------------------------------------------

def fig8_replication_factor(datasets=("pokec", "flickr"),
                            methods=QUALITY_METHODS,
                            partition_counts=(4, 8, 16, 32, 64),
                            seed: int = 0,
                            dataset_seed: int = 0) -> list[dict]:
    """RF per (dataset, method, |P|) — the panels of Figure 8(a–g)."""
    rows = []
    for ds in datasets:
        graph = CSRGraph(SKEWED_DATASETS[ds].generate(seed=dataset_seed))
        for p in partition_counts:
            for method in methods:
                result = run_method(method, graph, p, seed=seed)
                rows.append({
                    "dataset": ds,
                    "method": method,
                    "partitions": p,
                    "replication_factor": result.replication_factor(),
                })
    return rows


def fig8_rmat_replication(scales=(10, 11, 12), edge_factors=(4, 8, 16),
                          methods=("grid", "xtrapulp", "distributed_ne"),
                          num_partitions: int = 16, seed: int = 0) -> list[dict]:
    """Figure 8(h–j): RF vs edge factor across RMAT scales.

    Paper trends: RF grows with edge factor and is nearly constant
    across scales at a fixed edge factor.
    """
    rows = []
    for scale in scales:
        for ef in edge_factors:
            graph = CSRGraph(rmat_edges(scale, ef, seed=seed))
            for method in methods:
                result = run_method(method, graph, num_partitions, seed=seed)
                rows.append({
                    "scale": scale,
                    "edge_factor": ef,
                    "method": method,
                    "replication_factor": result.replication_factor(),
                })
    return rows


# ---------------------------------------------------------------------------
# Figure 9 — memory consumption (mem score)
# ---------------------------------------------------------------------------

def fig9_memory(datasets=("pokec", "livejournal"),
                methods=("metis_like", "sheep", "xtrapulp", "distributed_ne"),
                num_partitions: int = 16, seed: int = 0) -> list[dict]:
    """Mem score (peak bytes / edge) per method; the paper's claim is an
    order-of-magnitude advantage for Distributed NE."""
    rows = []
    for ds in datasets:
        graph = CSRGraph(SKEWED_DATASETS[ds].generate(seed=seed))
        for method in methods:
            result = run_method(method, graph, num_partitions, seed=seed)
            rows.append({
                "dataset": ds,
                "method": method,
                "mem_score_bytes_per_edge": mem_score(result),
            })
    return rows


# ---------------------------------------------------------------------------
# Figure 10 — elapsed time
# ---------------------------------------------------------------------------

def fig10_elapsed_time(datasets=("pokec",),
                       methods=("metis_like", "sheep", "xtrapulp",
                                "distributed_ne"),
                       partition_counts=(4, 8, 16), seed: int = 0) -> list[dict]:
    """Partitioning elapsed time per (dataset, method, machines).

    ``elapsed_seconds`` is single-process wall clock.  For Distributed
    NE — whose |P| machines run *serialised* in the simulator —
    ``parallel_seconds`` additionally reports the simulated parallel
    time (per iteration, the slowest process defines each phase's
    cost), which is the like-for-like quantity against the paper's
    cluster wall clock.  For the single-machine baselines the two
    coincide.
    """
    rows = []
    for ds in datasets:
        graph = CSRGraph(SKEWED_DATASETS[ds].generate(seed=seed))
        for p in partition_counts:
            for method in methods:
                result = run_method(method, graph, p, seed=seed)
                parallel = result.elapsed_seconds
                if method == "distributed_ne":
                    parallel = (result.extra["parallel_selection_seconds"]
                                + result.extra["parallel_allocation_seconds"])
                rows.append({
                    "dataset": ds,
                    "method": method,
                    "partitions": p,
                    "elapsed_seconds": result.elapsed_seconds,
                    "parallel_seconds": parallel,
                })
    return rows


def fig10h_edge_factor_sweep(scale: int = 10,
                             edge_factors=(4, 8, 16, 32),
                             methods=("xtrapulp", "distributed_ne"),
                             num_partitions: int = 16,
                             seed: int = 0) -> list[dict]:
    """Figure 10(h): elapsed time vs edge factor at fixed scale."""
    rows = []
    for ef in edge_factors:
        graph = CSRGraph(rmat_edges(scale, ef, seed=seed))
        for method in methods:
            result = run_method(method, graph, num_partitions, seed=seed)
            rows.append({
                "edge_factor": ef,
                "method": method,
                "elapsed_seconds": result.elapsed_seconds,
                "edges": graph.num_edges,
            })
    return rows


def fig10i_scale_sweep(scales=(9, 10, 11), edge_factor: int = 16,
                       methods=("xtrapulp", "distributed_ne"),
                       num_partitions: int = 16, seed: int = 0) -> list[dict]:
    """Figure 10(i): elapsed time vs scale at fixed edge factor."""
    rows = []
    for scale in scales:
        graph = CSRGraph(rmat_edges(scale, edge_factor, seed=seed))
        for method in methods:
            result = run_method(method, graph, num_partitions, seed=seed)
            rows.append({
                "scale": scale,
                "method": method,
                "elapsed_seconds": result.elapsed_seconds,
                "edges": graph.num_edges,
            })
    return rows


def fig10j_weak_scaling(base_scale: int = 12, edge_factor: int = 16,
                        machine_counts=(4, 16, 64), seed: int = 0,
                        kernel: str = "vectorized") -> list[dict]:
    """Figure 10(j): weak scaling toward the trillion-edge setup.

    Paper protocol scaled down: vertices per machine fixed at
    ``2**base_scale / 4`` analogue — each 4x in machines raises the
    RMAT scale by 2, keeping vertices/machine constant.  The paper's
    observations: elapsed time grows ~linearly with machines, and the
    vertex-selection phase's share of runtime grows (<1% at 4 machines
    to 30.3% at 256).

    Wall-clock shares in a Python simulator are max-of-samples
    statistics and noisy; the deterministic ``selection_share_model``
    (per-iteration maxima of multicast ⟨vertex, replica⟩ pairs vs
    adjacency slots touched, identical under both kernels) carries the
    share-growth observation, driven structurally by the O(sqrt |P|)
    replica fan-out per selected vertex.  The wall-clock share rides
    along for the record; under the default vectorized kernel the
    batched selection plane keeps it flat at these scales — the PR-2
    outcome attacking exactly that bottleneck.
    """
    rows = []
    for i, machines in enumerate(machine_counts):
        scale = base_scale + 2 * i
        graph = CSRGraph(rmat_edges(scale, edge_factor, seed=seed))
        result = DistributedNE(machines, seed=seed,
                               kernel=kernel).partition(graph)
        rows.append({
            "machines": machines,
            "scale": scale,
            "edges": graph.num_edges,
            "elapsed_seconds": result.elapsed_seconds,
            "selection_share": result.extra["selection_share"],
            "selection_share_model": result.extra["selection_share_model"],
            "iterations": result.iterations,
        })
    return rows


# ---------------------------------------------------------------------------
# Table 4 — sequential / streaming comparison
# ---------------------------------------------------------------------------

def table4_sequential_comparison(datasets=("pokec", "flickr", "livejournal",
                                           "orkut"),
                                 num_partitions: int = 64,
                                 seed: int = 0) -> list[dict]:
    """HDRF / NE / SNE / Distributed NE: RF and elapsed time."""
    methods = ("hdrf", "ne", "sne", "distributed_ne")
    rows = []
    for ds in datasets:
        graph = CSRGraph(SKEWED_DATASETS[ds].generate(seed=seed))
        for method in methods:
            result = run_method(method, graph, num_partitions, seed=seed)
            rows.append({
                "dataset": ds,
                "method": method,
                "replication_factor": result.replication_factor(),
                "elapsed_seconds": result.elapsed_seconds,
            })
    return rows


# ---------------------------------------------------------------------------
# Table 5 — application performance over partitionings
# ---------------------------------------------------------------------------

def table5_applications(datasets=("pokec",), methods=TABLE5_METHODS,
                        num_partitions: int = 16,
                        pagerank_iterations: int = 10,
                        seed: int = 0) -> list[dict]:
    """RF/EB/VB plus SSSP/WCC/PageRank ET/COM/WB per method."""
    rows = []
    for ds in datasets:
        graph = CSRGraph(SKEWED_DATASETS[ds].generate(seed=seed))
        source = int(graph.edges[0, 0])
        for method in methods:
            part = run_method(method, graph, num_partitions, seed=seed)
            row = {
                "dataset": ds,
                "method": method,
                "rf": part.replication_factor(),
                "eb": part.edge_balance(),
                "vb": part.vertex_balance(),
            }
            _, s = sssp(part, source=source, seed=seed)
            row.update(sssp_et=s.elapsed_seconds, sssp_com=s.comm_bytes,
                       sssp_wb=s.workload_balance())
            _, s = wcc(part, seed=seed)
            row.update(wcc_et=s.elapsed_seconds, wcc_com=s.comm_bytes,
                       wcc_wb=s.workload_balance())
            _, s = pagerank(part, iterations=pagerank_iterations, seed=seed)
            row.update(pr_et=s.elapsed_seconds, pr_com=s.comm_bytes,
                       pr_wb=s.workload_balance())
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 6 — road networks (non-skewed control)
# ---------------------------------------------------------------------------

def table6_road_networks(datasets=("roadnet-ca", "roadnet-pa", "roadnet-tx"),
                         methods=TABLE6_METHODS, num_partitions: int = 16,
                         seed: int = 0) -> list[dict]:
    """RF of all methods on the road-network stand-ins."""
    rows = []
    for ds in datasets:
        graph = CSRGraph(ROAD_DATASETS[ds].generate(seed=seed))
        for method in methods:
            result = run_method(method, graph, num_partitions, seed=seed)
            rows.append({
                "dataset": ds,
                "method": method,
                "replication_factor": result.replication_factor(),
            })
    return rows


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md §5)
# ---------------------------------------------------------------------------

def ablation_two_hop(graph: CSRGraph, num_partitions: int = 16,
                     seed: int = 0) -> list[dict]:
    """Condition 5 on/off: the two-hop phase should improve RF."""
    rows = []
    for two_hop in (True, False):
        result = DistributedNE(num_partitions, seed=seed,
                               two_hop=two_hop).partition(graph)
        rows.append({
            "two_hop": two_hop,
            "replication_factor": result.replication_factor(),
            "iterations": result.iterations,
        })
    return rows


def ablation_placement(graph: CSRGraph, num_partitions: int = 16,
                       seed: int = 0) -> list[dict]:
    """2D vs 1D initial placement: sync fan-out and bytes moved."""
    rows = []
    for placement in ("2d", "1d"):
        result = DistributedNE(num_partitions, seed=seed,
                               placement=placement).partition(graph)
        rows.append({
            "placement": placement,
            "replication_factor": result.replication_factor(),
            "total_bytes": result.extra["cluster"]["total_bytes"],
            "total_messages": result.extra["cluster"]["total_messages"],
        })
    return rows


def ablation_seed_strategy(graph: CSRGraph, num_partitions: int = 16,
                           seed: int = 0) -> list[dict]:
    """Random (paper) vs min-degree seed vertices."""
    rows = []
    for strategy in ("random", "min_degree"):
        result = DistributedNE(num_partitions, seed=seed,
                               seed_strategy=strategy).partition(graph)
        rows.append({
            "seed_strategy": strategy,
            "replication_factor": result.replication_factor(),
            "iterations": result.iterations,
        })
    return rows
