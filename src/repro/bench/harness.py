"""Bench harness utilities: run partitioners, format paper-style tables.

Every figure/table driver in :mod:`repro.bench.experiments` returns
plain dict rows; the helpers here run partitioners uniformly, estimate
per-method memory footprints (Figure 9's mem score), and pretty-print
aligned tables so the benchmark output can be eyeballed against the
paper.
"""

from __future__ import annotations


from repro.graph.csr import CSRGraph
from repro.partitioners import PARTITIONER_REGISTRY
from repro.partitioners.base import EdgePartition

__all__ = [
    "run_method",
    "method_memory_bytes",
    "mem_score",
    "format_table",
    "format_series",
    "QUALITY_METHODS",
    "PERFORMANCE_METHODS",
    "TABLE5_METHODS",
    "TABLE6_METHODS",
]

#: Figure 8 comparison set (every method in the paper's quality plots).
QUALITY_METHODS = (
    "random", "grid", "oblivious", "hybrid_ginger", "spinner",
    "metis_like", "sheep", "xtrapulp", "distributed_ne",
)

#: Figure 9/10 comparison set (the high-quality methods).
PERFORMANCE_METHODS = ("metis_like", "sheep", "xtrapulp", "distributed_ne")

#: Table 5 comparison set (PowerLyra-available methods + D.NE).
TABLE5_METHODS = ("random", "grid", "oblivious", "hybrid_ginger",
                  "distributed_ne")

#: Table 6 comparison set (road networks).
TABLE6_METHODS = ("random", "grid", "oblivious", "hybrid_ginger",
                  "metis_like", "sheep", "xtrapulp", "distributed_ne")


def run_method(name: str, graph: CSRGraph, num_partitions: int,
               seed: int = 0, **kwargs) -> EdgePartition:
    """Instantiate registry method ``name`` and partition ``graph``."""
    if name not in PARTITIONER_REGISTRY:
        raise KeyError(f"unknown partitioner {name!r}; "
                       f"available: {sorted(PARTITIONER_REGISTRY)}")
    cls = PARTITIONER_REGISTRY[name]
    return cls(num_partitions, seed=seed, **kwargs).partition(graph)


def method_memory_bytes(result: EdgePartition) -> int:
    """Estimate the peak resident bytes a method's run needed.

    Distributed NE reports its simulated-cluster accounting directly;
    the baselines are modelled from the structures their
    implementations actually build (documented per branch).  These are
    honest *relative* scores: absolute values depend on the substrate,
    the paper's claim is the order-of-magnitude gap between the
    CSR-only design and the copy-heavy competitors.
    """
    graph = result.graph
    base_csr = graph.memory_bytes()
    assignment = result.assignment.nbytes

    if result.method == "distributed_ne":
        return int(result.extra["cluster"]["peak_resident_bytes"])
    if result.method.startswith("metis_like"):
        # Every coarsening level keeps a whole weighted-CSR graph copy
        # (priced by _Level.nbytes), plus matching/projection arrays
        # and the contraction's sorted-key workspace (~4 int64 per
        # adjacency slot of the level being contracted).
        levels = result.extra.get("coarse_levels_bytes", 0)
        workspace = 4 * 2 * graph.num_edges * 8
        return base_csr + levels + workspace + assignment
    if result.method.startswith("sheep"):
        # Elimination order heap (amortised entries), rank/parent/owner.
        heap = 4 * graph.num_edges * 16
        arrays = 3 * graph.num_vertices * 8 + graph.num_edges * 8
        return base_csr + heap + arrays + assignment
    if result.method.startswith(("xtrapulp", "spinner")):
        # Distributed LP keeps double-buffered labels, per-superstep
        # label-exchange buffers (one entry per edge direction), and
        # ghost copies of every cut edge on the second machine.
        labels = 2 * graph.num_vertices * 8
        exchange = 2 * graph.num_edges * 8
        ghosts = result.extra.get("cut_edges", 0) * 16
        return base_csr + labels + exchange + ghosts + assignment
    # Hash/streaming methods: CSR + replica state + assignment.
    replica_state = graph.num_vertices * result.num_partitions // 8
    return base_csr + replica_state + assignment


def mem_score(result: EdgePartition) -> float:
    """Figure 9's metric: modelled peak bytes per input edge."""
    edges = max(result.graph.num_edges, 1)
    return method_memory_bytes(result) / edges


def format_table(headers, rows, title: str = "") -> str:
    """Aligned plain-text table; cells are str()'d, floats get 3 sigfigs."""
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.3g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs, ys) -> str:
    """One-line series rendering for figure-style outputs."""
    pts = ", ".join(f"{x}:{y:.3g}" if isinstance(y, float) else f"{x}:{y}"
                    for x, y in zip(xs, ys))
    return f"{name}: {pts}"
