"""Cost-model extrapolation to the paper's trillion-edge configuration.

§7.4 partitions RMAT Scale30 / EF1024 (2^30 vertices, 2^40 edges) on
256 machines in 69.7 minutes.  We cannot run that graph, but we *can*
measure the simulator's weak-scaling series (Figure 10(j) protocol) and
fit the paper's own cost structure to it:

    T(machines, edges) = a * edges/machines  +  b * machines  +  c

* the first term is the per-machine allocation work (edges are spread
  across machines);
* the second is the coordination cost that §7.4 reports growing
  linearly with machine count (vertex-selection imbalance +
  communication);
* ``c`` is fixed overhead.

:func:`fit_cost_model` least-squares fits (a, b, c) from measured runs;
:func:`extrapolate` evaluates the model at any target, e.g. the
trillion-edge point.  The absolute prediction is a simulator number —
the point of the exercise is the *shape*: the model reproduces the
paper's linear growth in machines at fixed per-machine load, and lets
an example show what the Scale30 run would cost on this substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CostModel", "fit_cost_model", "extrapolate",
           "TRILLION_EDGE_CONFIG"]

#: The paper's §7.4 target: RMAT Scale30, EF 1024, one machine per
#: partition.  (2^30 vertices, ~2^40 edges, 256 machines, 69.7 min.)
TRILLION_EDGE_CONFIG = {
    "vertices": 2 ** 30,
    "edges": 2 ** 40,
    "machines": 256,
    "paper_minutes": 69.7,
}


@dataclass(frozen=True)
class CostModel:
    """Fitted coefficients of ``T = a*edges/machines + b*machines + c``."""

    per_edge_per_machine: float  # a
    per_machine: float           # b
    fixed: float                 # c

    def predict_seconds(self, edges: int, machines: int) -> float:
        if machines < 1 or edges < 0:
            raise ValueError("need machines >= 1 and edges >= 0")
        return (self.per_edge_per_machine * edges / machines
                + self.per_machine * machines + self.fixed)


def fit_cost_model(rows) -> CostModel:
    """Least-squares fit from weak-scaling measurements.

    ``rows`` is an iterable of dicts with ``machines``, ``edges``, and
    ``elapsed_seconds`` keys — exactly what
    :func:`repro.bench.experiments.fig10j_weak_scaling` returns.  Needs
    at least 3 points.
    """
    rows = list(rows)
    if len(rows) < 3:
        raise ValueError("need at least 3 measurements to fit 3 coefficients")
    design = np.array([[r["edges"] / r["machines"], r["machines"], 1.0]
                       for r in rows], dtype=np.float64)
    target = np.array([r["elapsed_seconds"] for r in rows],
                      dtype=np.float64)
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    a, b, c = (float(x) for x in coeffs)
    # Clamp tiny negative values from noisy fits; cost terms are
    # physically non-negative.
    return CostModel(max(a, 0.0), max(b, 0.0), max(c, 0.0))


def extrapolate(model: CostModel, edges: int | None = None,
                machines: int | None = None) -> dict:
    """Evaluate ``model`` at a target configuration.

    Defaults to the paper's trillion-edge point.  Returns the predicted
    seconds/minutes plus the paper's measured minutes for context.
    """
    edges = TRILLION_EDGE_CONFIG["edges"] if edges is None else edges
    machines = (TRILLION_EDGE_CONFIG["machines"] if machines is None
                else machines)
    seconds = model.predict_seconds(edges, machines)
    return {
        "edges": edges,
        "machines": machines,
        "predicted_seconds": seconds,
        "predicted_minutes": seconds / 60.0,
        "paper_minutes": TRILLION_EDGE_CONFIG["paper_minutes"],
    }
