"""Benchmark harness: experiment drivers and table formatters.

* :mod:`repro.bench.harness` — uniform method runner, memory model,
  table/series formatting.
* :mod:`repro.bench.experiments` — one driver per paper figure/table
  (see DESIGN.md §4 for the experiment index).
* :mod:`repro.bench.perf` — kernel microbenchmarks (vectorized vs
  reference) behind ``repro bench perf`` / ``BENCH_kernels.json``.
"""

from repro.bench.harness import (
    PERFORMANCE_METHODS,
    QUALITY_METHODS,
    TABLE5_METHODS,
    TABLE6_METHODS,
    format_series,
    format_table,
    mem_score,
    method_memory_bytes,
    run_method,
)
from repro.bench import experiments
from repro.bench.perf import run_perf

__all__ = [
    "run_perf",
    "run_method",
    "mem_score",
    "method_memory_bytes",
    "format_table",
    "format_series",
    "QUALITY_METHODS",
    "PERFORMANCE_METHODS",
    "TABLE5_METHODS",
    "TABLE6_METHODS",
    "experiments",
]
