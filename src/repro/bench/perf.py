"""Kernel microbenchmarks — the perf trajectory behind ``BENCH_kernels.json``.

Every hot kernel in the partitioning path ships in two
implementations: the vectorized flat-array kernel that production code
runs, and the per-slot ``kernel="python"`` reference it is pinned
against.  This module times both on RMAT graphs at several scales and
emits one JSON row per (kernel, scale), so each PR can check the
speedups it claims and future PRs can track regressions:

* ``dne_one_hop`` / ``dne_two_hop`` — the allocation phases of
  Distributed NE (Algorithms 2–3), driven by a synthetic selection
  schedule over a single allocation process that owns the whole graph;
* ``dne_selection`` / ``dne_boundary_fold`` — the expansion-side
  selection plane (§7.4's scale-out bottleneck): boundary-queue pops +
  replica multicast, and the received-boundary fold, timed over a full
  cluster of expansion processes at ``selection_partitions`` machines
  (array-backed queue + batched membership + ndarray payloads vs the
  heapq/tuple-list reference);
* ``dne_p256`` — the |P| ≫ 64 *end-to-end* weak-scaling row: one full
  Distributed NE run per kernel at ``wide_partitions`` machines,
  exercising the packed-bitset membership end-to-end.  No smoke floor:
  at bench scales each machine's per-iteration batches are tiny (a
  2^17-edge graph over 256 machines leaves ~70 edges per partition
  budget), so the vectorized kernel's per-call setup can outweigh its
  batching — the row records where the crossover actually sits rather
  than hiding it;
* ``dne_backend_threads`` / ``dne_backend_processes`` — execution
  backends (``repro.cluster.backends``): one full DNE run per backend
  against the ``simulated`` scheduler baseline at the same scale
  (``python_seconds`` is the simulated baseline, ``vectorized_seconds``
  the parallel backend's wall clock; explicit ``simulated_seconds`` /
  ``backend_seconds`` aliases are included).  Wall-clock here is
  hardware-honest: with fewer cores than workers the parallel backends
  cannot beat the inline scheduler, and the row says so;
* ``hdrf`` / ``fennel`` / ``oblivious`` — the streaming-baseline zoo
  on the shared chunked-scoring substrate (``core/streaming.py``): a
  full partition run per kernel at ``streaming_partitions`` machines,
  plus an ``hdrf_p256`` weak-scaling row at |P| = 256 that exercises
  the packed-bitset membership end-to-end (the reference's per-edge
  O(|P|) score loop versus hoisted windows + uint64 words).  The
  oblivious row documents a trade-off rather than a win — its
  reference stays faster (and stays that method's default kernel);
* ``sheep_order`` — Sheep's approximate-minimum-degree elimination
  order (batched non-adjacent minima pops + heap tail vs the
  sequential encoded-int heap);
* ``ne_expand`` — a full sequential-NE partition (the
  ``ExpansionState.expand_vertex`` path shared with SNE);
* ``gather_sum`` / ``gather_min`` — the GAS engine's gather
  primitives (vectorized ``bincount``/``reduceat`` over compacted
  local ids vs the ``np.add.at``/``np.minimum.at`` reference);
* ``all_gather_sum`` — the simulated cluster's collective accounting
  (bulk updates vs the O(P²) per-message loop);
* ``csr_build`` — CSR construction (counting-sort bucketing vs the
  full 2m argsort);
* ``serving_lookup`` — the partition-serving read path
  (:mod:`repro.serving`), benchmarked like production: the dual-kernel
  bulk vertex-lookup over a run store's mmap'd replica CSR
  (``python_seconds`` / ``vectorized_seconds`` time the per-vertex
  slice loop vs the single :func:`~repro.graph.csr.adjacency_slots`
  gather), plus a concurrent HTTP phase — ``serving_concurrency``
  keep-alive clients hammering the live asyncio server with bulk
  lookups — recording sustained ``http_lookups_per_sec``, the
  ``http_p99_ms`` tail latency, and ``http_errors`` (non-200
  responses, which the serving CI job pins to zero);
* ``observability_overhead`` — the PR-9 telemetry plane's
  zero-cost-when-off claim, quantified: one full vectorized
  ``dne_p256`` run untraced (null registry/tracer, the default)
  versus traced (live registry + Chrome-trace tracer), min of
  alternating repeats; the row records both wall clocks and the
  ``overhead_ratio`` the smoke test bounds.

Run via ``repro bench perf`` (see ``--help`` for scales/partitions) or
programmatically through :func:`run_perf`.  The smoke test
``benchmarks/perf/test_perf_smoke.py`` keeps a tiny configuration in
tier-1 so kernel regressions fail fast.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.apps.engine import AppRunStats, DistributedGraphEngine
from repro.cluster.backends import validate_backend
from repro.cluster.runtime import Process, SimulatedCluster, _same_machine
from repro.core.allocation import (TAG_BOUNDARY, TAG_EDGES, TAG_SELECT,
                                   TAG_SYNC, AllocationProcess)
from repro.core.expansion import ExpansionProcess
from repro.core.hash2d import Hash2DPlacement
from repro.graph.csr import CSRGraph, symmetrised_csr
from repro.graph.edgelist import canonical_edges
from repro.graph.generators import rmat_edges
from repro.partitioners import PARTITIONER_REGISTRY
from repro.partitioners.ne import NEPartitioner

__all__ = ["run_perf", "bench_graph", "bench_allocation_phases",
           "bench_two_hop_conflict", "bench_selection_phase",
           "bench_dne_end_to_end", "bench_streaming_partitioner",
           "bench_sheep_order", "bench_ne_expand", "bench_engine_gathers",
           "bench_all_gather_sum", "bench_csr_build",
           "bench_serving_lookup", "bench_observability_overhead"]

#: RMAT edge factor used by every perf graph.
_EDGE_FACTOR = 8


def bench_graph(edge_scale: int, seed: int = 0) -> CSRGraph:
    """RMAT graph with ~``2**edge_scale`` edges (EF 8, Graph500 skew)."""
    vertex_scale = max(edge_scale - 3, 4)
    return CSRGraph(rmat_edges(vertex_scale, _EDGE_FACTOR, seed=seed))


# ----------------------------------------------------------------------
# DNE allocation phases
# ----------------------------------------------------------------------
def _selection_schedule(graph: CSRGraph, partitions: int,
                        batch: int, seed: int = 0) -> list:
    """Deterministic multi-round ⟨v, p⟩ selection trace.

    Every vertex is selected exactly once, round-robin across
    partitions in batches — the steady-state shape of Algorithm 4's
    multi-expansion selections, without the expansion processes in the
    timed loop.
    """
    order = np.random.default_rng(seed).permutation(graph.num_vertices)
    per_round = batch * partitions
    rounds = []
    for start in range(0, len(order), per_round):
        chunk = order[start:start + per_round]
        rounds.append([
            [(int(v), p) for v in chunk[p * batch:(p + 1) * batch]]
            for p in range(partitions)])
    return rounds

def bench_allocation_phases(graph: CSRGraph, partitions: int, kernel: str,
                            batch: int = 64) -> tuple[float, float]:
    """Cumulative (one-hop, two-hop) seconds over a full selection sweep.

    One allocation process owns every edge; a driver replays the same
    deterministic selection schedule for either kernel and times the
    two allocation phases separately.
    """
    cluster = SimulatedCluster()
    placement = Hash2DPlacement(1, seed=0)
    alloc = cluster.add_process(AllocationProcess(
        0, graph, np.arange(graph.num_edges), placement, kernel=kernel))
    driver = cluster.add_process(Process(("expansion", 0)))
    for p in range(1, partitions):
        cluster.add_process(Process(("expansion", p)))

    one_hop = two_hop = 0.0
    for round_payloads in _selection_schedule(graph, partitions, batch):
        for payload in round_payloads:
            if payload:
                driver.send_batched(alloc.pid, TAG_SELECT, payload)
        cluster.barrier()
        t0 = time.perf_counter()
        alloc.one_hop_and_sync()
        one_hop += time.perf_counter() - t0
        cluster.barrier()
        t0 = time.perf_counter()
        alloc.two_hop_and_report()
        two_hop += time.perf_counter() - t0
        cluster.barrier()
        # Drain the expansion mailboxes so delivered payloads don't pile up.
        for p in range(partitions):
            cluster._receive(("expansion", p), "boundary")
            cluster._receive(("expansion", p), "edges")
    return one_hop, two_hop


def bench_two_hop_conflict(graph: CSRGraph, partitions: int, kernel: str,
                           rounds: int = 8, batch: int | None = None,
                           seed: int = 0) -> float:
    """Cumulative two-hop seconds under a conflict-heavy sync schedule.

    A peer allocation process floods the timed one with random ⟨v, p⟩
    sync pairs, so after a couple of rounds most merged vertices share
    several partitions with their neighbours — the regime where
    contested (multi-shared) edges dominate and the loads-delta
    tie-break replay is the whole phase.  The schedule is identical for
    both kernels (tuple lists for the reference, ndarray pairs for the
    vectorized kernel).
    """
    cluster = SimulatedCluster()
    placement = Hash2DPlacement(1, seed=0)
    alloc = cluster.add_process(AllocationProcess(
        0, graph, np.arange(graph.num_edges), placement, kernel=kernel))
    peer = cluster.add_process(Process(("alloc", 1)))
    for p in range(partitions):
        cluster.add_process(Process(("expansion", p)))

    rng = np.random.default_rng(seed)
    if batch is None:
        batch = max(64, graph.num_vertices // 2)
    elapsed = 0.0
    for _ in range(rounds):
        vs = rng.integers(0, graph.num_vertices, batch)
        ps = rng.integers(0, partitions, batch)
        if kernel == "python":
            payload = list(zip(vs.tolist(), ps.tolist()))
        else:
            payload = np.column_stack([vs, ps]).astype(np.int64)
        peer.send_batched(alloc.pid, TAG_SYNC, payload)
        alloc.one_hop_and_sync()   # no selects: just arms the phase state
        cluster.barrier()
        t0 = time.perf_counter()
        alloc.two_hop_and_report()
        elapsed += time.perf_counter() - t0
        cluster.barrier()
        for p in range(partitions):
            cluster._receive(("expansion", p), TAG_BOUNDARY)
            cluster._receive(("expansion", p), TAG_EDGES)
    return elapsed


# ----------------------------------------------------------------------
# DNE selection plane (boundary queue + multicast + boundary fold)
# ----------------------------------------------------------------------
class _SeedlessAlloc(Process):
    """Allocation stand-in for the selection bench: receives multicasts
    and always reports no seed vertex (keeps the timed loop on the
    boundary path, never the seed-scan fallback)."""

    def random_unallocated_vertex(self, rng) -> None:
        return None

    def min_degree_unallocated_vertex(self) -> None:
        return None


def bench_selection_phase(graph: CSRGraph, partitions: int, kernel: str,
                          lam: float = 0.1, rounds: int = 6,
                          stream: int | None = None) -> tuple[float, float]:
    """Cumulative (selection+multicast, boundary-fold) seconds.

    Drives a full cluster of expansion processes through the
    steady-state shape of Algorithm 4 with the allocation phases
    replaced by a deterministic feed: over ``rounds`` rounds every
    expander receives ``stream`` ⟨v, Drest⟩ boundary pairs (the same
    permuted vertex stream per expander, Drest = degree, defaulting to
    enough vertices that boundaries hold the multi-thousand-entry
    steady state real DNE runs sustain) plus an edge-id batch, folds
    them in, and selects/multicasts its ``ceil(lam |B|)``
    minimum-Drest vertices; after the stream is exhausted, expanders
    drain until their boundary falls under one feed batch.  The
    schedule is identical for both kernels — payloads are tuple lists
    for the reference, ndarrays for the vectorized kernel, sized
    identically by the accounting model — so the timings isolate the
    boundary-queue, multicast, and fold implementations.
    """
    n = graph.num_vertices
    if stream is None:
        stream = min(n, max(192, n // 24))
    cluster = SimulatedCluster()
    placement = Hash2DPlacement(partitions, seed=0)
    expanders = [cluster.add_process(ExpansionProcess(
        k, partitions, limit=graph.num_edges + 1,
        total_edges=graph.num_edges, lam=lam, seed=0,
        placement=placement, kernel=kernel)) for k in range(partitions)]
    allocators = [cluster.add_process(_SeedlessAlloc(("alloc", k)))
                  for k in range(partitions)]

    rng = np.random.default_rng(0)
    order = rng.permutation(n)[:stream]
    degs = graph.degrees()
    chunk = max(1, -(-stream // rounds))
    feeds = [order[start:start + chunk]
             for start in range(0, stream, chunk)]
    eid_feed = rng.integers(0, max(graph.num_edges, 1), size=4 * chunk)

    t_select = t_fold = 0.0
    pos = 0
    while True:
        # Feed phase (untimed): one boundary + edge batch per expander.
        if pos < len(feeds):
            vs = feeds[pos]
            pos += 1
            if kernel == "python":
                payload = list(zip(vs.tolist(), degs[vs].tolist()))
            else:
                payload = np.column_stack([vs, degs[vs]]).astype(np.int64)
            for e in expanders:
                allocators[0].send_batched(e.pid, TAG_BOUNDARY, payload)
                allocators[0].send_batched(e.pid, TAG_EDGES, eid_feed)
        cluster.barrier()

        t0 = time.perf_counter()
        for e in expanders:
            e.update_state()
        t_fold += time.perf_counter() - t0

        if pos >= len(feeds):
            # Stream exhausted: retire near-drained expanders so the
            # tail never degenerates into singleton pops or the
            # seed-scan fallback.
            for e in expanders:
                if len(e.boundary) < chunk:
                    e.finished = True
            if all(e.finished for e in expanders):
                break

        t0 = time.perf_counter()
        for e in expanders:
            e.select_and_multicast(allocators)
        t_select += time.perf_counter() - t0
        cluster.barrier()
        for k in range(partitions):
            cluster._receive(("alloc", k), TAG_SELECT)
    return t_select, t_fold


# ----------------------------------------------------------------------
# DNE end-to-end (weak scaling + execution backends)
# ----------------------------------------------------------------------
def bench_dne_end_to_end(graph: CSRGraph, partitions: int, kernel: str,
                         backend: str = "simulated",
                         workers: int | None = None,
                         tracer=None) -> float:
    """Seconds for one full Distributed NE partition run."""
    from repro.core.distributed_ne import DistributedNE
    t0 = time.perf_counter()
    DistributedNE(partitions, seed=0, kernel=kernel, backend=backend,
                  workers=workers, tracer=tracer).partition(graph)
    return time.perf_counter() - t0


def bench_observability_overhead(graph: CSRGraph, partitions: int,
                                 repeats: int = 3
                                 ) -> tuple[float, float]:
    """(untraced, traced) min-of-repeats seconds for one DNE run.

    The zero-cost-when-off claim, quantified: the untraced arm runs
    with the default null registry/tracer, the traced arm with a live
    :class:`~repro.observability.metrics.MetricsRegistry` installed
    process-wide *and* a fresh
    :class:`~repro.observability.trace.Tracer` — the full telemetry
    cost.  Arms alternate so clock drift and cache warmth hit both
    equally; min-of-repeats discards scheduler noise.
    """
    from repro.observability.metrics import (MetricsRegistry,
                                             disable_metrics,
                                             enable_metrics)
    from repro.observability.trace import Tracer
    t_off = []
    t_on = []
    for _ in range(repeats):
        t_off.append(bench_dne_end_to_end(graph, partitions,
                                          "vectorized"))
        enable_metrics(MetricsRegistry())
        try:
            t_on.append(bench_dne_end_to_end(graph, partitions,
                                             "vectorized",
                                             tracer=Tracer()))
        finally:
            disable_metrics()
    return min(t_off), min(t_on)


# ----------------------------------------------------------------------
# Streaming-baseline zoo (shared core/streaming.py substrate)
# ----------------------------------------------------------------------
def bench_streaming_partitioner(name: str, graph: CSRGraph,
                                partitions: int, kernel: str) -> float:
    """Seconds for one full streaming-baseline partition run."""
    cls = PARTITIONER_REGISTRY[name]
    t0 = time.perf_counter()
    cls(partitions, seed=0, kernel=kernel).partition(graph)
    return time.perf_counter() - t0


def bench_sheep_order(graph: CSRGraph, kernel: str) -> float:
    """Seconds for Sheep's elimination-order computation."""
    from repro.partitioners.sheep import (_min_degree_order,
                                          _min_degree_order_python)
    fn = (_min_degree_order if kernel == "vectorized"
          else _min_degree_order_python)
    t0 = time.perf_counter()
    fn(graph)
    return time.perf_counter() - t0


# ----------------------------------------------------------------------
# Sequential NE expansion
# ----------------------------------------------------------------------
def bench_ne_expand(graph: CSRGraph, partitions: int, kernel: str) -> float:
    """Seconds for one full sequential-NE partition run."""
    t0 = time.perf_counter()
    NEPartitioner(partitions, seed=0, kernel=kernel).partition(graph)
    return time.perf_counter() - t0


# ----------------------------------------------------------------------
# GAS engine gathers
# ----------------------------------------------------------------------
def bench_engine_gathers(graph: CSRGraph, partitions: int, kernel: str,
                         rounds: int = 10) -> tuple[float, float]:
    """Cumulative (gather_sum, gather_min) seconds over ``rounds``."""
    part = PARTITIONER_REGISTRY["random"](partitions, seed=0).partition(graph)
    engine = DistributedGraphEngine(part, seed=0, kernel=kernel)
    rng = np.random.default_rng(0)
    values = rng.random(graph.num_vertices)
    active = rng.random(graph.num_vertices) < 0.5
    stats = AppRunStats(local_seconds=np.zeros(partitions))

    t_sum = t_min = 0.0
    for _ in range(rounds):
        t0 = time.perf_counter()
        engine.gather_sum(values, stats, weight_by_degree=True)
        t_sum += time.perf_counter() - t0
        t0 = time.perf_counter()
        engine.gather_min(values, stats, active, offset=1.0)
        t_min += time.perf_counter() - t0
    return t_sum, t_min


# ----------------------------------------------------------------------
# Cluster collective accounting
# ----------------------------------------------------------------------
def _all_gather_sum_reference(cluster: SimulatedCluster, values: dict) -> float:
    """The pre-vectorization O(P²) per-message accounting loop."""
    pids = sorted(values, key=repr)
    for src in pids:
        for dst in pids:
            if src == dst:
                continue
            nbytes = 0 if _same_machine(src, dst) else 8
            cluster.stats.stats_for(src).record_send(nbytes)
            cluster.stats.stats_for(dst).record_receive(nbytes)
    return sum(values.values())

def bench_all_gather_sum(partitions: int, kernel: str,
                         rounds: int = 200) -> float:
    """Cumulative seconds for ``rounds`` all-gather accounting passes."""
    cluster = SimulatedCluster()
    procs = [cluster.add_process(Process(("expansion", k)))
             for k in range(partitions)]
    values = {p.pid: 1.0 for p in procs}
    fn = (cluster.all_gather_sum if kernel == "vectorized"
          else lambda v: _all_gather_sum_reference(cluster, v))
    t0 = time.perf_counter()
    for _ in range(rounds):
        fn(values)
    return time.perf_counter() - t0


# ----------------------------------------------------------------------
# CSR construction
# ----------------------------------------------------------------------
def _csr_build_reference(edges: np.ndarray, n: int):
    """The pre-vectorization build: full argsort over the 2m-entry
    symmetrised adjacency."""
    m = len(edges)
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    eid = np.concatenate([np.arange(m), np.arange(m)])
    order = np.argsort(src, kind="stable")
    src, dst, eid = src[order], dst[order], eid[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    counts = np.bincount(src, minlength=n)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst.astype(np.int64), eid.astype(np.int64)

def bench_csr_build(edges: np.ndarray, kernel: str, rounds: int = 3) -> float:
    """Cumulative seconds to symmetrise the CSR adjacency ``rounds`` times."""
    edges = canonical_edges(edges)
    n = int(edges.max()) + 1 if len(edges) else 0
    t = 0.0
    for _ in range(rounds):
        t0 = time.perf_counter()
        if kernel == "vectorized":
            symmetrised_csr(edges, n)
        else:
            _csr_build_reference(edges, n)
        t += time.perf_counter() - t0
    return t


# ----------------------------------------------------------------------
# Partition-serving read path (run store + async HTTP layer)
# ----------------------------------------------------------------------
def _serving_http_hammer(port: int, run_id: int, query_batches,
                         concurrency: int) -> dict:
    """Hammer a live server with concurrent keep-alive bulk lookups.

    ``query_batches`` is one list of vertex-id batches per client
    thread; every batch becomes one ``POST /api/runs/<id>/lookup``.
    Returns sustained throughput and tail latency over the whole run.
    """
    import http.client
    import threading

    per_client_latencies = [[] for _ in range(concurrency)]
    per_client_errors = [0] * concurrency

    def client(idx: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port)
        for ids in query_batches[idx]:
            body = json.dumps({"vertices": ids}).encode("utf-8")
            t0 = time.perf_counter()
            conn.request("POST", f"/api/runs/{run_id}/lookup", body=body,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            resp.read()
            per_client_latencies[idx].append(time.perf_counter() - t0)
            if resp.status != 200:
                per_client_errors[idx] += 1
        conn.close()

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(concurrency)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    latencies = np.concatenate(
        [np.asarray(lat) for lat in per_client_latencies if lat])
    total_lookups = sum(len(ids) for batches in query_batches
                        for ids in batches)
    return {
        "http_concurrency": concurrency,
        "http_requests": int(latencies.size),
        "http_bulk": len(query_batches[0][0]) if query_batches[0] else 0,
        "http_lookups_per_sec": round(total_lookups / wall, 1),
        "http_p99_ms": round(
            float(np.percentile(latencies, 99)) * 1000, 3),
        "http_p50_ms": round(
            float(np.percentile(latencies, 50)) * 1000, 3),
        "http_errors": int(sum(per_client_errors)),
    }


def bench_serving_lookup(graph: CSRGraph, partitions: int, *,
                         rounds: int = 8, batch: int = 8192,
                         concurrency: int = 8,
                         requests_per_client: int = 64, bulk: int = 64,
                         seed: int = 0
                         ) -> tuple[float, float, dict]:
    """Serving read path: bulk-lookup kernels + concurrent HTTP load.

    Builds a throwaway run store (one DBH run over ``graph``), then:

    1. times ``rounds`` bulk vertex lookups of ``batch`` ids through
       each kernel (identical query stream, mmap warm) — the returned
       ``(t_python, t_vectorized)``;
    2. starts the real asyncio server on an ephemeral port and drives
       ``concurrency`` keep-alive clients × ``requests_per_client``
       bulk-``bulk`` lookups through it, returning the throughput /
       p99 dict of :func:`_serving_http_hammer`.
    """
    import shutil
    import tempfile

    from repro.serving import (BackgroundServer, LookupService, RunStore,
                               ServingAPI)

    tmp = tempfile.mkdtemp(prefix="repro-serving-bench-")
    store = RunStore(os.path.join(tmp, "runs.sqlite"))
    try:
        part = PARTITIONER_REGISTRY["dbh"](partitions,
                                           seed=seed).partition(graph)
        run_id = store.add_run(part, seed=seed, label="bench")
        service = LookupService(store)
        rng = np.random.default_rng(seed)
        queries = rng.integers(0, graph.num_vertices,
                               size=(rounds, batch))
        service.bulk_vertex_lookup(run_id, queries[0])  # warm the mmaps

        timings = {}
        for kernel in ("python", "vectorized"):
            t0 = time.perf_counter()
            for ids in queries:
                service.bulk_vertex_lookup(run_id, ids, kernel=kernel)
            timings[kernel] = time.perf_counter() - t0

        query_batches = [
            [rng.integers(0, graph.num_vertices, size=bulk).tolist()
             for _ in range(requests_per_client)]
            for _ in range(concurrency)]
        api = ServingAPI(store, lookup=service)
        with BackgroundServer(api) as server:
            http_stats = _serving_http_hammer(
                server.port, run_id, query_batches, concurrency)
        return timings["python"], timings["vectorized"], http_stats
    finally:
        store.close()
        shutil.rmtree(tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _row(name: str, edge_scale: int, graph: CSRGraph | None,
         t_python: float, t_vectorized: float) -> dict:
    return {
        "kernel": name,
        "edge_scale": edge_scale,
        "vertices": graph.num_vertices if graph is not None else None,
        "edges": graph.num_edges if graph is not None else None,
        "python_seconds": round(t_python, 6),
        "vectorized_seconds": round(t_vectorized, 6),
        "speedup": round(t_python / t_vectorized, 2)
        if t_vectorized > 0 else float("inf"),
    }


def run_perf(edge_scales=(12, 14, 17), partitions: int = 8,
             engine_partitions: int = 256,
             selection_partitions: int = 64,
             streaming_partitions: int = 64,
             wide_partitions: int = 256,
             backends=("threads", "processes"),
             backend_workers: int = 4,
             backend_scales=(18,),
             serving_concurrency: int = 8,
             serving_requests: int = 64,
             serving_bulk: int = 64,
             out: str | None = "BENCH_kernels.json",
             seed: int = 0) -> dict:
    """Time every kernel pair at each scale; optionally write JSON.

    ``partitions`` drives the DNE/NE partitioning benches;
    ``engine_partitions`` drives the GAS gather benches, defaulting to
    the paper's largest cluster scale (§7.4 runs 256 machines), where
    the reference kernel's O(n · P) dense temporaries dominate;
    ``selection_partitions`` drives the expansion-side selection bench
    (default 64 machines — the scale-out regime where §7.4 reports the
    selection phase eating into the wall clock);
    ``streaming_partitions`` drives the streaming-baseline rows
    (default 64, the Table-4/5 sweep scale) and ``wide_partitions``
    the |P| ≫ 64 weak-scaling rows (``hdrf_p256`` and the end-to-end
    ``dne_p256``) exercising packed-bitset membership (default 256).

    ``backends`` / ``backend_workers`` / ``backend_scales`` drive the
    execution-backend rows: one full vectorized DNE run per backend at
    ``partitions`` machines on each ``backend_scales`` graph, against
    the inline ``simulated`` scheduler as the baseline.  Pass an empty
    ``backends`` to skip.  The recorded wall clock is whatever the host
    delivers — on a single-core container the parallel backends lose
    to the inline scheduler and the rows say so.

    The ``serving_lookup`` row (once, at the largest edge scale) times
    the partition-serving read path: the dual-kernel bulk vertex
    lookup, plus ``serving_concurrency`` concurrent HTTP clients ×
    ``serving_requests`` keep-alive bulk-``serving_bulk`` lookups
    against the live asyncio server (sustained lookups/sec, p99
    latency, and the non-200 count in the row's ``http_*`` fields).
    The ``observability_overhead`` row (same scale) pairs an untraced
    ``dne_p256`` run against one with the full telemetry plane live —
    metrics registry installed and Chrome tracer attached.

    Returns the result document: ``{"meta": ..., "kernels": [rows]}``
    with one row per (kernel, scale) holding both kernels' seconds and
    the speedup ratio.
    """
    # Fail before the multi-minute kernel sweep, not in the
    # backend-row loop after it.
    if backends and backend_workers < 1:
        raise ValueError("backend_workers must be >= 1")
    for name in backends:
        validate_backend(name)
    rows = []
    for edge_scale in edge_scales:
        graph = bench_graph(edge_scale, seed=seed)

        py = bench_allocation_phases(graph, partitions, "python")
        vec = bench_allocation_phases(graph, partitions, "vectorized")
        rows.append(_row("dne_one_hop", edge_scale, graph, py[0], vec[0]))
        rows.append(_row("dne_two_hop", edge_scale, graph, py[1], vec[1]))

        rows.append(_row(
            "dne_two_hop_conflict", edge_scale, graph,
            bench_two_hop_conflict(graph, partitions, "python", seed=seed),
            bench_two_hop_conflict(graph, partitions, "vectorized",
                                   seed=seed)))

        py = bench_selection_phase(graph, selection_partitions, "python")
        vec = bench_selection_phase(graph, selection_partitions,
                                    "vectorized")
        rows.append(_row("dne_selection", edge_scale, graph,
                         py[0], vec[0]))
        rows.append(_row("dne_boundary_fold", edge_scale, graph,
                         py[1], vec[1]))

        # |P| >> 64 end-to-end weak scaling (packed membership).  No
        # smoke floor: per-machine batches are tiny at bench scales, so
        # this row tracks the honest crossover (see module docstring).
        rows.append(_row(
            f"dne_p{wide_partitions}", edge_scale, graph,
            bench_dne_end_to_end(graph, wide_partitions, "python"),
            bench_dne_end_to_end(graph, wide_partitions, "vectorized")))

        # oblivious is included without a smoke floor: its reference
        # per-edge set probes win at every measured |P| (which is why
        # its default kernel stays "python") — the row keeps that
        # trade-off visible rather than hiding it.
        for name in ("hdrf", "fennel", "oblivious"):
            rows.append(_row(
                name, edge_scale, graph,
                bench_streaming_partitioner(name, graph,
                                            streaming_partitions, "python"),
                bench_streaming_partitioner(name, graph,
                                            streaming_partitions,
                                            "vectorized")))
        rows.append(_row(
            f"hdrf_p{wide_partitions}", edge_scale, graph,
            bench_streaming_partitioner("hdrf", graph, wide_partitions,
                                        "python"),
            bench_streaming_partitioner("hdrf", graph, wide_partitions,
                                        "vectorized")))

        rows.append(_row("sheep_order", edge_scale, graph,
                         bench_sheep_order(graph, "python"),
                         bench_sheep_order(graph, "vectorized")))

        rows.append(_row("ne_expand", edge_scale, graph,
                         bench_ne_expand(graph, partitions, "python"),
                         bench_ne_expand(graph, partitions, "vectorized")))

        py = bench_engine_gathers(graph, engine_partitions, "python")
        vec = bench_engine_gathers(graph, engine_partitions, "vectorized")
        rows.append(_row("gather_sum", edge_scale, graph, py[0], vec[0]))
        rows.append(_row("gather_min", edge_scale, graph, py[1], vec[1]))

        rows.append(_row("csr_build", edge_scale, graph,
                         bench_csr_build(graph.edges, "python"),
                         bench_csr_build(graph.edges, "vectorized")))

    rows.append(_row("all_gather_sum", 0, None,
                     bench_all_gather_sum(partitions, "python"),
                     bench_all_gather_sum(partitions, "vectorized")))

    # Partition-serving read path, once at the largest kernel scale.
    serving_scale = max(edge_scales)
    serving_graph = bench_graph(serving_scale, seed=seed)
    t_py, t_vec, http_stats = bench_serving_lookup(
        serving_graph, partitions, concurrency=serving_concurrency,
        requests_per_client=serving_requests, bulk=serving_bulk,
        seed=seed)
    row = _row("serving_lookup", serving_scale, serving_graph, t_py,
               t_vec)
    row.update(http_stats)
    rows.append(row)

    # Telemetry overhead: traced vs untraced dne_p256 at the same
    # scale (zero-cost-when-off, quantified; "python" is the untraced
    # baseline here, like the backend rows' "simulated").
    t_off, t_on = bench_observability_overhead(
        serving_graph, wide_partitions, repeats=2)
    row = _row("observability_overhead", serving_scale, serving_graph,
               t_off, t_on)
    row.update({
        "baseline": "untraced",
        "untraced_seconds": row["python_seconds"],
        "traced_seconds": row["vectorized_seconds"],
        "overhead_ratio": round(t_on / t_off, 4)
        if t_off > 0 else float("inf"),
    })
    rows.append(row)

    # Execution-backend rows: full vectorized DNE, simulated scheduler
    # vs real parallel workers.
    for edge_scale in (backend_scales if backends else ()):
        graph = bench_graph(edge_scale, seed=seed)
        t_sim = bench_dne_end_to_end(graph, partitions, "vectorized")
        for backend in backends:
            t_backend = bench_dne_end_to_end(
                graph, partitions, "vectorized", backend=backend,
                workers=backend_workers)
            row = _row(f"dne_backend_{backend}", edge_scale, graph,
                       t_sim, t_backend)
            row.update({
                "baseline": "simulated",
                "backend": backend,
                "workers": backend_workers,
                "simulated_seconds": row["python_seconds"],
                "backend_seconds": row["vectorized_seconds"],
                # Fewer cores than workers: wall clock reflects the host,
                # not the backend — smoke floors skip rather than fail.
                "hardware_limited": bool(
                    (os.cpu_count() or 1) < backend_workers),
            })
            rows.append(row)

    doc = {
        "meta": {
            "generated_by": "repro bench perf",
            "edge_scales": list(edge_scales),
            "edge_factor": _EDGE_FACTOR,
            "partitions": partitions,
            "engine_partitions": engine_partitions,
            "selection_partitions": selection_partitions,
            "streaming_partitions": streaming_partitions,
            "wide_partitions": wide_partitions,
            "backends": list(backends),
            "backend_workers": backend_workers,
            "backend_scales": list(backend_scales),
            "serving_concurrency": serving_concurrency,
            "serving_requests": serving_requests,
            "serving_bulk": serving_bulk,
            "cpu_count": os.cpu_count(),
            "seed": seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "kernels": rows,
    }
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
    return doc
