"""Command-line interface.

Mirrors the workflow of the paper's released tool: partition a graph
from a file or a registered dataset, inspect a saved partition, list
available methods/datasets, or run one of the evaluation experiments.

Examples::

    python -m repro list
    python -m repro partition --dataset pokec --method distributed_ne \
        --partitions 16 --out pokec.part.npz --store runs.sqlite
    python -m repro partition --edges my_graph.tsv --method ne -p 8
    python -m repro inspect pokec.part.npz
    python -m repro serve --store runs.sqlite --port 8080
    python -m repro store import runs.sqlite "benchmarks/results/*.json"
    python -m repro experiment fig6 --dataset pokec
    python -m repro bench perf --scales 12 14 17 --out BENCH_kernels.json

The CLI is a thin shell over the library; everything it does is also
available programmatically (see README quickstart).

Flag scoping: options that only apply to some methods live in their
own argument groups under ``partition`` (execution backend for
``distributed_ne``/``sne``; checkpoint/fault-tolerance flags likewise,
with ``--step-timeout``/``--max-retries`` further requiring
``--backend processes``) and appear under no other subcommand.  The
CLI validates the combination before running and exits 2 with a
specific message on a mismatch.
"""

from __future__ import annotations

import argparse
import inspect
import logging
import sys

import numpy as np

from repro.bench import experiments as experiment_drivers
from repro.bench.harness import format_table
from repro.cluster.backends import BACKENDS
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.edgelist import load_edges_tsv
from repro.kernels import KERNELS
from repro.partitioners import PARTITIONER_REGISTRY
from repro.partitioners.io import load_partition, save_partition

__all__ = ["main", "build_parser"]

_LOG_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")

#: all CLI diagnostics flow through the ``repro.*`` logger namespace;
#: command *output* (tables, metrics, stored-run ids) stays on stdout
_log = logging.getLogger("repro.cli")


def _configure_logging(level_name: str) -> None:
    """Route ``repro.*`` diagnostics to stderr at the requested level.

    The handler is attached once to the namespace root (``repro``) and
    propagation stays on, so embedding applications and pytest's
    ``caplog`` see the records too.  Default WARNING keeps tier-1
    output byte-identical to the pre-logging CLI.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level_name))
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        logger.addHandler(handler)

#: experiment name -> (driver, kwargs builder)
_EXPERIMENTS = {
    "fig6": lambda args: experiment_drivers.fig6_lambda_sweep(
        load_dataset(args.dataset), num_partitions=args.partitions),
    "table1": lambda args: experiment_drivers.table1_bounds(),
    "theorem2": lambda args: experiment_drivers.theorem2_tightness(),
    "fig8": lambda args: experiment_drivers.fig8_replication_factor(
        datasets=(args.dataset,), partition_counts=(args.partitions,)),
    "fig9": lambda args: experiment_drivers.fig9_memory(
        datasets=(args.dataset,), num_partitions=args.partitions),
    "fig10j": lambda args: experiment_drivers.fig10j_weak_scaling(),
    "table4": lambda args: experiment_drivers.table4_sequential_comparison(
        datasets=(args.dataset,), num_partitions=args.partitions),
    "table5": lambda args: experiment_drivers.table5_applications(
        datasets=(args.dataset,), num_partitions=args.partitions),
    "table6": lambda args: experiment_drivers.table6_road_networks(
        num_partitions=args.partitions),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed NE reproduction: partition graphs and "
                    "rerun the paper's experiments.")
    parser.add_argument("--log-level", choices=_LOG_LEVELS,
                        default="WARNING",
                        help="diagnostic verbosity on stderr for the "
                             "repro.* loggers (default WARNING; command "
                             "output on stdout is unaffected)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list methods and datasets")

    p_part = sub.add_parser(
        "partition", help="partition a graph",
        epilog="The execution-backend and fault-tolerance groups only "
               "apply to the methods named in their titles; other "
               "methods reject those flags with exit code 2.")
    source = p_part.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", help="registered dataset stand-in")
    source.add_argument("--edges", help="TSV edge-list file (src\\tdst)")
    p_part.add_argument("--method", default="distributed_ne",
                        choices=sorted(PARTITIONER_REGISTRY))
    p_part.add_argument("--partitions", "-p", type=int, default=16)
    p_part.add_argument("--seed", type=int, default=0)
    p_part.add_argument("--kernel", choices=KERNELS, default=None,
                        help="implementation to run for methods with a "
                             "kernel= flag (default: the method's own "
                             "default, i.e. vectorized)")
    p_part.add_argument("--out", help="write result to this .npz path")
    p_part.add_argument("--store", metavar="DB",
                        help="also record the run (assignment arrays, "
                             "replica sets, metrics) in this SQLite "
                             "run store, servable via `repro serve`")
    p_part.add_argument("--store-label", default=None,
                        help="label for the stored run (default: the "
                             "dataset or edges path)")

    g_backend = p_part.add_argument_group(
        "execution backend (distributed_ne, sne only)",
        "Who runs the per-partition supersteps.  Other methods have "
        "no backend= flag and reject these.")
    g_backend.add_argument("--backend", choices=BACKENDS, default=None,
                           help="simulated scheduler (default), thread "
                                "pool, or shared-memory worker "
                                "processes")
    g_backend.add_argument("--workers", type=int, default=None,
                           help="worker count for the threads/processes "
                                "backends (default 4)")

    g_fault = p_part.add_argument_group(
        "checkpointing and fault tolerance (distributed_ne, sne only)",
        "Superstep-granular checkpoint/resume on any backend; worker "
        "supervision (--step-timeout/--max-retries) additionally "
        "requires --backend processes.")
    g_fault.add_argument("--checkpoint-dir", default=None,
                         help="directory for superstep-granular "
                              "checkpoints")
    g_fault.add_argument("--checkpoint-every", type=int, default=None,
                         help="checkpoint cadence in iterations "
                              "(distributed_ne; default 1)")
    g_fault.add_argument("--resume", action="store_true",
                         help="resume from the newest checkpoint in "
                              "--checkpoint-dir (bit-identical to the "
                              "uninterrupted run)")
    g_fault.add_argument("--step-timeout", type=float, default=None,
                         help="seconds before a worker reply counts as "
                              "hung (requires --backend processes)")
    g_fault.add_argument("--max-retries", type=int, default=None,
                         help="respawn-and-retry budget for failed/"
                              "hung workers (requires --backend "
                              "processes)")

    g_obs = p_part.add_argument_group(
        "observability (methods with a tracer= flag)",
        "Strictly observational: tracing on vs off is bit-identical "
        "on assignments and accounting totals.")
    g_obs.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write per-phase/per-superstep spans as "
                            "Chrome trace-event JSON (loadable in "
                            "Perfetto / chrome://tracing; summarize "
                            "with `repro trace summarize FILE`)")

    p_inspect = sub.add_parser("inspect",
                               help="print metrics of a saved partition")
    p_inspect.add_argument("path")

    p_serve = sub.add_parser(
        "serve", help="serve a run store over async HTTP (docs/API.md)")
    p_serve.add_argument("--store", required=True, metavar="DB",
                         help="SQLite run store written by `repro "
                              "partition --store` or `repro store "
                              "import`")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument("--hot-vertices", type=int, default=4096,
                         help="capacity of the hot-vertex LRU read "
                              "cache (default 4096)")

    p_store = sub.add_parser(
        "store", help="inspect or backfill a run store")
    store_sub = p_store.add_subparsers(dest="store_command",
                                       required=True)
    p_import = store_sub.add_parser(
        "import", help="import benchmarks/results/*.json experiment "
                       "rows as metrics-only runs")
    p_import.add_argument("db", help="run store path (created if absent)")
    p_import.add_argument("patterns", nargs="+",
                          help="JSON files or globs to import")
    p_list = store_sub.add_parser("list", help="list stored runs")
    p_list.add_argument("db")
    p_list.add_argument("--limit", type=int, default=50)
    p_list.add_argument("--offset", type=int, default=0)

    p_exp = sub.add_parser("experiment", help="run an evaluation driver")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    p_exp.add_argument("--dataset", default="pokec")
    p_exp.add_argument("--partitions", "-p", type=int, default=16)

    p_bench = sub.add_parser(
        "bench", help="performance benchmarks of the library itself")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_perf = bench_sub.add_parser(
        "perf", help="time vectorized vs reference kernels on RMAT graphs")
    p_perf.add_argument("--scales", type=int, nargs="+", default=[12, 14, 17],
                        metavar="LOG2_EDGES",
                        help="log2 target edge counts (default: 12 14 17)")
    p_perf.add_argument("--partitions", "-p", type=int, default=8)
    p_perf.add_argument("--engine-partitions", type=int, default=256,
                        help="cluster size for the GAS gather benches "
                             "(default 256, the paper's §7.4 maximum)")
    p_perf.add_argument("--selection-partitions", type=int, default=64,
                        help="cluster size for the DNE selection-phase "
                             "benches (default 64 machines)")
    p_perf.add_argument("--streaming-partitions", type=int, default=64,
                        help="|P| for the streaming-baseline rows "
                             "(default 64)")
    p_perf.add_argument("--wide-partitions", type=int, default=256,
                        help="|P| for the packed-membership weak-scaling "
                             "rows (default 256)")
    p_perf.add_argument("--backend", nargs="*", dest="backends",
                        choices=("threads", "processes"),
                        default=["threads", "processes"],
                        metavar="BACKEND",
                        help="execution backends to time against the "
                             "simulated scheduler on a full DNE run "
                             "(default: threads processes; pass with no "
                             "values to skip the backend rows)")
    p_perf.add_argument("--workers", type=int, default=4,
                        help="worker count for the backend rows "
                             "(default 4)")
    p_perf.add_argument("--backend-scales", type=int, nargs="+",
                        default=[18], metavar="LOG2_EDGES",
                        help="log2 edge counts for the backend rows "
                             "(default: 18)")
    p_perf.add_argument("--seed", type=int, default=0)
    p_perf.add_argument("--out", default="BENCH_kernels.json",
                        help="JSON output path ('-' to skip writing)")

    p_trace = sub.add_parser(
        "trace", help="work with Chrome trace-event files from "
                      "--trace-out")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summarize = trace_sub.add_parser(
        "summarize", help="print a per-phase time/ops table for a trace")
    p_summarize.add_argument("path", help="trace JSON from --trace-out or "
                                          "GET /api/runs/{id}/trace")

    p_app = sub.add_parser(
        "app", help="run a graph application on a saved partition")
    p_app.add_argument("name", choices=["sssp", "wcc", "pagerank"])
    p_app.add_argument("path", help="partition file from `repro partition`")
    p_app.add_argument("--source", type=int, default=0,
                       help="SSSP source vertex")
    p_app.add_argument("--iterations", type=int, default=20,
                       help="PageRank iterations")

    return parser


def _cmd_list(args) -> int:
    print("partitioners:")
    for name in sorted(PARTITIONER_REGISTRY):
        print(f"  {name}")
    print("datasets:")
    for name, spec in sorted(DATASETS.items()):
        kind = "skewed" if spec.skewed else "road"
        print(f"  {name:14s} ({kind}; paper size "
              f"{spec.paper_vertices:,} vertices / "
              f"{spec.paper_edges:,} edges)")
    return 0


def _cmd_partition(args) -> int:
    if args.dataset:
        graph = load_dataset(args.dataset, seed=args.seed)
        label = args.dataset
    else:
        graph = CSRGraph(load_edges_tsv(args.edges))
        label = args.edges
    _log.info("%s: %d vertices, %d edges", label, graph.num_vertices,
              graph.num_edges)

    cls = PARTITIONER_REGISTRY[args.method]
    params = inspect.signature(cls.__init__).parameters
    kwargs = {}
    if args.kernel is not None:
        if "kernel" not in params:
            _log.error("method %r has no kernel= flag", args.method)
            return 2
        kwargs["kernel"] = args.kernel
    if args.workers is not None and args.backend not in ("threads",
                                                         "processes"):
        _log.error("--workers requires --backend threads|processes")
        return 2
    if args.backend is not None:
        if "backend" not in params:
            _log.error("method %r has no backend= flag", args.method)
            return 2
        kwargs["backend"] = args.backend
        if args.workers is not None:
            kwargs["workers"] = args.workers
    if args.resume and args.checkpoint_dir is None:
        _log.error("--resume requires --checkpoint-dir")
        return 2
    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        _log.error("--checkpoint-every requires --checkpoint-dir")
        return 2
    if args.checkpoint_dir is not None:
        if "checkpoint_dir" not in params:
            _log.error("method %r has no checkpoint_dir= flag", args.method)
            return 2
        kwargs["checkpoint_dir"] = args.checkpoint_dir
        kwargs["resume"] = args.resume
        if args.checkpoint_every is not None:
            if "checkpoint_every" not in params:
                _log.error("method %r has no checkpoint_every= flag",
                           args.method)
                return 2
            kwargs["checkpoint_every"] = args.checkpoint_every
    if args.step_timeout is not None or args.max_retries is not None:
        if args.backend != "processes":
            _log.error("--step-timeout/--max-retries require "
                       "--backend processes")
            return 2
        if args.step_timeout is not None:
            kwargs["step_timeout"] = args.step_timeout
        if args.max_retries is not None:
            kwargs["max_retries"] = args.max_retries
    tracer = None
    if args.trace_out is not None:
        if "tracer" not in params:
            _log.error("method %r has no tracer= flag", args.method)
            return 2
        from repro.observability import Tracer
        tracer = Tracer()
        kwargs["tracer"] = tracer
    result = cls(args.partitions, seed=args.seed, **kwargs).partition(graph)
    print(f"method={result.method} partitions={args.partitions}")
    if args.kernel is not None:
        print(f"  kernel             : {args.kernel}")
    if args.backend is not None:
        print(f"  backend            : {args.backend}"
              + (f" ({args.workers} workers)" if args.workers else ""))
    print(f"  replication factor : {result.replication_factor():.3f}")
    print(f"  edge balance       : {result.edge_balance():.3f}")
    print(f"  vertex balance     : {result.vertex_balance():.3f}")
    print(f"  elapsed            : {result.elapsed_seconds:.2f}s")
    if result.iterations:
        print(f"  iterations         : {result.iterations}")

    if tracer is not None:
        tracer.write(args.trace_out)
        print(f"  trace              : {args.trace_out} "
              f"({len(tracer)} events)")
    if args.out:
        save_partition(args.out, result)
        print(f"  saved to           : {args.out}")
    if args.store:
        from repro.serving import RunStore
        with RunStore(args.store) as store:
            run_id = store.add_run(result, seed=args.seed,
                                   label=args.store_label or label)
        print(f"  stored as run      : {run_id} (in {args.store})")
    return 0


def _cmd_serve(args) -> int:
    from repro.serving import RunStore, ServingAPI, serve
    store = RunStore(args.store)
    api = ServingAPI(store, hot_vertices=args.hot_vertices)
    print(f"serving {args.store} ({store.run_count()} runs) on "
          f"http://{args.host}:{args.port}/api — Ctrl-C to stop")
    serve(api, host=args.host, port=args.port)
    return 0


def _cmd_store(args) -> int:
    from repro.serving import RunStore, import_results
    with RunStore(args.db) as store:
        if args.store_command == "import":
            run_ids = import_results(store, args.patterns)
            print(f"imported {len(run_ids)} runs into {args.db} "
                  f"({store.run_count()} total)")
            return 0
        rows = store.list_runs(limit=args.limit, offset=args.offset)
        if not rows:
            print("no runs")
            return 1
        headers = ["run_id", "label", "method", "num_partitions",
                   "num_edges", "status", "created_utc"]
        print(format_table(
            headers, [[row.get(h, "") for h in headers] for row in rows],
            title=f"runs in {args.db}"))
        return 0


def _cmd_inspect(args) -> int:
    from repro.metrics.report import format_report, partition_report
    result = load_partition(args.path)
    print(f"{args.path}:")
    print(format_report(partition_report(result)))
    return 0


def _cmd_experiment(args) -> int:
    rows = _EXPERIMENTS[args.name](args)
    if not rows:
        print("no rows")
        return 1
    if isinstance(rows, dict):
        rows = [rows]
    headers = list(rows[0].keys())
    print(format_table(headers,
                       [[row.get(h, "") for h in headers] for row in rows],
                       title=f"experiment: {args.name}"))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.perf import run_perf
    out = None if args.out == "-" else args.out
    doc = run_perf(edge_scales=tuple(args.scales),
                   partitions=args.partitions,
                   engine_partitions=args.engine_partitions,
                   selection_partitions=args.selection_partitions,
                   streaming_partitions=args.streaming_partitions,
                   wide_partitions=args.wide_partitions,
                   backends=tuple(args.backends),
                   backend_workers=args.workers,
                   backend_scales=tuple(args.backend_scales),
                   out=out, seed=args.seed)
    headers = ["kernel", "edge_scale", "edges",
               "python_seconds", "vectorized_seconds", "speedup"]
    print(format_table(
        headers,
        [[row.get(h, "") for h in headers] for row in doc["kernels"]],
        title="kernel microbenchmarks (vectorized vs python reference)"))
    if out:
        print(f"written to {out}")
    return 0


def _cmd_trace(args) -> int:
    from repro.observability import load_trace, summarize
    try:
        rows = summarize(load_trace(args.path))
    except (OSError, ValueError) as exc:
        _log.error("cannot read trace %s: %s", args.path, exc)
        return 2
    if not rows:
        print("no spans")
        return 1
    headers = ["cat", "name", "count", "total_ms", "executed", "skipped"]
    print(format_table(
        headers, [[row.get(h, "") for h in headers] for row in rows],
        title=f"trace: {args.path}"))
    return 0


def _cmd_app(args) -> int:
    from repro.apps import pagerank, sssp, wcc
    part = load_partition(args.path)
    if args.name == "sssp":
        values, stats = sssp(part, source=args.source)
        finite = values[np.isfinite(values)] if len(values) else values
        print(f"sssp from {args.source}: reached {len(finite)} vertices, "
              f"eccentricity {int(finite.max()) if len(finite) else 0}")
    elif args.name == "wcc":
        labels, stats = wcc(part)
        print(f"wcc: {len(set(labels.tolist()))} components")
    else:
        ranks, stats = pagerank(part, iterations=args.iterations)
        top = int(ranks.argmax())
        print(f"pagerank: top vertex {top} (rank {ranks[top]:.2e})")
    print(f"  supersteps        : {stats.supersteps}")
    print(f"  communication     : {stats.comm_bytes:,} bytes")
    print(f"  workload balance  : {stats.workload_balance():.3f}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args.log_level)
    handlers = {
        "list": _cmd_list,
        "partition": _cmd_partition,
        "inspect": _cmd_inspect,
        "serve": _cmd_serve,
        "store": _cmd_store,
        "experiment": _cmd_experiment,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "app": _cmd_app,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`) — exit quietly.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
