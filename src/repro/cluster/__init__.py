"""Simulated distributed runtime.

The paper runs on up to 256 MPI machines; this package provides the
substitute substrate (see DESIGN.md §2): a deterministic, single-host
message-passing simulator.  Algorithms written against it look like
their MPI counterparts — named processes exchange tagged messages and
synchronise on barriers — and the runtime *accounts* for everything the
paper's evaluation measures: bytes moved, message counts, barrier
(iteration) counts, and per-process peak memory of registered
structures.

* :mod:`repro.cluster.accounting` — counters and the byte-sizing model.
* :mod:`repro.cluster.runtime` — :class:`SimulatedCluster` and
  :class:`Process`.
* :mod:`repro.cluster.backends` — pluggable superstep execution:
  the inline deterministic scheduler, a thread pool, or
  shared-memory worker processes, all bit-identical on accounting.
"""

from repro.cluster.accounting import ClusterStats, ProcessStats, payload_nbytes
from repro.cluster.runtime import Process, SimulatedCluster

__all__ = [
    "SimulatedCluster",
    "Process",
    "ClusterStats",
    "ProcessStats",
    "payload_nbytes",
]
