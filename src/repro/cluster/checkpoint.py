"""On-disk superstep checkpoints for long partitioning runs.

A :class:`CheckpointStore` owns a directory of snapshot files, one per
checkpointed barrier boundary.  Each snapshot is a single pickle
holding everything a driver needs to re-enter its loop bit-for-bit:
the per-process state blobs (flat per-partition arrays, boundary
queues, RNG state — see ``Process.checkpoint_state``), the cluster's
accounting totals, the backend's superstep ledger, and the driver's
own loop variables, plus a ``meta`` dict the resuming run validates
against its own configuration (graph shape, seed, kernel, |P|).

Writes are atomic (temp file + ``os.replace``) so a run killed
mid-checkpoint leaves the previous snapshot intact, and the store
prunes to the ``keep`` most recent snapshots so an N-thousand-barrier
run does not fill the disk.

Invariants pinned by ``tests/test_faults.py`` (CI ``chaos`` job) —
hold them when extending this module:

* **resume bit-identity** — a run killed at any checkpoint boundary
  and resumed matches the uninterrupted run bit-for-bit: assignments,
  message/byte/barrier/memory totals, and the superstep ledger.  Any
  driver state that influences the loop MUST join the snapshot
  payload, or resume silently diverges;
* **backend neutrality** — a snapshot written under one backend
  resumes under any other (the payload is per-process state + totals,
  never backend handles);
* **atomicity** — a crash mid-write never corrupts the newest
  readable snapshot (``tests/test_faults.py`` kills writers
  mid-checkpoint);
* **loud mismatch** — resuming against a different graph, seed,
  kernel, or |P| raises :class:`CheckpointMismatch` naming both
  sides, never a quiet wrong answer.

The serving plane reuses the store read-only: an API job submitted
with ``checkpoint_every`` reports :meth:`CheckpointStore.steps` as
live progress (``docs/API.md``).

Snapshots are pickles: load them only from directories you wrote.
"""

from __future__ import annotations

import os
import pickle
import re
import time

from repro.observability.metrics import get_registry

__all__ = ["CheckpointStore", "CheckpointMismatch"]

_FILE_RE = re.compile(r"^ckpt-(\d{8})\.pkl$")


class CheckpointMismatch(RuntimeError):
    """A resume was attempted against an incompatible checkpoint.

    Raised when the snapshot's ``meta`` disagrees with the resuming
    run's configuration — resuming a 64-partition run as 4 partitions,
    against a different graph, or under a different kernel would
    silently produce garbage, so the mismatch fails loudly with both
    sides of the disagreement.
    """

    def __init__(self, mismatches: dict):
        lines = ", ".join(f"{key}: checkpoint={a!r} run={b!r}"
                          for key, (a, b) in sorted(mismatches.items()))
        super().__init__(f"checkpoint does not match this run ({lines})")
        self.mismatches = mismatches


class CheckpointStore:
    """Directory of atomic, pruned, step-numbered snapshot pickles."""

    def __init__(self, root: str, keep: int = 2):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.root = str(root)
        self.keep = keep
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, step: int) -> str:
        return os.path.join(self.root, f"ckpt-{step:08d}.pkl")

    def steps(self) -> list:
        """Snapshot step numbers present on disk, ascending."""
        out = []
        for name in os.listdir(self.root):
            match = _FILE_RE.match(name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    # ------------------------------------------------------------------
    def save(self, step: int, payload: dict) -> str:
        """Write the snapshot for ``step`` atomically; prune old ones."""
        t0 = time.perf_counter()
        path = self._path(step)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        for old in self.steps()[:-self.keep]:
            try:
                os.remove(self._path(old))
            except FileNotFoundError:  # pragma: no cover - racing cleanup
                pass
        registry = get_registry()
        registry.counter_inc("repro_checkpoint_writes_total")
        registry.observe("repro_checkpoint_write_seconds",
                         time.perf_counter() - t0)
        return path

    def load(self, step: int) -> dict:
        t0 = time.perf_counter()
        with open(self._path(step), "rb") as fh:
            payload = pickle.load(fh)
        registry = get_registry()
        registry.counter_inc("repro_checkpoint_restores_total")
        registry.observe("repro_checkpoint_restore_seconds",
                         time.perf_counter() - t0)
        return payload

    def load_latest(self) -> dict | None:
        """The most recent snapshot, or ``None`` when the store is empty."""
        steps = self.steps()
        if not steps:
            return None
        return self.load(steps[-1])

    # ------------------------------------------------------------------
    @staticmethod
    def check_meta(snapshot: dict, expected: dict) -> None:
        """Validate a snapshot's ``meta`` against the resuming run.

        Every key in ``expected`` must be present and equal in the
        snapshot's meta; any disagreement raises
        :class:`CheckpointMismatch` naming all mismatched keys.
        """
        meta = snapshot.get("meta", {})
        mismatches = {key: (meta.get(key), value)
                      for key, value in expected.items()
                      if meta.get(key) != value}
        if mismatches:
            raise CheckpointMismatch(mismatches)
