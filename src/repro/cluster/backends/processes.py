"""Multiprocessing execution backend.

Real OS processes run the supersteps.  The big read-only structures —
the CSR graph arrays and the flat per-partition state — are mapped
into every worker as zero-copy ``multiprocessing.shared_memory`` views
(:mod:`repro.cluster.backends.shm`); the only data crossing the parent
boundary per superstep is the barrier-batched ``(src, dst, tag)``
payload buffers (worker outboxes in, drained mailboxes out) plus small
counter gathers.

Topology: each worker owns a fixed subset of the cluster's process
ids for the whole run — process objects are *built inside* the worker
(from a picklable :class:`WorkerProgram`) and never travel.  Per
superstep the parent

1. routes each step to the worker owning its pid and ships, to every
   worker, the mailbox entries delivered (at the last barrier) for the
   pids it owns;
2. workers run their steps with outboxes armed, against a local
   mailbox-only cluster;
3. the parent merges the returned outboxes in global step-list order
   via :func:`~repro.cluster.backends.base.apply_outbox`, so pricing,
   totals, and delivery order are bit-identical to the simulated
   scheduler.

A step exception travels back as a ``("step_error", pid, traceback)``
reply — every request gets exactly one reply, so a crash surfaces as
:class:`~repro.cluster.backends.base.WorkerStepError` naming the
partition, never as a hang; a dead worker surfaces as ``EOFError`` on
its pipe, repackaged the same way.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback

from repro.cluster.backends.base import (ExecutionBackend, StepResult,
                                         WorkerStepError, apply_outbox)
from repro.cluster.backends.shm import ShmArena, graph_from_views, \
    graph_to_arrays
from repro.cluster.runtime import SimulatedCluster

__all__ = ["ProcessesBackend", "WorkerProgram"]


def _mp_context():
    """Prefer fork (fast, inherits the parent image); fall back to spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class WorkerProgram:
    """Picklable recipe for building one worker's share of the cluster.

    Subclasses implement :meth:`build`, constructing the process
    objects for the pids this worker owns from the attached
    shared-memory views.  Runs once per worker at startup; everything
    it needs must either be picklable constructor state or live in an
    arena.
    """

    def build(self, owned_pids, views: dict) -> dict:
        """Return ``{pid: Process}`` for ``owned_pids``.

        ``views`` maps arena name -> attached :class:`ShmArena`.
        """
        raise NotImplementedError

    def build_plane(self, procs: dict):
        """Optional fused dispatch plane over this worker's processes.

        Called once after :meth:`build`.  Return ``None`` (the
        default) for per-process dispatch; return an object with
        ``methods`` / ``run(method, pids)`` (e.g.
        :class:`~repro.core.fused.FusedDnePlane`) to let the worker
        fuse a superstep whose steps all name a supported method.
        """
        return None


def _fused_items_method(plane, items):
    """The single plane method one worker's items fuse to, or ``None``.

    Mirrors ``ExecutionBackend._fusable_method`` for the worker-side
    item tuples ``(idx, pid, method, args)``.
    """
    if plane is None:
        return None
    methods = {m for _, _, m, _ in items if m is not None}
    if len(methods) != 1:
        return None
    method = next(iter(methods))
    if method not in plane.methods:
        return None
    if any(args for _, _, m, args in items if m is not None):
        return None
    return method


def _run_items(procs, plane, items, gather):
    """Run one worker's superstep share; returns ``(results, failure)``.

    Short-circuited items (``method is None``) cost nothing but still
    gather.  When every live item names the same plane-supported
    method, one fused plane call replaces the per-item loop, with
    every live pid's outbox armed so each process's emissions land in
    its own replay slot.
    """
    fused = _fused_items_method(plane, items)
    if fused is not None:
        run_pids = [pid for _, pid, m, _ in items if m is not None]
        outboxes: dict = {}
        for pid in run_pids:
            outbox: list = []
            procs[pid]._outbox = outbox
            outboxes[pid] = outbox
        t0 = time.perf_counter()
        try:
            values = plane.run(fused, run_pids)
        except Exception:  # noqa: BLE001 - shipped to parent
            return [], (run_pids[0], traceback.format_exc())
        finally:
            for pid in run_pids:
                procs[pid]._outbox = None
        seconds = time.perf_counter() - t0
        results = []
        for idx, pid, method, args in items:
            proc = procs[pid]
            gathered = {a: getattr(proc, a) for a in gather}
            if method is None:
                results.append((idx, pid, None, 0.0, [], gathered))
            else:
                results.append((idx, pid, values.get(pid), seconds,
                                outboxes[pid], gathered))
        return results, None
    results = []
    for idx, pid, method, args in items:
        proc = procs[pid]
        if method is None:
            results.append((idx, pid, None, 0.0, [],
                            {a: getattr(proc, a) for a in gather}))
            continue
        outbox: list = []
        proc._outbox = outbox
        t0 = time.perf_counter()
        try:
            value = getattr(proc, method)(*args)
        except Exception:  # noqa: BLE001 - shipped to parent
            return results, (pid, traceback.format_exc())
        finally:
            proc._outbox = None
        seconds = time.perf_counter() - t0
        gathered = {a: getattr(proc, a) for a in gather}
        results.append((idx, pid, value, seconds, outbox, gathered))
    return results, None


def _worker_main(conn, program: WorkerProgram, owned_pids,
                 arena_specs: dict) -> None:
    views = {name: ShmArena.attach(spec)
             for name, spec in arena_specs.items()}
    try:
        procs = program.build(owned_pids, views)
        plane = program.build_plane(procs)
        # Initial resident reports (made in constructors, before any
        # cluster attach) travel to the parent accountant with the
        # ready handshake.
        pending = {pid: dict(proc._pending_resident)
                   for pid, proc in procs.items()}
        # Worker-local cluster: mailboxes only.  All accounting flows
        # through outboxes; steps never send eagerly here because the
        # outbox is always armed while they run.
        wcluster = SimulatedCluster()
        for pid in owned_pids:
            wcluster.add_process(procs[pid])
        conn.send(("ready", pending))
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "step":
                _, items, inbox, gather = msg
                for key, delivered in inbox:
                    wcluster._delivered[key].extend(delivered)
                results, failure = _run_items(procs, plane, items, gather)
                if failure is not None:
                    conn.send(("step_error", failure[0], failure[1]))
                else:
                    conn.send(("step_ok", results))
            elif kind == "gather":
                _, requests = msg
                conn.send(("ok", {
                    pid: {a: getattr(procs[pid], a) for a in attrs}
                    for pid, attrs in requests}))
            elif kind == "call":
                _, requests = msg
                try:
                    conn.send(("ok", {pid: getattr(procs[pid], method)()
                                      for pid, method in requests}))
                except Exception:  # noqa: BLE001 - shipped to parent
                    conn.send(("call_error", traceback.format_exc()))
            elif kind == "close":
                conn.send(("ok", None))
                return
    finally:
        for view in views.values():
            view.close()
        conn.close()


def _graph_task_worker(conn, fn, arena_spec, args) -> None:
    arena = ShmArena.attach(arena_spec)
    try:
        graph = graph_from_views(arena)
        try:
            conn.send(("ok", fn(graph, *args)))
        except Exception:  # noqa: BLE001 - shipped to parent
            conn.send(("error", traceback.format_exc()))
    finally:
        arena.close()
        conn.close()


class ProcessesBackend(ExecutionBackend):
    """Superstep scheduler over persistent worker processes."""

    name = "processes"

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._ctx = _mp_context()
        self._procs_mp: list = []
        self._conns: list = []
        self._arenas: dict = {}
        self._worker_of: dict = {}
        self._started = False

    # ------------------------------------------------------------------
    def start(self, cluster, program: WorkerProgram, pid_to_worker: dict,
              arenas: dict) -> None:
        """Spawn workers and build their process shares.

        ``pid_to_worker`` maps every cluster pid to a worker index in
        ``[0, workers)``; ``arenas`` maps name -> parent-created
        :class:`ShmArena` (ownership passes to the backend: closed and
        unlinked at :meth:`close`).
        """
        self.cluster = cluster
        self.steps_executed = 0
        self.steps_skipped = 0
        self._arenas = dict(arenas)
        nworkers = self.workers
        self._worker_of = {pid: w % nworkers
                           for pid, w in pid_to_worker.items()}
        owned = [[] for _ in range(nworkers)]
        for pid, w in self._worker_of.items():
            owned[w].append(pid)
        specs = {name: arena.spec() for name, arena in self._arenas.items()}
        for w in range(nworkers):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, program, owned[w], specs),
                daemon=True, name=f"repro-backend-{w}")
            proc.start()
            child_conn.close()
            self._procs_mp.append(proc)
            self._conns.append(parent_conn)
        self._started = True
        # Ready handshake: forward constructor-time resident reports to
        # the parent accountant (per-pid, so application order across
        # pids cannot change any per-process peak).
        for w in range(nworkers):
            reply = self._recv(w)
            for pid, resident in reply[1].items():
                stats = cluster.stats.stats_for(pid)
                for name, nbytes in resident.items():
                    stats.set_resident(name, nbytes)

    def _send_to(self, w: int, msg) -> None:
        # A worker killed between supersteps (OOM, segfault) surfaces
        # on the *send* side as a broken pipe; wrap it the same way as
        # the recv side so the error contract (WorkerStepError naming
        # the worker, never an anonymous pipe traceback) holds.
        try:
            self._conns[w].send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerStepError(
                f"worker-{w}", f"worker process died: {exc!r}") from exc

    def _recv(self, w: int):
        try:
            reply = self._conns[w].recv()
        except (EOFError, OSError) as exc:
            raise WorkerStepError(
                f"worker-{w}", f"worker process died: {exc!r}") from exc
        return reply

    # ------------------------------------------------------------------
    def run_superstep(self, steps, gather=()) -> dict:
        assert self._started, "backend not started"
        self._count_steps(steps)
        nworkers = len(self._conns)
        per_worker = [[] for _ in range(nworkers)]
        for idx, (pid, method, args) in enumerate(steps):
            per_worker[self._worker_of[pid]].append((idx, pid, method, args))
        # Ship every owned pid's freshly-delivered mail along with the
        # step list (exactly the payload buffers the last barrier
        # priced; ownership transfers to the worker mailbox).
        inboxes = [[] for _ in range(nworkers)]
        delivered = self.cluster._delivered
        for key in list(delivered.keys()):
            w = self._worker_of.get(key[0])
            if w is not None:
                inboxes[w].append((key, delivered.pop(key)))
        gather = tuple(gather)
        for w in range(nworkers):
            self._send_to(w, ("step", per_worker[w], inboxes[w], gather))
        results = []
        failure = None
        for w in range(nworkers):
            reply = self._recv(w)
            if reply[0] == "step_error" and failure is None:
                failure = (reply[1], reply[2])
            elif reply[0] == "step_ok":
                results.extend(reply[1])
        if failure is not None:
            raise WorkerStepError(failure[0], failure[1])
        # Merge outboxes in global step-list order: the exact call
        # sequence the simulated scheduler would have made.
        results.sort(key=lambda item: item[0])
        out = {}
        for _, pid, value, seconds, outbox, gathered in results:
            apply_outbox(self.cluster, pid, outbox)
            out[pid] = StepResult(value, seconds, gathered)
        return out

    # ------------------------------------------------------------------
    def gather(self, pids, attrs) -> dict:
        attrs = tuple(attrs)
        nworkers = len(self._conns)
        per_worker = [[] for _ in range(nworkers)]
        for pid in pids:
            per_worker[self._worker_of[pid]].append((pid, attrs))
        active = [w for w in range(nworkers) if per_worker[w]]
        for w in active:
            self._send_to(w, ("gather", per_worker[w]))
        out = {}
        for w in active:
            out.update(self._recv(w)[1])
        return out

    def call_all(self, pids, method: str) -> dict:
        nworkers = len(self._conns)
        per_worker = [[] for _ in range(nworkers)]
        for pid in pids:
            per_worker[self._worker_of[pid]].append((pid, method))
        active = [w for w in range(nworkers) if per_worker[w]]
        for w in active:
            self._send_to(w, ("call", per_worker[w]))
        out = {}
        for w in active:
            reply = self._recv(w)
            if reply[0] == "call_error":
                raise WorkerStepError(f"worker-{w}", reply[1])
            out.update(reply[1])
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
                conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
            conn.close()
        for proc in self._procs_mp:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        self._conns = []
        self._procs_mp = []
        for arena in self._arenas.values():
            arena.close()
            arena.unlink()
        self._arenas = {}
        self._started = False

    # ------------------------------------------------------------------
    def run_graph_task(self, fn, graph, *args):
        """One-shot offload: graph via shared memory, result via pipe."""
        arena = ShmArena.create(graph_to_arrays(graph))
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_graph_task_worker,
            args=(child_conn, fn, arena.spec(), args),
            daemon=True, name="repro-graph-task")
        proc.start()
        child_conn.close()
        try:
            try:
                reply = parent_conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerStepError(
                    "graph-task", f"worker process died: {exc!r}") from exc
            if reply[0] == "error":
                raise WorkerStepError("graph-task", reply[1])
            return reply[1]
        finally:
            parent_conn.close()
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
            arena.close()
            arena.unlink()
