"""Multiprocessing execution backend with worker supervision.

Real OS processes run the supersteps.  The big read-only structures —
the CSR graph arrays and the flat per-partition state — are mapped
into every worker as zero-copy ``multiprocessing.shared_memory`` views
(:mod:`repro.cluster.backends.shm`); the only data crossing the parent
boundary per superstep is the barrier-batched ``(src, dst, tag)``
payload buffers (worker outboxes in, drained mailboxes out) plus small
counter gathers.

Topology: each worker owns a fixed subset of the cluster's process
ids for the whole run — process objects are *built inside* the worker
(from a picklable :class:`WorkerProgram`) and never travel.  Per
superstep the parent

1. routes each step to the worker owning its pid and ships, to every
   worker, the mailbox entries delivered (at the last barrier) for the
   pids it owns;
2. workers run their steps with outboxes armed, against a local
   mailbox-only cluster;
3. the parent merges the returned outboxes in global step-list order
   via :func:`~repro.cluster.backends.base.apply_outbox`, so pricing,
   totals, and delivery order are bit-identical to the simulated
   scheduler.

Failure contract
----------------
A step exception travels back as a ``("step_error", pid, traceback)``
reply — every request gets exactly one reply, so a crash surfaces as
:class:`~repro.cluster.backends.base.WorkerStepError` naming the
partition, never as a hang; a dead worker surfaces as ``EOFError`` on
its pipe, repackaged the same way.  ``step_timeout`` bounds every
reply wait (``Connection.poll``), so a *hung* worker also surfaces as
a ``WorkerStepError`` instead of blocking the parent forever.

Supervision (``max_retries > 0``) upgrades those failures from fatal
to recoverable.  Each successful step reply piggybacks a worker-state
snapshot (per-process :meth:`~repro.cluster.runtime.Process.checkpoint_state`
blobs, leftover worker-mailbox entries, fused-plane transients), and
the parent retains each superstep's shipped inboxes until the step is
acknowledged.  When a worker crashes, hangs, or raises, the parent
kills it, respawns a fresh worker over the same shared-memory arenas,
restores the last snapshot *in place* (so shm-backed arrays keep their
aliases), re-ships the retained mail, and re-runs the exact same step
list.  Steps are pure functions of their own state plus delivered
mail, so the re-run is bit-identical to the run that failed — totals,
assignments, and delivery order match a fault-free run exactly (pinned
by ``tests/test_faults.py``).

If retries are exhausted the superstep fails *atomically*: no outbox
has been applied, the retained inboxes are pushed back into the parent
cluster's delivered map, and accounting totals are untouched.  Worker-
local state is indeterminate at that point, so the only supported
operation on the backend afterwards is :meth:`ProcessesBackend.close`.

Deterministic fault injection for tests rides the same dispatch path:
a :class:`~repro.cluster.backends.faults.FaultPlan` is consumed
parent-side (fire-once) and shipped with the step message, so an
injected kill/hang/raise exercises exactly the recovery machinery a
real fault would.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback

from repro.cluster.backends.base import (ExecutionBackend, StepResult,
                                         WorkerStepError, apply_outbox)
from repro.cluster.backends.shm import ShmArena, graph_from_views, \
    graph_to_arrays
from repro.cluster.runtime import SimulatedCluster
from repro.observability.metrics import get_registry

__all__ = ["ProcessesBackend", "WorkerProgram"]

#: how long close() waits for the goodbye handshake before escalating
_CLOSE_TIMEOUT = 10.0
#: how long a respawned worker gets to rebuild and re-attach
_READY_TIMEOUT = 120.0


def _mp_context():
    """Prefer fork (fast, inherits the parent image); fall back to spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class WorkerProgram:
    """Picklable recipe for building one worker's share of the cluster.

    Subclasses implement :meth:`build`, constructing the process
    objects for the pids this worker owns from the attached
    shared-memory views.  Runs once per worker at startup (and again
    whenever the supervisor respawns a crashed worker — the rebuild is
    followed by an in-place state restore, so ``build`` must be safe
    to re-run against live arenas); everything it needs must either be
    picklable constructor state or live in an arena.
    """

    def build(self, owned_pids, views: dict) -> dict:
        """Return ``{pid: Process}`` for ``owned_pids``.

        ``views`` maps arena name -> attached :class:`ShmArena`.
        """
        raise NotImplementedError

    def build_plane(self, procs: dict):
        """Optional fused dispatch plane over this worker's processes.

        Called once after :meth:`build`.  Return ``None`` (the
        default) for per-process dispatch; return an object with
        ``methods`` / ``run(method, pids)`` (e.g.
        :class:`~repro.core.fused.FusedDnePlane`) to let the worker
        fuse a superstep whose steps all name a supported method.
        """
        return None


def _fused_items_method(plane, items):
    """The single plane method one worker's items fuse to, or ``None``.

    Mirrors ``ExecutionBackend._fusable_method`` for the worker-side
    item tuples ``(idx, pid, method, args)``.
    """
    if plane is None:
        return None
    methods = {m for _, _, m, _ in items if m is not None}
    if len(methods) != 1:
        return None
    method = next(iter(methods))
    if method not in plane.methods:
        return None
    if any(args for _, _, m, args in items if m is not None):
        return None
    return method


def _run_items(procs, plane, items, gather):
    """Run one worker's superstep share; returns ``(results, failure)``.

    Short-circuited items (``method is None``) cost nothing but still
    gather.  When every live item names the same plane-supported
    method, one fused plane call replaces the per-item loop, with
    every live pid's outbox armed so each process's emissions land in
    its own replay slot.
    """
    fused = _fused_items_method(plane, items)
    if fused is not None:
        run_pids = [pid for _, pid, m, _ in items if m is not None]
        outboxes: dict = {}
        for pid in run_pids:
            outbox: list = []
            procs[pid]._outbox = outbox
            outboxes[pid] = outbox
        t0 = time.perf_counter()
        try:
            values = plane.run(fused, run_pids)
        except Exception:  # noqa: BLE001 - shipped to parent
            return [], (run_pids[0], traceback.format_exc())
        finally:
            for pid in run_pids:
                procs[pid]._outbox = None
        seconds = time.perf_counter() - t0
        results = []
        for idx, pid, method, args in items:
            proc = procs[pid]
            gathered = {a: getattr(proc, a) for a in gather}
            if method is None:
                results.append((idx, pid, None, 0.0, [], gathered))
            else:
                results.append((idx, pid, values.get(pid), seconds,
                                outboxes[pid], gathered))
        return results, None
    results = []
    for idx, pid, method, args in items:
        proc = procs[pid]
        if method is None:
            results.append((idx, pid, None, 0.0, [],
                            {a: getattr(proc, a) for a in gather}))
            continue
        outbox: list = []
        proc._outbox = outbox
        t0 = time.perf_counter()
        try:
            value = getattr(proc, method)(*args)
        except Exception:  # noqa: BLE001 - shipped to parent
            return results, (pid, traceback.format_exc())
        finally:
            proc._outbox = None
        seconds = time.perf_counter() - t0
        gathered = {a: getattr(proc, a) for a in gather}
        results.append((idx, pid, value, seconds, outbox, gathered))
    return results, None


def _snapshot_worker(procs, wcluster, plane):
    """Everything the parent needs to rebuild this worker elsewhere.

    ``(per-pid state blobs, undrained worker mailbox entries,
    fused-plane transients)`` — exactly the state a respawned worker
    restores before re-running a failed superstep.
    """
    states = {pid: proc.checkpoint_state() for pid, proc in procs.items()}
    mail = [(key, list(msgs))
            for key, msgs in wcluster._delivered.items() if msgs]
    plane_state = None
    if plane is not None and hasattr(plane, "checkpoint_state"):
        plane_state = plane.checkpoint_state()
    return (states, mail, plane_state)


def _restore_worker(procs, wcluster, plane, snapshot) -> None:
    """Inverse of :func:`_snapshot_worker`, writing arrays in place."""
    states, mail, plane_state = snapshot
    for pid, state in states.items():
        procs[pid].restore_state(state)
    wcluster._delivered.clear()
    for key, msgs in mail:
        wcluster._delivered[key].extend(msgs)
    if plane is not None and plane_state is not None:
        plane.restore_state(plane_state)


def _inject_fault(fault, items, owned_pids, conn):
    """Act on an injected fault directive; ``True`` = skip this step.

    ``kill`` dies without a reply (the parent sees a dead pipe, same
    as a segfault); ``hang`` and ``delay`` sleep — a hang long enough
    to trip ``step_timeout`` is indistinguishable from a livelocked
    worker, a short delay just reorders wall-clock without touching
    results; ``raise`` reports a step error without running anything.
    """
    kind, arg = fault
    if kind == "kill":
        os._exit(23)
    if kind in ("hang", "delay"):
        time.sleep(arg)
        return False
    if kind == "raise":
        pid = items[0][1] if items else owned_pids[0]
        conn.send(("step_error", pid, f"injected fault: {arg}"))
        return True
    raise ValueError(f"unknown fault kind {kind!r}")  # pragma: no cover


def _worker_main(conn, program: WorkerProgram, owned_pids,
                 arena_specs: dict, supervise: bool) -> None:
    views = {name: ShmArena.attach(spec)
             for name, spec in arena_specs.items()}
    try:
        procs = program.build(owned_pids, views)
        plane = program.build_plane(procs)
        # Initial resident reports (made in constructors, before any
        # cluster attach) travel to the parent accountant with the
        # ready handshake.
        pending = {pid: dict(proc._pending_resident)
                   for pid, proc in procs.items()}
        # Worker-local cluster: mailboxes only.  All accounting flows
        # through outboxes; steps never send eagerly here because the
        # outbox is always armed while they run.
        wcluster = SimulatedCluster()
        for pid in owned_pids:
            wcluster.add_process(procs[pid])
        # Under supervision the ready handshake carries a baseline
        # snapshot so even a superstep-1 failure has a restore point.
        conn.send(("ready", pending,
                   _snapshot_worker(procs, wcluster, plane)
                   if supervise else None))
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "step":
                _, items, inbox, gather, fault, snap = msg
                if fault is not None and _inject_fault(
                        fault, items, owned_pids, conn):
                    continue
                for key, delivered in inbox:
                    wcluster._delivered[key].extend(delivered)
                results, failure = _run_items(procs, plane, items, gather)
                if failure is not None:
                    conn.send(("step_error", failure[0], failure[1]))
                else:
                    conn.send(("step_ok", results,
                               _snapshot_worker(procs, wcluster, plane)
                               if snap else None))
            elif kind == "gather":
                _, requests = msg
                conn.send(("ok", {
                    pid: {a: getattr(procs[pid], a) for a in attrs}
                    for pid, attrs in requests}))
            elif kind == "call":
                _, requests = msg
                try:
                    conn.send(("ok", {pid: getattr(procs[pid], method)()
                                      for pid, method in requests}))
                except Exception:  # noqa: BLE001 - shipped to parent
                    conn.send(("call_error", traceback.format_exc()))
            elif kind == "apply":
                _, requests = msg
                try:
                    conn.send(("ok", {
                        pid: getattr(procs[pid], method)(*args)
                        for pid, method, args in requests}))
                except Exception:  # noqa: BLE001 - shipped to parent
                    conn.send(("call_error", traceback.format_exc()))
            elif kind == "snapshot":
                conn.send(("ok", _snapshot_worker(procs, wcluster, plane)))
            elif kind == "restore":
                _restore_worker(procs, wcluster, plane, msg[1])
                conn.send(("ok", None))
            elif kind == "close":
                conn.send(("ok", None))
                return
    finally:
        for view in views.values():
            view.close()
        conn.close()


def _graph_task_worker(conn, fn, arena_spec, args, fault) -> None:
    arena = ShmArena.attach(arena_spec)
    try:
        if fault is not None:
            kind, arg = fault
            if kind == "kill":
                os._exit(23)
            elif kind in ("hang", "delay"):
                time.sleep(arg)
            elif kind == "raise":
                conn.send(("error", f"injected fault: {arg}"))
                return
        graph = graph_from_views(arena)
        try:
            conn.send(("ok", fn(graph, *args)))
        except Exception:  # noqa: BLE001 - shipped to parent
            conn.send(("error", traceback.format_exc()))
    finally:
        arena.close()
        conn.close()


class ProcessesBackend(ExecutionBackend):
    """Superstep scheduler over persistent, supervised worker processes.

    ``step_timeout`` (seconds) bounds every worker reply; ``None``
    waits forever (the pre-supervision behaviour).  ``max_retries``
    enables respawn-and-retry recovery: a failed worker is rebuilt
    from its last snapshot up to ``max_retries`` times per request
    before the failure becomes terminal.  ``fault_plan`` is a
    :class:`~repro.cluster.backends.faults.FaultPlan` for
    deterministic fault injection in tests.
    """

    name = "processes"

    def __init__(self, workers: int = 4, step_timeout: float | None = None,
                 max_retries: int = 0, fault_plan=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if step_timeout is not None and step_timeout <= 0:
            raise ValueError("step_timeout must be positive or None")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.workers = workers
        self.step_timeout = step_timeout
        self.max_retries = max_retries
        self.fault_plan = fault_plan
        self._ctx = _mp_context()
        self._procs_mp: list = []
        self._conns: list = []
        self._arenas: dict = {}
        self._worker_of: dict = {}
        self._started = False
        self._superstep = 0
        self._snapshots: list = []
        #: workers respawned after a crash/hang/raise (observability)
        self.respawns = 0

    # ------------------------------------------------------------------
    def start(self, cluster, program: WorkerProgram, pid_to_worker: dict,
              arenas: dict) -> None:
        """Spawn workers and build their process shares.

        ``pid_to_worker`` maps every cluster pid to a worker index in
        ``[0, workers)``; ``arenas`` maps name -> parent-created
        :class:`ShmArena` (ownership passes to the backend: closed and
        unlinked at :meth:`close`).
        """
        self.cluster = cluster
        self.steps_executed = 0
        self.steps_skipped = 0
        self._superstep = 0
        self.respawns = 0
        self._arenas = dict(arenas)
        self._program = program
        nworkers = self.workers
        self._worker_of = {pid: w % nworkers
                           for pid, w in pid_to_worker.items()}
        owned = [[] for _ in range(nworkers)]
        for pid, w in self._worker_of.items():
            owned[w].append(pid)
        self._owned = owned
        self._specs = {name: arena.spec()
                       for name, arena in self._arenas.items()}
        self._snapshots = [None] * nworkers
        supervise = self.max_retries > 0
        for w in range(nworkers):
            proc, conn = self._spawn_worker(w, supervise)
            self._procs_mp.append(proc)
            self._conns.append(conn)
        self._started = True
        # Ready handshake: forward constructor-time resident reports to
        # the parent accountant (per-pid, so application order across
        # pids cannot change any per-process peak).
        for w in range(nworkers):
            reply = self._recv(w)
            for pid, resident in reply[1].items():
                stats = cluster.stats.stats_for(pid)
                for name, nbytes in resident.items():
                    stats.set_resident(name, nbytes)
            self._snapshots[w] = reply[2]

    def _spawn_worker(self, w: int, supervise: bool):
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._program, self._owned[w], self._specs,
                  supervise),
            daemon=True, name=f"repro-backend-{w}")
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _send_to(self, w: int, msg) -> None:
        # A worker killed between supersteps (OOM, segfault) surfaces
        # on the *send* side as a broken pipe; wrap it the same way as
        # the recv side so the error contract (WorkerStepError naming
        # the worker, never an anonymous pipe traceback) holds.
        try:
            self._conns[w].send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerStepError(
                f"worker-{w}", f"worker process died: {exc!r}") from exc

    def _recv(self, w: int, timeout: float | None = None):
        conn = self._conns[w]
        if timeout is not None and not conn.poll(timeout):
            get_registry().counter_inc("repro_worker_timeouts_total")
            raise WorkerStepError(
                f"worker-{w}", f"step timed out after {timeout:g}s")
        try:
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerStepError(
                f"worker-{w}", f"worker process died: {exc!r}") from exc
        return reply

    # ------------------------------------------------------------------
    def _kill_worker(self, w: int) -> None:
        """Force worker ``w`` down: terminate, escalate to SIGKILL."""
        proc = self._procs_mp[w]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)
        if proc.is_alive():  # pragma: no cover - SIGTERM ignored
            proc.kill()
            proc.join(timeout=5)
        try:
            self._conns[w].close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _respawn(self, w: int) -> None:
        """Replace a failed worker and restore its last snapshot.

        The replacement rebuilds from the WorkerProgram over the same
        arenas (which may reset shm-backed arrays to constructor-time
        values), then the snapshot restore rewrites every process's
        mutable state *in place* — safe because the parent is
        sequential across supersteps, so no sibling reads shared state
        while this worker is mid-restore.
        """
        snapshot = self._snapshots[w]
        assert snapshot is not None, "respawn without a snapshot"
        self._kill_worker(w)
        proc, conn = self._spawn_worker(w, supervise=True)
        self._procs_mp[w] = proc
        self._conns[w] = conn
        # Fresh ready handshake: the rebuilt constructors re-report
        # residents and a new baseline snapshot; both are discarded —
        # the accountant already holds the run's totals and the real
        # restore point is the retained snapshot.
        self._recv(w, timeout=_READY_TIMEOUT)
        self._send_to(w, ("restore", snapshot))
        reply = self._recv(w, timeout=_READY_TIMEOUT)
        if reply[0] != "ok":  # pragma: no cover - restore never raises
            raise WorkerStepError(f"worker-{w}",
                                  f"restore failed: {reply!r}")
        self.respawns += 1
        get_registry().counter_inc("repro_worker_respawns_total")

    # ------------------------------------------------------------------
    def _execute_superstep(self, steps, gather=()) -> dict:
        assert self._started, "backend not started"
        self._count_steps(steps)
        self._superstep += 1
        supervise = self.max_retries > 0
        nworkers = len(self._conns)
        per_worker = [[] for _ in range(nworkers)]
        for idx, (pid, method, args) in enumerate(steps):
            per_worker[self._worker_of[pid]].append((idx, pid, method, args))
        # Ship every owned pid's freshly-delivered mail along with the
        # step list (exactly the payload buffers the last barrier
        # priced).  The parent *retains* each worker's inbox until the
        # step is acknowledged: a retried step gets the identical mail
        # re-shipped, and a terminal failure pushes it back into the
        # cluster so the delivered map is well-defined afterwards.
        inboxes = [[] for _ in range(nworkers)]
        delivered = self.cluster._delivered
        for key in list(delivered.keys()):
            w = self._worker_of.get(key[0])
            if w is not None:
                inboxes[w].append((key, delivered.pop(key)))
        gather = tuple(gather)
        plan = self.fault_plan
        failures: dict = {}
        for w in range(nworkers):
            fault = plan.take(w, self._superstep) if plan is not None else None
            try:
                self._send_to(w, ("step", per_worker[w], inboxes[w], gather,
                                  fault, supervise))
            except WorkerStepError as exc:
                failures[w] = exc
        # Collect ALL replies before any recovery: siblings must not be
        # left with queued replies while one worker is being respawned.
        replies: dict = {}
        for w in range(nworkers):
            if w in failures:
                continue
            try:
                reply = self._recv(w, timeout=self.step_timeout)
            except WorkerStepError as exc:
                failures[w] = exc
                continue
            if reply[0] == "step_error":
                failures[w] = WorkerStepError(reply[1], reply[2])
            else:
                replies[w] = reply
        for w in sorted(failures):
            error = failures.pop(w)
            for _ in range(self.max_retries):
                get_registry().counter_inc("repro_worker_retries_total")
                try:
                    self._respawn(w)
                    self._send_to(w, ("step", per_worker[w], inboxes[w],
                                      gather, None, True))
                    reply = self._recv(w, timeout=self.step_timeout)
                except WorkerStepError as exc:
                    error = exc
                    continue
                if reply[0] == "step_error":
                    error = WorkerStepError(reply[1], reply[2])
                    continue
                replies[w] = reply
                error = None
                break
            if error is not None:
                # Terminal failure: the superstep fails atomically.  No
                # outbox has been applied (accounting totals untouched)
                # and every retained inbox returns to the delivered map.
                # Worker-local state is indeterminate — only close() is
                # supported on this backend afterwards.
                for inbox in inboxes:
                    for key, payload in inbox:
                        delivered[key].extend(payload)
                raise error
        results = []
        for w, reply in replies.items():
            results.extend(reply[1])
            if supervise and reply[2] is not None:
                self._snapshots[w] = reply[2]
        # Merge outboxes in global step-list order: the exact call
        # sequence the simulated scheduler would have made.
        results.sort(key=lambda item: item[0])
        out = {}
        for _, pid, value, seconds, outbox, gathered in results:
            apply_outbox(self.cluster, pid, outbox)
            out[pid] = StepResult(value, seconds, gathered)
        return out

    # ------------------------------------------------------------------
    def _exchange(self, w: int, msg):
        """One request/reply with a worker, with supervised recovery.

        Used by the read-only out-of-phase paths (gather / call /
        apply): a crashed or hung worker is respawned from its last
        snapshot and the request re-sent.  These requests don't mutate
        step state, so the retry is trivially equivalent.
        """
        try:
            self._send_to(w, msg)
            return self._recv(w, timeout=self.step_timeout)
        except WorkerStepError:
            if self.max_retries < 1 or self._snapshots[w] is None:
                raise
            self._respawn(w)
            self._send_to(w, msg)
            return self._recv(w, timeout=self.step_timeout)

    def gather(self, pids, attrs) -> dict:
        attrs = tuple(attrs)
        nworkers = len(self._conns)
        per_worker = [[] for _ in range(nworkers)]
        for pid in pids:
            per_worker[self._worker_of[pid]].append((pid, attrs))
        out = {}
        for w in range(nworkers):
            if per_worker[w]:
                out.update(self._exchange(w, ("gather", per_worker[w]))[1])
        return out

    def call_all(self, pids, method: str) -> dict:
        nworkers = len(self._conns)
        per_worker = [[] for _ in range(nworkers)]
        for pid in pids:
            per_worker[self._worker_of[pid]].append((pid, method))
        out = {}
        for w in range(nworkers):
            if not per_worker[w]:
                continue
            reply = self._exchange(w, ("call", per_worker[w]))
            if reply[0] == "call_error":
                raise WorkerStepError(f"worker-{w}", reply[1])
            out.update(reply[1])
        return out

    def apply_all(self, method: str, pid_args: dict) -> dict:
        nworkers = len(self._conns)
        per_worker = [[] for _ in range(nworkers)]
        for pid, args in pid_args.items():
            per_worker[self._worker_of[pid]].append((pid, method, args))
        active = [w for w in range(nworkers) if per_worker[w]]
        out = {}
        for w in active:
            reply = self._exchange(w, ("apply", per_worker[w]))
            if reply[0] == "call_error":
                raise WorkerStepError(f"worker-{w}", reply[1])
            out.update(reply[1])
        # A scatter mutates worker state by definition, so any retained
        # respawn baselines are stale — refresh them (e.g. right after
        # a checkpoint resume pours restored state into the workers).
        if self.max_retries > 0:
            for w in active:
                self._snapshots[w] = self._exchange(w, ("snapshot",))[1]
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear everything down; can never wedge.

        The goodbye handshake is polled with a timeout (a hung or dead
        worker simply doesn't answer), joins are bounded, and a worker
        that survives ``terminate()`` is ``kill()``-ed.  Arenas are
        closed *and unlinked* regardless of worker health, so no
        ``/dev/shm`` segment outlives the backend — pinned by the leak
        tests in ``tests/test_faults.py``.
        """
        for conn in self._conns:
            try:
                conn.send(("close",))
                if conn.poll(_CLOSE_TIMEOUT):
                    conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._procs_mp:
            proc.join(timeout=_CLOSE_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=5)
        self._conns = []
        self._procs_mp = []
        for arena in self._arenas.values():
            arena.close()
            arena.unlink()
        self._arenas = {}
        self._snapshots = []
        self._started = False

    # ------------------------------------------------------------------
    def run_graph_task(self, fn, graph, *args):
        """One-shot offload: graph via shared memory, result via pipe.

        The task is a pure module-level function of picklable
        arguments, so under supervision a crashed/hung/raising task
        worker is simply re-run (up to ``max_retries`` extra attempts)
        — the retry is bit-identical by construction.  This is the
        recovery path SNE exercises (its bounded stream runs as one
        graph task rather than a Process/barrier ensemble).
        """
        arena = ShmArena.create(graph_to_arrays(graph))
        try:
            plan = self.fault_plan
            error = None
            for attempt in range(self.max_retries + 1):
                fault = (plan.take_task(attempt)
                         if plan is not None else None)
                try:
                    return self._run_graph_task_once(fn, arena, args, fault)
                except WorkerStepError as exc:
                    error = exc
            raise error
        finally:
            arena.close()
            arena.unlink()

    def _run_graph_task_once(self, fn, arena, args, fault):
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_graph_task_worker,
            args=(child_conn, fn, arena.spec(), args, fault),
            daemon=True, name="repro-graph-task")
        proc.start()
        child_conn.close()
        try:
            timeout = self.step_timeout
            if timeout is not None and not parent_conn.poll(timeout):
                raise WorkerStepError(
                    "graph-task", f"step timed out after {timeout:g}s")
            try:
                reply = parent_conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerStepError(
                    "graph-task", f"worker process died: {exc!r}") from exc
            if reply[0] == "error":
                raise WorkerStepError("graph-task", reply[1])
            return reply[1]
        finally:
            parent_conn.close()
            # Short grace for a clean exit, then escalate: a hung task
            # worker must not stall the parent for the close timeout.
            proc.join(timeout=1)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=5)
