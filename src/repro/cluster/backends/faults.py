"""Deterministic fault injection for the parallel execution backends.

A :class:`FaultPlan` is a reproducible chaos schedule: each entry names
a worker index, a superstep ordinal, and an action — ``kill`` the
worker process outright (``os._exit``, no cleanup, simulating an OOM
kill or segfault), ``hang`` it (stop responding for a bounded sleep so
the parent's step timeout fires), ``raise`` a step exception, or
``delay`` the step by a fixed number of seconds (jitter that must not
change any result).  The processes backend consumes the plan at
dispatch time: each event fires exactly once, on the attempt it was
armed for, so a supervised retry of the same superstep does not
re-trigger it — which is what makes chaos scenarios deterministic
enough to pin bit-identical recovery in tests and CI.

Superstep ordinals are 1-based counts of ``run_superstep`` calls on
the backend (the DNE driver issues five per iteration).  Whole-graph
offload tasks (:meth:`ExecutionBackend.run_graph_task`, the SNE path)
are a separate axis: task events are keyed by retry attempt instead of
superstep, via :meth:`FaultPlan.task_kill` and friends.

Seeded delays (:meth:`FaultPlan.seeded_delays`) draw per-(worker,
superstep) sleeps from a seeded RNG — reproducible scheduling noise
for shaking out ordering assumptions without changing any pinned
total.

Invariants pinned by ``tests/test_faults.py`` (CI ``chaos`` job) —
the contract new fault kinds or backends must keep:

* **recovery bit-identity** — any armed kill/hang/raise that the
  supervisor recovers from (respawn + retry) yields a run
  bit-identical to the fault-free run: assignments, every accounting
  total, and the superstep ledger.  This leans on step purity (a step
  reads only its own state + delivered mail) and on outboxes being
  replayed only on success;
* **fire-once determinism** — an event fires on exactly the attempt
  it was armed for; retries of the same superstep must not re-trigger
  it, or recovery tests would race themselves;
* **atomic terminal failure** — when retries are exhausted, no
  partial outbox is applied, retained inboxes return to the parent's
  delivered map, and accounting is untouched;
* **no resource leaks** — every failure path leaves ``/dev/shm``
  clean after ``close()``;
* **delay neutrality** — ``delay`` and ``seeded_delays`` events must
  be result-neutral: they reorder wall-clock, never outputs.
"""

from __future__ import annotations

import numpy as np

from repro.observability.metrics import get_registry

__all__ = ["FaultPlan", "FAULT_KINDS"]

#: actions a plan entry may carry (see the module docstring)
FAULT_KINDS = ("kill", "hang", "raise", "delay")

#: default hang length: far beyond any sane step timeout, bounded so a
#: hung worker whose parent vanished still exits on its own eventually
DEFAULT_HANG_SECONDS = 3600.0


class FaultPlan:
    """Reproducible schedule of injected worker faults.

    Builder methods return ``self`` so plans chain::

        plan = FaultPlan().kill(1, superstep=4).delay(0, 2, 0.05)

    The plan is picklable (it crosses the fork boundary inside the
    step messages only as per-event directive tuples) and single-use:
    the backend *consumes* events as it dispatches them, recording
    them in :attr:`fired`.
    """

    def __init__(self):
        #: (worker, superstep) -> (kind, arg); consumed by take()
        self._events: dict = {}
        #: attempt -> (kind, arg) for whole-graph offload tasks
        self._task_events: dict = {}
        #: events already dispatched, in dispatch order
        self.fired: list = []

    # -- building ------------------------------------------------------
    def _add(self, worker: int, superstep: int, kind: str,
             arg) -> "FaultPlan":
        key = (int(worker), int(superstep))
        if key in self._events:
            raise ValueError(f"duplicate fault for worker {worker} at "
                             f"superstep {superstep}")
        self._events[key] = (kind, arg)
        return self

    def kill(self, worker: int, superstep: int) -> "FaultPlan":
        """Hard-kill ``worker`` when it receives superstep ``superstep``."""
        return self._add(worker, superstep, "kill", None)

    def hang(self, worker: int, superstep: int,
             seconds: float = DEFAULT_HANG_SECONDS) -> "FaultPlan":
        """Make ``worker`` unresponsive for ``seconds`` at ``superstep``.

        With a parent step timeout below ``seconds`` this exercises the
        hung-worker path (timeout, terminate, respawn); above it, it
        degenerates to a delay.
        """
        return self._add(worker, superstep, "hang", float(seconds))

    def raise_error(self, worker: int, superstep: int,
                    message: str = "injected fault") -> "FaultPlan":
        """Fail the step with an injected exception (worker survives)."""
        return self._add(worker, superstep, "raise", str(message))

    def delay(self, worker: int, superstep: int,
              seconds: float) -> "FaultPlan":
        """Sleep ``seconds`` before running the step (result-neutral)."""
        return self._add(worker, superstep, "delay", float(seconds))

    def seeded_delays(self, workers: int, supersteps: int,
                      max_seconds: float, seed: int = 0) -> "FaultPlan":
        """Arm a delay for every (worker, superstep) pair, drawn from a
        seeded RNG — deterministic scheduling jitter.  Pairs that
        already carry an event keep it."""
        rng = np.random.default_rng(seed)
        for step in range(1, supersteps + 1):
            for w in range(workers):
                seconds = float(rng.uniform(0.0, max_seconds))
                if (w, step) not in self._events:
                    self._add(w, step, "delay", seconds)
        return self

    # -- graph-task axis ----------------------------------------------
    def _add_task(self, attempt: int, kind: str, arg) -> "FaultPlan":
        attempt = int(attempt)
        if attempt in self._task_events:
            raise ValueError(f"duplicate task fault for attempt {attempt}")
        self._task_events[attempt] = (kind, arg)
        return self

    def task_kill(self, attempt: int = 0) -> "FaultPlan":
        """Kill the whole-graph offload worker on retry ``attempt``."""
        return self._add_task(attempt, "kill", None)

    def task_raise(self, attempt: int = 0,
                   message: str = "injected fault") -> "FaultPlan":
        """Fail the offload task with an injected exception."""
        return self._add_task(attempt, "raise", str(message))

    def task_hang(self, attempt: int = 0,
                  seconds: float = DEFAULT_HANG_SECONDS) -> "FaultPlan":
        """Make the offload worker unresponsive on retry ``attempt``."""
        return self._add_task(attempt, "hang", float(seconds))

    # -- consumption (backend side) ------------------------------------
    def take(self, worker: int, superstep: int):
        """Pop and return the directive for ``(worker, superstep)``.

        Returns ``(kind, arg)`` or ``None``; each event fires once, so
        a supervised retry of the same superstep sees ``None``.
        """
        event = self._events.pop((worker, superstep), None)
        if event is not None:
            self.fired.append((worker, superstep) + event)
            get_registry().counter_inc("repro_faults_injected_total",
                                       kind=event[0])
        return event

    def take_task(self, attempt: int):
        """Pop and return the directive for offload-task ``attempt``."""
        event = self._task_events.pop(int(attempt), None)
        if event is not None:
            self.fired.append(("task", int(attempt)) + event)
            get_registry().counter_inc("repro_faults_injected_total",
                                       kind=event[0])
        return event

    # -- inspection ----------------------------------------------------
    def pending(self) -> list:
        """Unfired events as ``(worker, superstep, kind, arg)`` tuples
        (task events use the worker slot ``"task"`` and the attempt as
        the step), sorted — for test assertions that every armed fault
        actually fired."""
        events = [key + val for key, val in self._events.items()]
        events += [("task", att) + val
                   for att, val in self._task_events.items()]
        return sorted(events, key=repr)

    def __len__(self) -> int:
        return len(self._events) + len(self._task_events)
