"""Thread-pool execution backend.

Runs every step of a superstep concurrently on a
``ThreadPoolExecutor``.  The partitioning step functions spend their
time in batched NumPy kernels (gathers, bincounts, membership algebra)
that release the GIL, so the per-partition supersteps genuinely
overlap on multi-core hosts while all state stays in-process — no
serialization, no copies.

Determinism and accounting safety come from the outbox protocol of
:mod:`repro.cluster.backends.base`: each step runs with its process's
outbox armed, touching only its own state plus shared *read-only*
structures, and the parent thread replays the recorded
sends/reports/RPCs in step-list order after the pool drains.  The
replayed call sequence is identical to the simulated scheduler's, so
totals and delivery order are bit-identical (pinned by
``tests/test_backends.py``).

A step that raises surfaces as
:class:`~repro.cluster.backends.base.WorkerStepError` with the
partition id after the whole superstep has been awaited (no orphan
threads mid-superstep, no hang).  Threads share the parent's fate, so
the supervision knobs of the processes backend (``step_timeout`` /
``max_retries`` / fault injection) don't exist here — a wedged or
crashed thread is a wedged or crashed parent, and recovery is the
driver-level checkpoint/resume path instead.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.cluster.backends.base import (ExecutionBackend, StepResult,
                                         WorkerStepError, apply_outbox)

__all__ = ["ThreadsBackend"]


class ThreadsBackend(ExecutionBackend):
    """Superstep scheduler over a persistent thread pool."""

    name = "threads"

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None

    def attach(self, cluster, processes, plane=None) -> None:
        super().attach(cluster, processes, plane)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-backend")

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _run_one(self, pid, method: str, args, gather):
        proc = self._procs[pid]
        outbox: list = []
        proc._outbox = outbox
        t0 = time.perf_counter()
        try:
            value = getattr(proc, method)(*args)
        finally:
            proc._outbox = None
        seconds = time.perf_counter() - t0
        return value, seconds, outbox, {a: getattr(proc, a) for a in gather}

    def _execute_superstep(self, steps, gather=()) -> dict:
        assert self._pool is not None, "backend not attached"
        self._count_steps(steps)
        fused = self._fusable_method(steps)
        if fused is not None:
            return self._run_fused(fused, steps, gather)
        live = [(pid, method, args) for pid, method, args in steps
                if method is not None]
        futures = [self._pool.submit(self._run_one, pid, method, args, gather)
                   for pid, method, args in live]
        # Await everything before touching the cluster: replay must see
        # the complete superstep, and an error must not leave stragglers
        # racing the parent.
        outcomes = []
        for (pid, _, _), fut in zip(live, futures):
            try:
                outcomes.append((pid, fut.result(), None))
            except Exception as exc:  # noqa: BLE001 - repackaged with pid
                outcomes.append((pid, None, exc))
        for pid, _, exc in outcomes:
            if exc is not None:
                raise WorkerStepError(pid, repr(exc)) from exc
        out = {}
        for pid, (value, seconds, outbox, gathered), _ in outcomes:
            apply_outbox(self.cluster, pid, outbox)
            out[pid] = StepResult(value, seconds, gathered)
        for pid, method, _ in steps:
            if method is None:
                proc = self._procs[pid]
                out[pid] = StepResult(
                    None, 0.0, {a: getattr(proc, a) for a in gather})
        return out

    # ------------------------------------------------------------------
    def _fused_chunk(self, method: str, chunk):
        """Run one contiguous pid chunk of a fused superstep.

        Arms every chunk member's outbox for the duration of the plane
        call: all of a process's emissions land in its own outbox no
        matter which chunk thread made them, so replay order is
        governed purely by step-list order, as for per-process steps.
        """
        procs = [self._procs[pid] for pid in chunk]
        outboxes = {}
        for proc in procs:
            outbox: list = []
            proc._outbox = outbox
            outboxes[proc.pid] = outbox
        t0 = time.perf_counter()
        try:
            values = self._plane.run(method, chunk)
        finally:
            for proc in procs:
                proc._outbox = None
        seconds = time.perf_counter() - t0
        return values, seconds, outboxes

    def _run_fused(self, method, steps, gather) -> dict:
        """Fused superstep split into per-thread contiguous pid chunks.

        Machines are state-disjoint in the fused plane (per-machine
        row/segment views of the fused arrays), so concurrent chunk
        calls never touch the same elements; each chunk is one plane
        call, so a 256-machine phase costs ``workers`` dispatches
        instead of 256.
        """
        run_pids = [pid for pid, m, _ in steps if m is not None]
        nchunks = min(self.workers, len(run_pids))
        bounds = [len(run_pids) * i // nchunks for i in range(nchunks + 1)]
        chunks = [run_pids[bounds[i]:bounds[i + 1]] for i in range(nchunks)]
        futures = [self._pool.submit(self._fused_chunk, method, chunk)
                   for chunk in chunks]
        outcomes = []
        for chunk, fut in zip(chunks, futures):
            try:
                outcomes.append((chunk, fut.result(), None))
            except Exception as exc:  # noqa: BLE001 - repackaged with pid
                outcomes.append((chunk, None, exc))
        for chunk, _, exc in outcomes:
            if exc is not None:
                raise WorkerStepError(chunk[0], repr(exc)) from exc
        values: dict = {}
        seconds_of: dict = {}
        outbox_of: dict = {}
        for chunk, (vals, seconds, outboxes), _ in outcomes:
            values.update(vals)
            outbox_of.update(outboxes)
            for pid in chunk:
                seconds_of[pid] = seconds
        out = {}
        for pid, m, _ in steps:
            proc = self._procs[pid]
            if m is not None:
                apply_outbox(self.cluster, pid, outbox_of[pid])
            gathered = {a: getattr(proc, a) for a in gather}
            if m is None:
                out[pid] = StepResult(None, 0.0, gathered)
            else:
                out[pid] = StepResult(values.get(pid), seconds_of[pid],
                                      gathered)
        return out

    # ------------------------------------------------------------------
    def run_graph_task(self, fn, graph, *args):
        """Run the task on one pool thread (pool is created on demand
        so offload works without a cluster attach)."""
        if self._pool is None:
            with ThreadPoolExecutor(max_workers=1) as pool:
                return pool.submit(fn, graph, *args).result()
        return self._pool.submit(fn, graph, *args).result()
