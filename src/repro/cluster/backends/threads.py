"""Thread-pool execution backend.

Runs every step of a superstep concurrently on a
``ThreadPoolExecutor``.  The partitioning step functions spend their
time in batched NumPy kernels (gathers, bincounts, membership algebra)
that release the GIL, so the per-partition supersteps genuinely
overlap on multi-core hosts while all state stays in-process — no
serialization, no copies.

Determinism and accounting safety come from the outbox protocol of
:mod:`repro.cluster.backends.base`: each step runs with its process's
outbox armed, touching only its own state plus shared *read-only*
structures, and the parent thread replays the recorded
sends/reports/RPCs in step-list order after the pool drains.  The
replayed call sequence is identical to the simulated scheduler's, so
totals and delivery order are bit-identical (pinned by
``tests/test_backends.py``).

A step that raises surfaces as
:class:`~repro.cluster.backends.base.WorkerStepError` with the
partition id after the whole superstep has been awaited (no orphan
threads mid-superstep, no hang).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.cluster.backends.base import (ExecutionBackend, StepResult,
                                         WorkerStepError, apply_outbox)

__all__ = ["ThreadsBackend"]


class ThreadsBackend(ExecutionBackend):
    """Superstep scheduler over a persistent thread pool."""

    name = "threads"

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None

    def attach(self, cluster, processes) -> None:
        super().attach(cluster, processes)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-backend")

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _run_one(self, pid, method: str, args, gather):
        proc = self._procs[pid]
        outbox: list = []
        proc._outbox = outbox
        t0 = time.perf_counter()
        try:
            value = getattr(proc, method)(*args)
        finally:
            proc._outbox = None
        seconds = time.perf_counter() - t0
        return value, seconds, outbox, {a: getattr(proc, a) for a in gather}

    def run_superstep(self, steps, gather=()) -> dict:
        assert self._pool is not None, "backend not attached"
        futures = [self._pool.submit(self._run_one, pid, method, args, gather)
                   for pid, method, args in steps]
        # Await everything before touching the cluster: replay must see
        # the complete superstep, and an error must not leave stragglers
        # racing the parent.
        outcomes = []
        for (pid, _, _), fut in zip(steps, futures):
            try:
                outcomes.append((pid, fut.result(), None))
            except Exception as exc:  # noqa: BLE001 - repackaged with pid
                outcomes.append((pid, None, exc))
        for pid, _, exc in outcomes:
            if exc is not None:
                raise WorkerStepError(pid, repr(exc)) from exc
        out = {}
        for pid, (value, seconds, outbox, gathered), _ in outcomes:
            apply_outbox(self.cluster, pid, outbox)
            out[pid] = StepResult(value, seconds, gathered)
        return out

    # ------------------------------------------------------------------
    def run_graph_task(self, fn, graph, *args):
        """Run the task on one pool thread (pool is created on demand
        so offload works without a cluster attach)."""
        if self._pool is None:
            with ThreadPoolExecutor(max_workers=1) as pool:
                return pool.submit(fn, graph, *args).result()
        return self._pool.submit(fn, graph, *args).result()
