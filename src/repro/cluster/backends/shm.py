"""Shared-memory arenas for the processes backend.

One :class:`ShmArena` packs a set of named NumPy arrays into a single
``multiprocessing.shared_memory`` segment with an 8-byte-aligned
offset table.  The parent creates the arena (copying the arrays in
once); workers attach by spec and get zero-copy views — the mechanism
that maps the CSR graph arrays (indptr / neighbours / edge ids /
canonical edges) and the flat per-partition state (remaining-degree
and local-vertex arrays) into every worker without per-worker copies
or pickling.

Ownership rules: the parent calls :meth:`ShmArena.unlink` exactly once
after the run (destroying the segment); every attachment — parent and
workers — calls :meth:`ShmArena.close` when done with its views.
Views keep the mapping alive via a reference to the segment, so arrays
handed out by :meth:`array` are safe for the arena's lifetime.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["ShmArena", "graph_to_arrays", "graph_from_views"]


def _aligned(nbytes: int) -> int:
    return (nbytes + 7) & ~7


class ShmArena:
    """Named NumPy arrays in one shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory, entries: dict,
                 owner: bool):
        self._shm = shm
        #: name -> (dtype str, shape tuple, offset)
        self._entries = entries
        self._owner = owner
        self._closed = False

    # -- parent side ---------------------------------------------------
    @classmethod
    def create(cls, arrays: dict) -> "ShmArena":
        """Allocate a segment sized for ``arrays`` and copy them in."""
        contiguous = {name: np.ascontiguousarray(arr)
                      for name, arr in arrays.items()}
        entries = {}
        total = 0
        for name, arr in contiguous.items():
            entries[name] = (arr.dtype.str, arr.shape, total)
            total += _aligned(arr.nbytes)
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        arena = cls(shm, entries, owner=True)
        for name, arr in contiguous.items():
            arena.array(name)[...] = arr
        return arena

    def spec(self) -> dict:
        """Picklable attachment recipe for workers."""
        return {"shm_name": self._shm.name, "entries": self._entries}

    # -- worker side ---------------------------------------------------
    @classmethod
    def attach(cls, spec: dict) -> "ShmArena":
        shm = shared_memory.SharedMemory(name=spec["shm_name"])
        return cls(shm, spec["entries"], owner=False)

    # -- views ---------------------------------------------------------
    def array(self, name: str) -> np.ndarray:
        """Zero-copy view of a named array."""
        dtype, shape, offset = self._entries[name]
        arr = np.ndarray(shape, dtype=np.dtype(dtype),
                         buffer=self._shm.buf, offset=offset)
        return arr

    def keys(self):
        return self._entries.keys()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (parent-side, after all workers closed)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# ----------------------------------------------------------------------
# Graph packing: the read-only CSR arrays every worker maps.
# ----------------------------------------------------------------------
def graph_to_arrays(graph: CSRGraph) -> dict:
    """The four CSR arrays that define a graph, keyed for an arena."""
    return {
        "graph_edges": graph.edges,
        "graph_indptr": graph.indptr,
        "graph_indices": graph.indices,
        "graph_edge_ids": graph.edge_ids,
    }


def graph_from_views(arena: ShmArena) -> CSRGraph:
    """Reconstruct the graph as zero-copy views over a shared arena."""
    return CSRGraph.from_csr_arrays(
        arena.array("graph_edges"), arena.array("graph_indptr"),
        arena.array("graph_indices"), arena.array("graph_edge_ids"))
