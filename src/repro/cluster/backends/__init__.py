"""Pluggable execution backends for the simulated cluster.

``backend="simulated" | "threads" | "processes"`` selects who executes
the per-partition steps between barriers — the deterministic inline
reference scheduler, a thread pool over the GIL-releasing NumPy
kernels, or worker processes with the big arrays mapped through
``multiprocessing.shared_memory``.  All three produce bit-identical
assignments and accounting totals (see
:mod:`repro.cluster.backends.base` for the contract and
``tests/test_backends.py`` for the pins).
"""

from __future__ import annotations

from repro.cluster.backends.base import (BACKENDS, ExecutionBackend,
                                         SimulatedBackend, StepResult,
                                         WorkerStepError, apply_outbox,
                                         validate_backend)
from repro.cluster.backends.faults import FaultPlan
from repro.cluster.backends.processes import ProcessesBackend, WorkerProgram
from repro.cluster.backends.shm import ShmArena, graph_from_views, \
    graph_to_arrays
from repro.cluster.backends.threads import ThreadsBackend

__all__ = ["BACKENDS", "validate_backend", "create_backend",
           "ExecutionBackend", "SimulatedBackend", "ThreadsBackend",
           "ProcessesBackend", "WorkerProgram", "FaultPlan", "StepResult",
           "WorkerStepError", "apply_outbox", "ShmArena",
           "graph_to_arrays", "graph_from_views"]

#: default worker count for the parallel backends when none is given
DEFAULT_WORKERS = 4


def create_backend(backend: str, workers: int | None = None, *,
                   step_timeout: float | None = None,
                   max_retries: int | None = None,
                   fault_plan: FaultPlan | None = None) -> ExecutionBackend:
    """Instantiate a backend by name.

    ``workers`` is ignored by ``simulated``; the parallel backends
    default to :data:`DEFAULT_WORKERS`.  The supervision knobs —
    ``step_timeout`` (bound every worker reply), ``max_retries``
    (respawn-and-retry recovery), ``fault_plan`` (deterministic fault
    injection) — exist only on the ``processes`` backend; passing them
    for any other backend raises ``ValueError`` rather than silently
    running unsupervised.
    """
    validate_backend(backend)
    if workers is None:
        workers = DEFAULT_WORKERS
    supervised = (step_timeout is not None or max_retries is not None
                  or fault_plan is not None)
    if backend != "processes" and supervised:
        raise ValueError(
            "step_timeout/max_retries/fault_plan require backend='processes'")
    if backend == "simulated":
        return SimulatedBackend()
    if backend == "threads":
        return ThreadsBackend(workers)
    return ProcessesBackend(workers, step_timeout=step_timeout,
                            max_retries=max_retries or 0,
                            fault_plan=fault_plan)
