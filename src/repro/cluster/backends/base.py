"""Execution-backend contract: who runs the steps between barriers.

The simulated cluster (:mod:`repro.cluster.runtime`) models a
bulk-synchronous program: per superstep, every process runs one step
method (compute + sends), then a barrier delivers and prices the
traffic.  This module carves that *superstep contract* out of the
driver loops so the same Process/barrier programs run unchanged on
three schedulers:

* ``simulated`` — :class:`SimulatedBackend`, the in-process reference:
  steps run sequentially in list order with immediate effect on the
  cluster, exactly the pre-backend behaviour.
* ``threads`` — :mod:`repro.cluster.backends.threads`: steps run on a
  thread pool.  The NumPy kernels release the GIL, so batched
  gathers/scatters genuinely overlap.
* ``processes`` — :mod:`repro.cluster.backends.processes`: steps run in
  worker processes holding the big arrays as zero-copy
  ``multiprocessing.shared_memory`` views; only the barrier-batched
  ``(src, dst, tag)`` payload buffers cross the parent boundary.

The deterministic-equivalence rule every parallel backend must obey:
a step executes with its outbox armed (``Process._outbox``), so its
sends / resident reports / RPC accounting are *recorded*, and the
parent replays all outboxes via :func:`apply_outbox` in the order the
steps were listed.  Replay performs the identical call sequence the
simulated scheduler would have made, so message/byte/memory totals and
mailbox delivery order are bit-identical across backends (pinned by
``tests/test_backends.py``).

Contract summary
----------------
``run_superstep(steps, gather=())`` takes ``steps`` as a list of
``(pid, method_name, args)`` triples; every named method must be a
step function: it may read shared *read-only* structures (graph CSR,
placement), mutate only its own process state, and emit effects only
through the outbox-capable :class:`~repro.cluster.runtime.Process`
helpers.  The return maps ``pid -> StepResult(value, seconds,
gathered)`` where ``gathered`` holds the requested post-step attribute
values (the per-barrier merge of worker-local counters).  A step that
raises surfaces as :class:`WorkerStepError` carrying the pid — no
hang, no silent loss.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.accounting import record_rpc_pair

__all__ = ["BACKENDS", "validate_backend", "StepResult", "WorkerStepError",
           "ExecutionBackend", "SimulatedBackend", "apply_outbox"]

#: valid values for every ``backend=`` argument
BACKENDS = ("simulated", "threads", "processes")


def validate_backend(backend: str) -> str:
    """Return ``backend`` unchanged, or raise ``ValueError``."""
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}")
    return backend


class WorkerStepError(RuntimeError):
    """A step function raised (or its worker died) on a parallel backend.

    ``pid`` identifies the failing process, so a crash inside worker 3
    of 64 surfaces as "step failed in process ('alloc', 3)" instead of
    a bare traceback from an anonymous pool thread.
    """

    def __init__(self, pid, detail: str):
        super().__init__(f"step failed in process {pid!r}: {detail}")
        self.pid = pid
        self.detail = detail


@dataclass
class StepResult:
    """Outcome of one step: return value, compute seconds, gathered attrs."""

    value: object
    seconds: float
    gathered: dict = field(default_factory=dict)


def apply_outbox(cluster, src_pid, outbox: list) -> None:
    """Replay one step's recorded effects against the parent cluster.

    Entries are the exact calls the step would have made inline
    (``send`` -> per-message accounting + in-flight queue, ``batched``
    -> per-(src, dst, tag) buffer append, ``resident`` -> memory
    report, ``rpc`` -> the seed-scan request/response counter pattern),
    so replaying every step's outbox in step-list order reproduces the
    simulated scheduler's cluster state bit-for-bit.
    """
    stats = cluster.stats
    for entry in outbox:
        kind = entry[0]
        if kind == "batched":
            cluster._send_batched(src_pid, entry[1], entry[2], entry[3])
        elif kind == "send":
            cluster._send(src_pid, entry[1], entry[2], entry[3])
        elif kind == "resident":
            stats.stats_for(src_pid).set_resident(entry[1], entry[2])
        elif kind == "rpc":
            record_rpc_pair(stats, src_pid, entry[1], entry[2])
        else:  # pragma: no cover - corrupted outbox entry
            raise ValueError(f"unknown outbox entry kind {kind!r}")


class ExecutionBackend:
    """Base class; see the module docstring for the contract."""

    name: str = "?"

    # -- lifecycle -----------------------------------------------------
    def attach(self, cluster, processes) -> None:
        """Bind the backend to a cluster and its (local) processes.

        Parallel in-process backends index ``processes`` by pid;
        the processes backend overrides the whole lifecycle (its
        process objects live in the workers).
        """
        self.cluster = cluster
        self._procs = {proc.pid: proc for proc in processes}

    def close(self) -> None:
        """Release workers/pools/shared segments.  Idempotent."""

    # -- superstep execution -------------------------------------------
    def run_superstep(self, steps, gather=()) -> dict:
        raise NotImplementedError

    # -- out-of-phase access -------------------------------------------
    def gather(self, pids, attrs) -> dict:
        """Read cheap per-process counters: ``{pid: {attr: value}}``."""
        return {pid: {a: getattr(self._procs[pid], a) for a in attrs}
                for pid in pids}

    def call_all(self, pids, method: str) -> dict:
        """Invoke a no-argument method on each pid (collect phase)."""
        return {pid: getattr(self._procs[pid], method)() for pid in pids}

    # -- whole-graph offload -------------------------------------------
    def run_graph_task(self, fn, graph, *args):
        """Run ``fn(graph, *args)`` on this backend's compute resource.

        The escape hatch for partitioners that are one sequential
        program rather than a Process/barrier ensemble (SNE's bounded
        stream): ``simulated`` runs inline, ``threads`` on a worker
        thread, ``processes`` in a worker process with the graph mapped
        through shared memory.  ``fn`` must be a module-level function
        of picklable arguments returning picklable results.
        """
        return fn(graph, *args)


class SimulatedBackend(ExecutionBackend):
    """The reference scheduler: sequential, immediate-effect steps.

    Unchanged semantics from the pre-backend driver loops — steps run
    inline in list order with ``Process._outbox`` left unarmed, so
    every send/report hits the cluster at call time.  This is the
    backend every parallel one is pinned against.
    """

    name = "simulated"

    def run_superstep(self, steps, gather=()) -> dict:
        out = {}
        for pid, method, args in steps:
            proc = self._procs[pid]
            t0 = time.perf_counter()
            value = getattr(proc, method)(*args)
            seconds = time.perf_counter() - t0
            out[pid] = StepResult(value, seconds,
                                  {a: getattr(proc, a) for a in gather})
        return out
