"""Execution-backend contract: who runs the steps between barriers.

The simulated cluster (:mod:`repro.cluster.runtime`) models a
bulk-synchronous program: per superstep, every process runs one step
method (compute + sends), then a barrier delivers and prices the
traffic.  This module carves that *superstep contract* out of the
driver loops so the same Process/barrier programs run unchanged on
three schedulers:

* ``simulated`` — :class:`SimulatedBackend`, the in-process reference:
  steps run sequentially in list order with immediate effect on the
  cluster, exactly the pre-backend behaviour.
* ``threads`` — :mod:`repro.cluster.backends.threads`: steps run on a
  thread pool.  The NumPy kernels release the GIL, so batched
  gathers/scatters genuinely overlap.
* ``processes`` — :mod:`repro.cluster.backends.processes`: steps run in
  worker processes holding the big arrays as zero-copy
  ``multiprocessing.shared_memory`` views; only the barrier-batched
  ``(src, dst, tag)`` payload buffers cross the parent boundary.

The deterministic-equivalence rule every parallel backend must obey:
a step executes with its outbox armed (``Process._outbox``), so its
sends / resident reports / RPC accounting are *recorded*, and the
parent replays all outboxes via :func:`apply_outbox` in the order the
steps were listed.  Replay performs the identical call sequence the
simulated scheduler would have made, so message/byte/memory totals and
mailbox delivery order are bit-identical across backends (pinned by
``tests/test_backends.py``).

Contract summary
----------------
``run_superstep(steps, gather=())`` takes ``steps`` as a list of
``(pid, method_name, args)`` triples.  ``method_name`` may be ``None``
for a short-circuited step (the driver proved its mailbox payload is
empty): the step is not invoked — it costs nothing on any backend —
but its ``gathered`` attributes are still read, and backends count
executed vs skipped steps in ``steps_executed`` / ``steps_skipped``.
Every named method must be a step function: it may read shared *read-only* structures (graph CSR,
placement), mutate only its own process state, and emit effects only
through the outbox-capable :class:`~repro.cluster.runtime.Process`
helpers.  The return maps ``pid -> StepResult(value, seconds,
gathered)`` where ``gathered`` holds the requested post-step attribute
values (the per-barrier merge of worker-local counters).  A step that
raises surfaces as :class:`WorkerStepError` carrying the pid — no
hang, no silent loss.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.accounting import record_rpc_pair
from repro.observability.trace import NULL_TRACER

__all__ = ["BACKENDS", "validate_backend", "StepResult", "WorkerStepError",
           "ExecutionBackend", "SimulatedBackend", "apply_outbox"]

#: valid values for every ``backend=`` argument
BACKENDS = ("simulated", "threads", "processes")


def validate_backend(backend: str) -> str:
    """Return ``backend`` unchanged, or raise ``ValueError``."""
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}")
    return backend


class WorkerStepError(RuntimeError):
    """A step function raised (or its worker died) on a parallel backend.

    ``pid`` identifies the failing process, so a crash inside worker 3
    of 64 surfaces as "step failed in process ('alloc', 3)" instead of
    a bare traceback from an anonymous pool thread.
    """

    def __init__(self, pid, detail: str):
        super().__init__(f"step failed in process {pid!r}: {detail}")
        self.pid = pid
        self.detail = detail


@dataclass
class StepResult:
    """Outcome of one step: return value, compute seconds, gathered attrs."""

    value: object
    seconds: float
    gathered: dict = field(default_factory=dict)


def apply_outbox(cluster, src_pid, outbox: list) -> None:
    """Replay one step's recorded effects against the parent cluster.

    Entries are the exact calls the step would have made inline
    (``send`` -> per-message accounting + in-flight queue, ``batched``
    -> per-(src, dst, tag) buffer append, ``resident`` -> memory
    report, ``rpc`` -> the seed-scan request/response counter pattern),
    so replaying every step's outbox in step-list order reproduces the
    simulated scheduler's cluster state bit-for-bit.
    """
    stats = cluster.stats
    for entry in outbox:
        kind = entry[0]
        if kind == "batched":
            cluster._send_batched(src_pid, entry[1], entry[2], entry[3])
        elif kind == "send":
            cluster._send(src_pid, entry[1], entry[2], entry[3])
        elif kind == "resident":
            stats.stats_for(src_pid).set_resident(entry[1], entry[2])
        elif kind == "rpc":
            record_rpc_pair(stats, src_pid, entry[1], entry[2])
        else:  # pragma: no cover - corrupted outbox entry
            raise ValueError(f"unknown outbox entry kind {kind!r}")


class ExecutionBackend:
    """Base class; see the module docstring for the contract."""

    name: str = "?"

    #: fused phase plane (``None`` -> per-process dispatch only)
    _plane = None
    #: superstep bookkeeping: executed vs short-circuited steps
    steps_executed: int = 0
    steps_skipped: int = 0
    #: span sink — the shared no-op by default, so tracing-off costs
    #: one attribute check per superstep (drivers swap in a live
    #: :class:`~repro.observability.trace.Tracer` after construction)
    tracer = NULL_TRACER

    # -- lifecycle -----------------------------------------------------
    def attach(self, cluster, processes, plane=None) -> None:
        """Bind the backend to a cluster and its (local) processes.

        Parallel in-process backends index ``processes`` by pid;
        the processes backend overrides the whole lifecycle (its
        process objects live in the workers).  ``plane`` is an optional
        fused dispatch plane (e.g.
        :class:`~repro.core.fused.FusedDnePlane`): when every
        executable step of a superstep names the same plane-supported
        method, the backend issues one fused call instead of
        per-process steps.
        """
        self.cluster = cluster
        self._procs = {proc.pid: proc for proc in processes}
        self._plane = plane
        self.steps_executed = 0
        self.steps_skipped = 0

    def close(self) -> None:
        """Release workers/pools/shared segments.  Idempotent."""

    # -- superstep execution -------------------------------------------
    def run_superstep(self, steps, gather=()) -> dict:
        """Template method: execute the superstep, optionally traced.

        Concrete backends implement :meth:`_execute_superstep`; this
        wrapper emits exactly one span per superstep when a live
        tracer is installed.  Step semantics, dispatch, and accounting
        are untouched either way — the tracer only *observes* the
        ``StepResult`` map (per-step compute seconds ride back from
        the workers alongside the outbox replies), so span structure
        is identical across backends and results are identical with
        tracing on or off (pinned by ``tests/test_observability.py``).
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._execute_superstep(steps, gather)
        methods = {method for _, method, _ in steps if method is not None}
        name = next(iter(methods)) if len(methods) == 1 else \
            ("idle" if not methods else "mixed")
        executed = sum(1 for _, method, _ in steps if method is not None)
        t0 = time.perf_counter()
        out = self._execute_superstep(steps, gather)
        seconds = time.perf_counter() - t0
        tracer.span(
            f"superstep:{name}", cat="superstep", seconds=seconds,
            args={"method": name, "steps": len(steps),
                  "executed": executed,
                  "skipped": len(steps) - executed,
                  "busy_seconds": round(
                      sum(r.seconds for r in out.values()), 9)})
        return out

    def _execute_superstep(self, steps, gather=()) -> dict:
        raise NotImplementedError

    def _count_steps(self, steps) -> None:
        """Track executed vs short-circuited (``method is None``) steps.

        Skip decisions are made by the driver *before* dispatch (from
        the parent cluster's delivered mailboxes), so the counts are
        identical across backends — pinned by ``tests/test_backends.py``.
        """
        executed = sum(1 for _, method, _ in steps if method is not None)
        self.steps_executed += executed
        self.steps_skipped += len(steps) - executed

    def _fusable_method(self, steps):
        """The single plane method this superstep fuses to, or ``None``.

        Fusion requires a plane, at least one executable step, every
        executable step naming the same plane-supported zero-argument
        method.
        """
        plane = self._plane
        if plane is None:
            return None
        methods = {method for _, method, _ in steps if method is not None}
        if len(methods) != 1:
            return None
        method = next(iter(methods))
        if method not in plane.methods:
            return None
        if any(args for _, method, args in steps if method is not None):
            return None
        return method

    # -- out-of-phase access -------------------------------------------
    def gather(self, pids, attrs) -> dict:
        """Read cheap per-process counters: ``{pid: {attr: value}}``."""
        return {pid: {a: getattr(self._procs[pid], a) for a in attrs}
                for pid in pids}

    def call_all(self, pids, method: str) -> dict:
        """Invoke a no-argument method on each pid (collect phase)."""
        return {pid: getattr(self._procs[pid], method)() for pid in pids}

    def apply_all(self, method: str, pid_args: dict) -> dict:
        """Invoke ``method(*args)`` per pid with per-pid arguments.

        The scatter counterpart of :meth:`call_all`: ``pid_args`` maps
        pid -> args tuple.  Used by checkpoint resume to push saved
        state blobs back into live processes (``restore_state``) —
        the processes backend routes each call to the worker owning
        the pid so shm-backed arrays are restored in place.
        """
        return {pid: getattr(self._procs[pid], method)(*args)
                for pid, args in pid_args.items()}

    # -- whole-graph offload -------------------------------------------
    def run_graph_task(self, fn, graph, *args):
        """Run ``fn(graph, *args)`` on this backend's compute resource.

        The escape hatch for partitioners that are one sequential
        program rather than a Process/barrier ensemble (SNE's bounded
        stream): ``simulated`` runs inline, ``threads`` on a worker
        thread, ``processes`` in a worker process with the graph mapped
        through shared memory.  ``fn`` must be a module-level function
        of picklable arguments returning picklable results.
        """
        return fn(graph, *args)


class SimulatedBackend(ExecutionBackend):
    """The reference scheduler: sequential, immediate-effect steps.

    Unchanged semantics from the pre-backend driver loops — steps run
    inline in list order with ``Process._outbox`` left unarmed, so
    every send/report hits the cluster at call time.  This is the
    backend every parallel one is pinned against.
    """

    name = "simulated"

    def _execute_superstep(self, steps, gather=()) -> dict:
        self._count_steps(steps)
        fused = self._fusable_method(steps)
        if fused is not None:
            return self._run_fused(fused, steps, gather)
        out = {}
        for pid, method, args in steps:
            proc = self._procs[pid]
            if method is None:
                out[pid] = StepResult(
                    None, 0.0, {a: getattr(proc, a) for a in gather})
                continue
            t0 = time.perf_counter()
            value = getattr(proc, method)(*args)
            seconds = time.perf_counter() - t0
            out[pid] = StepResult(value, seconds,
                                  {a: getattr(proc, a) for a in gather})
        return out

    def _run_fused(self, method, steps, gather) -> dict:
        """One plane call for the whole superstep, effects inline.

        Outboxes stay unarmed, so the plane's per-process emission order
        (machines ascending, destinations ascending) creates the payload
        buffers in exactly the order sequential per-process steps would
        have.
        """
        run_pids = [pid for pid, m, _ in steps if m is not None]
        t0 = time.perf_counter()
        values = self._plane.run(method, run_pids)
        seconds = time.perf_counter() - t0
        out = {}
        for pid, m, _ in steps:
            proc = self._procs[pid]
            gathered = {a: getattr(proc, a) for a in gather}
            if m is None:
                out[pid] = StepResult(None, 0.0, gathered)
            else:
                out[pid] = StepResult(values.get(pid), seconds, gathered)
        return out
