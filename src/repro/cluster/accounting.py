"""Cost accounting for the simulated cluster.

Figure 9 of the paper reports a *mem score* — peak total resident bytes
across processes, normalised by edge count — and §5/§7 argue about
barrier counts and communication volume.  This module provides the
measurement model:

* :func:`payload_nbytes` sizes a message payload the way a compact
  binary MPI encoding would (numpy arrays at their buffer size, ints at
  8 bytes, containers as the sum of their items).
* :class:`ProcessStats` accumulates per-process traffic and tracks the
  peak of registered memory.
* :class:`ClusterStats` aggregates across processes and produces the
  paper's normalised scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["payload_nbytes", "record_rpc_pair", "ProcessStats",
           "ClusterStats"]

_SCALAR_BYTES = 8


def payload_nbytes(payload) -> int:
    """Estimate the wire size of a message payload in bytes.

    The model mirrors a compact binary encoding: numpy arrays count
    their raw buffers, python ints/floats count 8 bytes, strings their
    UTF-8 length, and containers the sum of their elements.  ``None``
    is free (a control-only message).
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bool, int, float, np.integer, np.floating)):
        return _SCALAR_BYTES
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v)
                   for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(item) for item in payload)
    # Dataclass-like objects expose __dict__; fall back to sizing it.
    if hasattr(payload, "__dict__"):
        return payload_nbytes(vars(payload))
    raise TypeError(f"cannot size payload of type {type(payload)!r}")


def record_rpc_pair(stats: "ClusterStats", requester, responder,
                    nbytes: int) -> None:
    """Account one synchronous request/response exchange.

    ``nbytes`` each way: a send+receive pair on both sides, no mailbox
    message.  The single home of this pricing rule — used at call time
    by ``Process.account_rpc_pair`` (simulated scheduler) and at replay
    time by the execution backends' outbox replay; the two must never
    diverge.
    """
    stats.stats_for(requester).record_send(nbytes)
    stats.stats_for(responder).record_receive(nbytes)
    stats.stats_for(responder).record_send(nbytes)
    stats.stats_for(requester).record_receive(nbytes)


@dataclass
class ProcessStats:
    """Traffic and memory counters for one simulated process."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    #: bulk accounting passes (one per coalesced (src, dst, tag) buffer
    #: or collective fan-out) — the batching-efficiency counters; they
    #: never affect the message/byte totals
    send_batches: int = 0
    receive_batches: int = 0
    #: named resident structures; peak of their sum is the mem score input
    _resident: dict = field(default_factory=dict)
    peak_resident_bytes: int = 0

    def record_send(self, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes

    def record_receive(self, nbytes: int) -> None:
        self.messages_received += 1
        self.bytes_received += nbytes

    def record_send_bulk(self, count: int, nbytes: int) -> None:
        """Account ``count`` sends totalling ``nbytes`` in one update.

        Senders with a regular wire pattern — collectives that know
        their whole fan-out up front, and the barrier-batched message
        plane's per-(src, dst, tag) buffers — replace ``count``
        per-message calls with one bulk update; the message/byte totals
        are identical, and ``send_batches`` counts the coalesced passes.
        """
        self.messages_sent += count
        self.bytes_sent += nbytes
        self.send_batches += 1

    def record_receive_bulk(self, count: int, nbytes: int) -> None:
        """Account ``count`` receives totalling ``nbytes`` in one update."""
        self.messages_received += count
        self.bytes_received += nbytes
        self.receive_batches += 1

    def set_resident(self, name: str, nbytes: int) -> None:
        """Register (or update) a named resident structure's size.

        The peak of the running total across all names is retained —
        the simulator's analogue of the paper's 0.5-second memory
        snapshots.
        """
        self._resident[name] = int(nbytes)
        total = sum(self._resident.values())
        if total > self.peak_resident_bytes:
            self.peak_resident_bytes = total

    def resident_bytes(self) -> int:
        """Current total of registered structures."""
        return sum(self._resident.values())


@dataclass
class ClusterStats:
    """Cluster-wide aggregate of :class:`ProcessStats`."""

    per_process: dict = field(default_factory=dict)
    barriers: int = 0

    def stats_for(self, pid) -> ProcessStats:
        if pid not in self.per_process:
            self.per_process[pid] = ProcessStats()
        return self.per_process[pid]

    # -- aggregates ----------------------------------------------------
    @property
    def total_bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.per_process.values())

    @property
    def total_messages_sent(self) -> int:
        return sum(s.messages_sent for s in self.per_process.values())

    @property
    def total_send_batches(self) -> int:
        """Bulk accounting passes across processes — with the batched
        message plane this is the number of (src, dst, tag) edges
        priced, the quantity the per-barrier coalescing optimises."""
        return sum(s.send_batches for s in self.per_process.values())

    @property
    def peak_total_resident_bytes(self) -> int:
        """Sum of per-process peaks.

        A slight over-approximation of the true simultaneous peak, in
        the same way the paper's snapshot `smax` is a lower bound on it;
        both are consistent estimators of resident footprint.
        """
        return sum(s.peak_resident_bytes for s in self.per_process.values())

    def mem_score(self, num_edges: int) -> float:
        """Figure 9's metric: peak resident bytes per input edge."""
        if num_edges <= 0:
            raise ValueError("num_edges must be positive")
        return self.peak_total_resident_bytes / num_edges

    def summary(self) -> dict:
        """Flat dict of headline numbers, convenient for bench output."""
        return {
            "processes": len(self.per_process),
            "barriers": self.barriers,
            "total_messages": self.total_messages_sent,
            "total_bytes": self.total_bytes_sent,
            "peak_resident_bytes": self.peak_total_resident_bytes,
        }

    def record_metrics(self, registry) -> None:
        """Feed the run's final totals into a metrics registry.

        Called once at end of run (never per message — telemetry must
        not tax the message plane): counters accumulate across runs
        sharing the registry, the peak gauge is last-run-wins.
        """
        registry.counter_inc("repro_cluster_messages_total",
                             self.total_messages_sent)
        registry.counter_inc("repro_cluster_bytes_total",
                             self.total_bytes_sent)
        registry.counter_inc("repro_cluster_barriers_total", self.barriers)
        registry.gauge_set("repro_cluster_peak_resident_bytes",
                           self.peak_total_resident_bytes)
