"""Deterministic message-passing simulator.

:class:`SimulatedCluster` hosts a set of named :class:`Process` objects
and gives them the three primitives the paper's algorithm needs:

* ``send(dst, tag, payload)`` — asynchronous tagged message, accounted
  by the byte-sizing model in :mod:`repro.cluster.accounting`;
* ``barrier()`` — delivers all in-flight messages and bumps the global
  barrier counter (the unit Figure 6 counts as an "iteration" cost);
* ``receive(tag)`` — drain the mailbox for a tag.

Messages between a process and itself are accounted as local (zero
bytes on the wire, still counted as a message) — matching how the
paper's implementation co-locates an expansion process and an
allocation process on each machine and exchanges data through memory.

The simulator is *deterministic*: mailboxes preserve send order, and
all iteration orders are over sorted process ids.

Payload contract
----------------
Payloads are sized by :func:`repro.cluster.accounting.payload_nbytes`,
which prices a ``(k, 2)`` int64 ndarray and a list of ``k`` int pairs
identically (``16k`` bytes) — so the vectorized kernels ship structured
ndarrays end-to-end (``select`` / ``sync`` / ``boundary`` pair batches,
``edges`` id arrays) while the reference kernels ship tuple lists, and
the two stay byte-for-byte identical under the accounting model.
Receivers that must accept either form normalise through
:func:`pair_array`, the contract's single conversion point.

Barrier-batched sends
---------------------
``send`` prices and accounts each message at call time — the
per-message floor the selection bench hit.  ``send_batched`` is the
bulk plane: payloads are appended to a per-``(src, dst, tag)`` buffer
(one dict hit + one list append per call) and the whole buffer is
priced, accounted, and delivered in one pass per *communication-graph
edge* at the next ``barrier()`` / ``flush()``.  The observable contract
is unchanged:

* per-process message/byte totals are exactly what the same ``send``
  calls would have produced (bulk pricing is the sum of the
  per-payload :func:`payload_nbytes` prices — pinned by the batched
  accounting property test);
* mailbox order groups by ``(src, dst, tag)`` buffer in first-send
  order, payloads in append order within a buffer.  Callers that send
  at most one message per ``(dst, tag)`` per barrier window — every
  DNE phase does — observe the identical delivery order as ``send``;
* eagerly-sent (``send``) messages of the same window are delivered
  first, in send order.

Execution backends
------------------
The cluster itself is a passive mailbox + accountant; *who* runs the
process steps between barriers is the job of
:mod:`repro.cluster.backends`.  The ``simulated`` backend calls the
step methods inline (the deterministic reference scheduler); the
``threads`` / ``processes`` backends run them on real concurrent
workers.  To keep accounting and delivery order bit-identical under
concurrency, a parallel backend arms each process with an *outbox*
(:attr:`Process._outbox`) before running its step: every ``send`` /
``send_batched`` / ``set_resident`` / RPC-accounting call is recorded
instead of applied, and the parent replays the outboxes against the
cluster in deterministic step order afterwards (see
``repro.cluster.backends.base.apply_outbox``).  Replay is exactly the
call sequence the simulated scheduler would have made, so totals,
mailbox order, and memory peaks cannot diverge.
"""

from __future__ import annotations

import copy
from collections import defaultdict

import numpy as np

from repro.cluster.accounting import (ClusterStats, payload_nbytes,
                                      record_rpc_pair)

__all__ = ["Process", "SimulatedCluster", "pair_array", "restore_attr"]


def restore_attr(obj, name: str, value) -> None:
    """Restore one attribute from a state snapshot, in place when it
    matters.

    The rule that makes checkpoint/restore safe under the fused
    dispatch plane and the shared-memory arenas: several per-process
    arrays (``alloc``, ``_part_loads``, membership matrices, the
    processes backend's ``rest_degree``) are *views* into larger fused
    or shared segments, so restoring them must write through the
    existing buffer — rebinding the attribute would silently detach
    the process from its siblings.  Hence:

    * matching ndarray (same shape + dtype) -> element-wise copy into
      the existing buffer;
    * matching plain object (same class, same ``__dict__`` keys) ->
      recurse per attribute, so e.g. a membership wrapper's matrix is
      restored through the fused view while its scalars rebind;
    * anything else -> rebind.
    """
    current = getattr(obj, name, None)
    if (isinstance(current, np.ndarray) and isinstance(value, np.ndarray)
            and current.shape == value.shape
            and current.dtype == value.dtype):
        current[...] = value
        return
    if (current is not None and value is not None
            and type(current) is type(value)
            and not isinstance(value, (np.ndarray, list, tuple, dict, set,
                                       frozenset, str, bytes, int, float,
                                       bool))
            and getattr(current, "__dict__", None) is not None
            and getattr(value, "__dict__", None) is not None
            and current.__dict__.keys() == value.__dict__.keys()):
        for key, val in value.__dict__.items():
            restore_attr(current, key, val)
        return
    setattr(obj, name, value)


def pair_array(payload) -> np.ndarray:
    """Normalise a pair-batch payload to a ``(k, 2)`` int64 ndarray.

    The vectorized kernels already send ndarrays (returned as-is, no
    copy); reference tuple lists are converted.  An empty payload
    yields a ``(0, 2)`` array, so downstream concatenation and column
    slicing never special-case.
    """
    if isinstance(payload, np.ndarray) and payload.dtype == np.int64 \
            and payload.ndim == 2:
        return payload
    arr = np.asarray(payload, dtype=np.int64)
    return arr.reshape(-1, 2)


class Process:
    """Base class for a simulated process.

    Subclasses implement behaviour as plain methods and use
    :meth:`send` / :meth:`receive`; the cluster injects itself at
    registration time.  ``pid`` may be any hashable id; the paper's
    deployment uses pairs like ``("expansion", 3)``.
    """

    #: attributes excluded from state snapshots: cluster wiring, the
    #: outbox hook, and (in subclasses) shared read-only structures —
    #: graph CSR views, placements, seed sources, derived immutable
    #: index arrays.  Everything else is per-run mutable state and
    #: rides checkpoint_state()/restore_state().
    _STATE_EXCLUDE: frozenset = frozenset({"cluster", "_outbox"})

    def __init__(self, pid):
        self.pid = pid
        self.cluster: SimulatedCluster | None = None
        self._pending_resident: dict = {}
        #: when a parallel execution backend runs this process's step,
        #: it points this at a per-step list and every outbound effect
        #: (sends, resident reports, RPC accounting) is recorded there
        #: instead of applied — the parent replays outboxes in
        #: deterministic step order (see repro.cluster.backends).
        self._outbox: list | None = None

    # -- checkpoint / restore ------------------------------------------
    def checkpoint_state(self) -> dict:
        """Deep snapshot of this process's mutable state.

        Picklable and self-contained (shared-memory and fused-array
        views are copied out), so the blob can travel over a worker
        pipe, live in a supervisor's retry cache, or be written to a
        :class:`~repro.cluster.checkpoint.CheckpointStore`.  Restoring
        it with :meth:`restore_state` — on this object or on a freshly
        rebuilt twin — reproduces the state bit-for-bit; step purity
        (own state + delivered mail only) then makes every re-executed
        step bit-identical.
        """
        return copy.deepcopy({key: value
                              for key, value in self.__dict__.items()
                              if key not in self._STATE_EXCLUDE})

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`checkpoint_state` snapshot.

        Arrays are written *through* existing buffers where shapes
        match (see :func:`restore_attr`) so shared-memory views stay
        shared and fused-plane views stay fused; the caller's blob is
        deep-copied first and never aliased.
        """
        for name, value in copy.deepcopy(state).items():
            restore_attr(self, name, value)

    # -- wiring --------------------------------------------------------
    def _attach(self, cluster: "SimulatedCluster") -> None:
        self.cluster = cluster
        # Flush memory reports made before registration (constructors
        # typically register their initial structures).
        for name, nbytes in self._pending_resident.items():
            cluster.stats.stats_for(self.pid).set_resident(name, nbytes)
        self._pending_resident.clear()

    # -- messaging -----------------------------------------------------
    def send(self, dst, tag: str, payload=None) -> None:
        """Send ``payload`` to process ``dst`` under ``tag``."""
        if self._outbox is not None:
            self._outbox.append(("send", dst, tag, payload))
            return
        assert self.cluster is not None, "process not registered with a cluster"
        self.cluster._send(self.pid, dst, tag, payload)

    def send_batched(self, dst, tag: str, payload=None) -> None:
        """Send ``payload`` on the barrier-batched plane.

        Same totals and (for one-message-per-destination senders) same
        delivery order as :meth:`send`; accounting is deferred to the
        next ``barrier()``/``flush()`` and done once per
        ``(src, dst, tag)`` buffer instead of once per message.
        """
        if self._outbox is not None:
            self._outbox.append(("batched", dst, tag, payload))
            return
        assert self.cluster is not None, "process not registered with a cluster"
        self.cluster._send_batched(self.pid, dst, tag, payload)

    def send_fanout(self, tag: str, dest_payloads) -> None:
        """Hand a whole multicast to the barrier-batched plane at once.

        ``dest_payloads`` is an iterable of ``(dst, payload)`` pairs;
        equivalent to one :meth:`send_batched` per pair, minus the
        per-message dispatch — the hot-path form for selection
        multicasts that fan out to O(sqrt |P|) destinations every
        iteration.
        """
        if self._outbox is not None:
            # Captured pair-by-pair: replay is a loop of _send_batched
            # calls, which produces the identical buffer append order.
            self._outbox.extend(("batched", dst, tag, payload)
                                for dst, payload in dest_payloads)
            return
        assert self.cluster is not None, "process not registered with a cluster"
        self.cluster._send_fanout(self.pid, tag, dest_payloads)

    def receive(self, tag: str) -> list:
        """Pop and return all delivered ``(src, payload)`` pairs for ``tag``."""
        assert self.cluster is not None, "process not registered with a cluster"
        return self.cluster._receive(self.pid, tag)

    def set_resident(self, name: str, nbytes: int) -> None:
        """Report a resident structure's size to the memory accountant.

        Safe to call before cluster registration; pre-attach reports are
        buffered and flushed at attach time.
        """
        if self._outbox is not None:
            self._outbox.append(("resident", name, int(nbytes)))
        elif self.cluster is None:
            self._pending_resident[name] = int(nbytes)
        else:
            self.cluster.stats.stats_for(self.pid).set_resident(name, nbytes)

    def account_rpc_pair(self, other_pid, nbytes: int) -> None:
        """Account a synchronous request/response exchange with another
        process (``nbytes`` each way) without sending a mailbox message.

        Used by the expansion seed scan, whose remote lookups the paper
        models as one request + one response per scanned machine.  This
        is the single home of that accounting so parallel backends can
        capture it in the outbox instead of racing the shared counters
        (the stats objects of *other* processes are not safe to touch
        from inside a concurrently-executing step).
        """
        if self._outbox is not None:
            self._outbox.append(("rpc", other_pid, int(nbytes)))
            return
        assert self.cluster is not None, "process not registered with a cluster"
        record_rpc_pair(self.cluster.stats, self.pid, other_pid, nbytes)

    def account_rpc_pairs(self, other_pids, nbytes: int) -> None:
        """Bulk form of :meth:`account_rpc_pair`: one exchange per pid.

        Totals are exactly a loop of per-pair calls (integer adds
        commute); the outbox path records per-pair entries so replay is
        byte-for-byte the sequential call sequence.  Used by the seed
        scan, whose probe loop may touch O(|P|) remote processes.
        """
        nbytes = int(nbytes)
        if self._outbox is not None:
            self._outbox.extend(("rpc", pid, nbytes) for pid in other_pids)
            return
        assert self.cluster is not None, "process not registered with a cluster"
        n = len(other_pids)
        if not n:
            return
        stats = self.cluster.stats
        mine = stats.stats_for(self.pid)
        total = nbytes * n
        mine.messages_sent += n
        mine.bytes_sent += total
        mine.messages_received += n
        mine.bytes_received += total
        per = stats.per_process
        for pid in other_pids:
            other = per.get(pid)
            if other is None:
                other = stats.stats_for(pid)
            other.messages_received += 1
            other.bytes_received += nbytes
            other.messages_sent += 1
            other.bytes_sent += nbytes


class SimulatedCluster:
    """A set of processes plus mailboxes, barriers, and accounting."""

    def __init__(self):
        self._processes: dict = {}
        #: (dst, tag) -> list of (src, payload), already delivered
        self._delivered: dict = defaultdict(list)
        #: in-flight messages, delivered at the next barrier
        self._in_flight: list = []
        #: (src, dst, tag) -> list of payloads awaiting bulk accounting
        #: and delivery (the barrier-batched plane; insertion-ordered)
        self._batched: dict = {}
        self.stats = ClusterStats()

    # -- membership ----------------------------------------------------
    def add_process(self, process: Process) -> Process:
        """Register ``process``; its pid must be unique."""
        if process.pid in self._processes:
            raise ValueError(f"duplicate process id {process.pid!r}")
        self._processes[process.pid] = process
        process._attach(self)
        self.stats.stats_for(process.pid)  # materialise counters
        return process

    def process(self, pid) -> Process:
        return self._processes[pid]

    @property
    def pids(self) -> list:
        return sorted(self._processes, key=repr)

    def processes(self) -> list:
        """All processes in deterministic pid order."""
        return [self._processes[pid] for pid in self.pids]

    # -- messaging internals --------------------------------------------
    def _send(self, src, dst, tag: str, payload) -> None:
        if dst not in self._processes:
            raise KeyError(f"unknown destination process {dst!r}")
        # Same-machine exchange is free on the wire but still a message.
        # The check and the stats lookups are inlined — this is the
        # per-message floor every kernel pays, so it must stay at a few
        # dict hits (ndarray payloads additionally size in O(1) via
        # their nbytes instead of a per-element walk).  The inline MUST
        # stay equivalent to _same_machine + payload_nbytes +
        # record_send/record_receive; tests/test_cluster.py pins the
        # composition.
        if src == dst or (isinstance(src, tuple) and isinstance(dst, tuple)
                          and len(src) == 2 and len(dst) == 2
                          and src[1] == dst[1]):
            nbytes = 0
        elif isinstance(payload, np.ndarray):
            nbytes = int(payload.nbytes)
        else:
            nbytes = payload_nbytes(payload)
        per = self.stats.per_process
        stats = per.get(src)
        if stats is None:
            stats = self.stats.stats_for(src)
        stats.messages_sent += 1
        stats.bytes_sent += nbytes
        stats = per.get(dst)
        if stats is None:
            stats = self.stats.stats_for(dst)
        stats.messages_received += 1
        stats.bytes_received += nbytes
        self._in_flight.append((src, dst, tag, payload))

    def _send_batched(self, src, dst, tag: str, payload) -> None:
        # The hot path is one dict hit and one append; the destination
        # check runs only when a (src, dst, tag) buffer first appears,
        # so a barrier window's worth of sends to one destination pays
        # it once.
        key = (src, dst, tag)
        buf = self._batched.get(key)
        if buf is None:
            if dst not in self._processes:
                raise KeyError(f"unknown destination process {dst!r}")
            buf = self._batched[key] = []
        buf.append(payload)

    def _send_fanout(self, src, tag: str, dest_payloads) -> None:
        # One loop with hoisted lookups instead of one _send_batched
        # dispatch per destination.
        batched = self._batched
        processes = self._processes
        for dst, payload in dest_payloads:
            key = (src, dst, tag)
            buf = batched.get(key)
            if buf is None:
                if dst not in processes:
                    raise KeyError(f"unknown destination process {dst!r}")
                buf = batched[key] = []
            buf.append(payload)

    def _receive(self, pid, tag: str) -> list:
        out = self._delivered.pop((pid, tag), [])
        return out

    def deliver_segments(self, tag: str, entries, src_role: str,
                         src_slots, dst_role: str, dst_slots,
                         nbytes) -> None:
        """Deliver one emission sweep of single-payload segment batches,
        priced in bulk.

        ``entries`` is the sweep's ``(dst_pid, (src_pid, payload))``
        list in creation order; ``src_slots`` / ``dst_slots`` are the
        aligned machine slots and ``nbytes`` the aligned payload sizes
        (int64 ndarrays).  Every ``(src, dst)`` pair must be distinct
        within the sweep, so each entry is exactly one batched buffer:
        totals are identical to one ``send_batched`` per entry drained
        at the next barrier — one message and one batch each, wire
        bytes zero iff the machine slots match — but the accounting
        collapses to one bulk update per touched process and delivery
        happens inline, in the order the batched plane would have
        drained the sweep's buffers.  Callers own cross-sweep ordering:
        within a superstep no other sender may target a ``(dst, tag)``
        mailbox this sweep also targets.  Not outbox-aware — parallel
        backends arm process outboxes, and senders must fall back to
        the per-process send helpers there.
        """
        if not entries:
            return
        delivered = self._delivered
        for dst_pid, mail in entries:
            delivered[dst_pid, tag].append(mail)
        wire = np.where(src_slots == dst_slots, 0, nbytes)
        stats = self.stats
        for role, slots, sending in ((src_role, src_slots, True),
                                     (dst_role, dst_slots, False)):
            counts = np.bincount(slots)
            totals = np.bincount(slots, weights=wire)
            for slot in np.flatnonzero(counts):
                st = stats.stats_for((role, int(slot)))
                n = int(counts[slot])
                b = int(totals[slot])
                if sending:
                    st.messages_sent += n
                    st.bytes_sent += b
                    st.send_batches += n
                else:
                    st.messages_received += n
                    st.bytes_received += b
                    st.receive_batches += n

    # -- synchronisation -------------------------------------------------
    def _drain(self) -> None:
        """Deliver every pending message: eager sends first (send
        order), then the batched buffers — one pricing + accounting
        pass per (src, dst, tag) edge of the communication graph,
        totals identical to per-message ``send`` accounting."""
        delivered = self._delivered
        for src, dst, tag, payload in self._in_flight:
            delivered[(dst, tag)].append((src, payload))
        self._in_flight.clear()
        if not self._batched:
            return
        # One accounting update per *process* rather than per buffer:
        # the bulk counters are plain integer adds, so accumulating the
        # per-buffer (count, bytes, batches) contributions in local
        # dicts and applying each process's sum once is total-identical
        # to a record_send_bulk/record_receive_bulk pair per buffer
        # (send_batches/receive_batches advance by the buffer count).
        send_acc: dict = {}
        recv_acc: dict = {}
        for (src, dst, tag), payloads in self._batched.items():
            count = len(payloads)
            # _same_machine, inlined: this loop runs once per buffer of
            # a barrier window (sparse, barely-repeating keys, so
            # memoising verdicts loses to just checking).  The 2-tuple
            # slot compare subsumes the src == dst case.
            if (type(src) is tuple and type(dst) is tuple
                    and len(src) == 2 and len(dst) == 2):
                same = src[1] == dst[1]
            else:
                same = src == dst
            if same:
                nbytes = 0
            elif count == 1:
                # payload_nbytes is the one home of the pricing rule
                # (its ndarray fast path is O(1)); this pass runs once
                # per buffer at barrier, not per message.
                p = payloads[0]
                nbytes = (int(p.nbytes) if isinstance(p, np.ndarray)
                          else payload_nbytes(p))
            else:
                nbytes = sum(payload_nbytes(p) for p in payloads)
            acc = send_acc.get(src)
            if acc is None:
                acc = send_acc[src] = [0, 0, 0]
            acc[0] += count
            acc[1] += nbytes
            acc[2] += 1
            acc = recv_acc.get(dst)
            if acc is None:
                acc = recv_acc[dst] = [0, 0, 0]
            acc[0] += count
            acc[1] += nbytes
            acc[2] += 1
            mailbox = delivered[(dst, tag)]
            if count == 1:
                mailbox.append((src, payloads[0]))
            else:
                mailbox.extend((src, p) for p in payloads)
        for src, (count, nbytes, batches) in send_acc.items():
            stats = self.stats.stats_for(src)
            stats.messages_sent += count
            stats.bytes_sent += nbytes
            stats.send_batches += batches
        for dst, (count, nbytes, batches) in recv_acc.items():
            stats = self.stats.stats_for(dst)
            stats.messages_received += count
            stats.bytes_received += nbytes
            stats.receive_batches += batches
        self._batched.clear()

    def barrier(self) -> None:
        """Deliver all in-flight messages; counts one global barrier."""
        self._drain()
        self.stats.barriers += 1

    def flush(self) -> None:
        """Deliver in-flight messages *without* counting a barrier.

        Used for the initial data distribution, which the paper excludes
        from its elapsed-time measurements.
        """
        self._drain()

    # -- collectives ------------------------------------------------------
    def all_gather_sum(self, values: dict) -> float:
        """AllGather+sum collective (Algorithm 1, line 14).

        ``values`` maps pid -> local value.  Accounts one scalar message
        from every process to every other process (the all-gather wire
        pattern) and returns the global sum.  Does *not* barrier; the
        caller owns synchronisation.

        The wire pattern is completely regular, so the accounting is a
        single bulk update per process instead of an O(P²) message
        loop: each process sends P-1 messages, of which the ones to
        co-located processes (pids of the form ``(role, k)`` sharing
        ``k``) are free on the wire.
        """
        pids = sorted(values, key=repr)
        n = len(pids)
        if n > 1:
            # Same-machine partner counts per pid: 2-tuples group by
            # their machine slot; any other pid is a singleton.
            machines = defaultdict(int)
            for pid in pids:
                if isinstance(pid, tuple) and len(pid) == 2:
                    machines[pid[1]] += 1
            for pid in pids:
                colocated = (machines[pid[1]] - 1
                             if isinstance(pid, tuple) and len(pid) == 2
                             else 0)
                nbytes = 8 * (n - 1 - colocated)
                stats = self.stats.stats_for(pid)
                stats.record_send_bulk(n - 1, nbytes)
                stats.record_receive_bulk(n - 1, nbytes)
        return sum(values.values())


def _same_machine(a, b) -> bool:
    """True when two pids are co-located on one simulated machine.

    Pids of the form ``(role, k)`` share machine ``k``; anything else is
    co-located only with itself.
    """
    if a == b:
        return True
    if (isinstance(a, tuple) and isinstance(b, tuple)
            and len(a) == 2 and len(b) == 2):
        return a[1] == b[1]
    return False
