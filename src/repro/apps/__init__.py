"""Distributed graph applications over edge partitions (§7.6).

* :func:`repro.apps.sssp.sssp` — frontier Bellman–Ford (light traffic).
* :func:`repro.apps.wcc.wcc` — HashMin components (medium traffic).
* :func:`repro.apps.pagerank.pagerank` — synchronous PageRank (heavy).

All run on :class:`repro.apps.engine.DistributedGraphEngine`, a
vertex-cut (master/mirror) execution substrate that accounts the
communication and per-partition load Table 5 reports.
"""

from repro.apps.engine import AppRunStats, DistributedGraphEngine
from repro.apps.pagerank import pagerank
from repro.apps.sssp import sssp
from repro.apps.wcc import wcc

__all__ = ["DistributedGraphEngine", "AppRunStats", "sssp", "wcc", "pagerank"]
