"""GAS-style distributed application engine over edge partitions.

§7.6 of the paper evaluates partitionings by running SSSP, WCC, and
PageRank on PowerLyra and measuring elapsed time, communication volume,
and workload balance.  This engine reproduces exactly the quantities
that *depend on the partitioning*:

* each partition holds its edges plus a replica of every incident
  vertex (vertex-cut execution, as in PowerGraph/PowerLyra);
* one replica per vertex is the **master** (chosen by hash among the
  replicas); the others are mirrors;
* every superstep follows gather → apply → scatter:

  - mirrors push their partial aggregates to the master
    (``8 bytes`` per pushing mirror — the gather traffic),
  - masters apply the update,
  - masters push the new value back to the mirrors of *changed*
    vertices (the scatter traffic);

* per-partition compute time is measured per superstep; the simulated
  parallel elapsed time is ``sum over supersteps of max_p(t_p)`` and
  the workload balance is ``B({total local time per partition})``
  (§7.6's WB).

Applications (:mod:`repro.apps.sssp`, :mod:`repro.apps.wcc`,
:mod:`repro.apps.pagerank`) are built on the two primitives
:meth:`DistributedGraphEngine.gather_sum` / :meth:`gather_min` plus
:meth:`scatter_changed`.

Kernel architecture
-------------------
The paper's flat-array argument (§4) applies to the execution substrate
too: per-partition state should be laid out over *compacted local
vertex ids* (a dense ``0..|V_p|`` relabeling of the partition's covered
set) so every superstep touches O(m_p + |V_p|) memory, not O(n) dense
temporaries per partition.  Two kernels are provided:

* ``kernel="vectorized"`` (default) — all partitions' gathers run as
  ONE fused flat computation: the per-partition compacted id spaces are
  concatenated into a single ``0..Σ|V_p|`` slot space, gather partials
  are one ``np.bincount`` scatter-add (sum) or one sorted-segment
  ``np.minimum.reduceat`` (min) over it, and the global combine is a
  second ``bincount``/``minimum.at`` through the concatenated covered
  lists.  No per-partition Python dispatch, no ``O(n)`` temporaries.
  Per-partition compute time is *attributed* from the measured fused
  kernel time proportionally to each partition's touched elements
  (``2 m_p + |V_p|``) — the deterministic cost model a simulator wants,
  free of per-partition timer noise.
* ``kernel="python"`` — the original ``np.add.at`` /
  ``np.minimum.at`` formulation over full ``O(n)`` per-partition
  temporaries with real per-partition timers, kept as the reference
  for the perf harness and the equivalence tests.

Both kernels produce bit-identical gather results: ``bincount``
accumulates each bin in the same element order as the sequential
``ufunc.at`` loop, and min is order-independent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.kernels import validate_kernel
from repro.partitioners.base import EdgePartition
from repro.partitioners.hashing import splitmix64

__all__ = ["DistributedGraphEngine", "AppRunStats"]

_VALUE_BYTES = 8


@dataclass
class AppRunStats:
    """Measurements from one application run (one Table 5 cell group)."""

    supersteps: int = 0
    comm_bytes: int = 0
    #: simulated parallel time: sum over supersteps of the slowest
    #: partition's local compute time
    elapsed_seconds: float = 0.0
    #: per-partition total local compute seconds (for WB)
    local_seconds: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def workload_balance(self) -> float:
        total = self.local_seconds
        if total.size == 0 or total.mean() == 0:
            return float("nan")
        return float(total.max() / total.mean())


class DistributedGraphEngine:
    """Vertex-cut execution substrate bound to one :class:`EdgePartition`."""

    def __init__(self, partition: EdgePartition, seed: int = 0,
                 kernel: str = "vectorized"):
        validate_kernel(kernel)
        self.partition = partition
        self.graph = partition.graph
        self.p = partition.num_partitions
        self.kernel = kernel
        n = self.graph.num_vertices

        # Per-partition local edge arrays (global vertex ids).
        self.local_src: list[np.ndarray] = []
        self.local_dst: list[np.ndarray] = []
        for pid in range(self.p):
            edges = partition.edges_of(pid)
            self.local_src.append(edges[:, 0].copy())
            self.local_dst.append(edges[:, 1].copy())

        # Replica sets: partitions covering each vertex.
        self.replica_count = np.zeros(n, dtype=np.int64)
        covered = [np.unique(np.concatenate([s, d]))
                   if len(s) else np.empty(0, dtype=np.int64)
                   for s, d in zip(self.local_src, self.local_dst)]
        self.covered = covered
        for pid in range(self.p):
            self.replica_count[covered[pid]] += 1

        # Master election: hash picks one replica per vertex.  The
        # per-vertex replica lists are the groups of the concatenated
        # covered lists sorted by vertex; concatenating in pid order
        # and sorting stably keeps each group's pids ascending, so the
        # hash-indexed pick is identical to the old list-of-lists walk.
        self.master = np.full(n, -1, dtype=np.int64)
        pick = splitmix64(np.arange(n), seed=seed)
        sizes = np.array([len(c) for c in covered], dtype=np.int64)
        #: global vertex id of each flat replica slot, grouped by pid
        self._flat_cov = (np.concatenate(covered) if self.p
                          else np.empty(0, dtype=np.int64))
        slot_pid = np.repeat(np.arange(self.p, dtype=np.int64), sizes)
        if n and self.p:
            order = np.argsort(self._flat_cov, kind="stable")
            self._replica_pids = slot_pid[order]   # grouped by vertex
            grp_start = np.cumsum(self.replica_count) - self.replica_count
            have = self.replica_count > 0
            idx = grp_start[have] + (
                pick[have] % self.replica_count[have].astype(np.uint64)
            ).astype(np.int64)
            self.master[have] = self._replica_pids[idx]
        else:
            self._replica_pids = np.empty(0, dtype=np.int64)

        #: mirrors per vertex = replicas - 1 (clipped at 0 for isolated)
        self.mirror_count = np.maximum(self.replica_count - 1, 0)

        if kernel == "vectorized":
            self._build_fused(covered, sizes, slot_pid)

    def _build_fused(self, covered: list, sizes: np.ndarray,
                     slot_pid: np.ndarray) -> None:
        """Fused flat structures for the vectorized kernels: every
        partition's compacted vertex ids are packed into one
        0..Σ|V_p| slot space (partition p's covered set occupies the
        contiguous block starting at its offset).  The incidence
        lists keep the reference accumulation order within each
        partition (dst pass then src pass, edge order), so one global
        bincount reproduces the per-partition ``ufunc.at`` folds
        bit-for-bit.  Skipped for ``kernel="python"``, which never
        reads these arrays.
        """
        offsets = np.cumsum(sizes) - sizes
        self._flat_mirror = self.master[self._flat_cov] != slot_pid
        targets, sources = [], []
        for pid in range(self.p):
            cov = covered[pid]
            src, dst = self.local_src[pid], self.local_dst[pid]
            src_c = np.searchsorted(cov, src) + offsets[pid]
            dst_c = np.searchsorted(cov, dst) + offsets[pid]
            targets.append(np.concatenate([dst_c, src_c]))
            sources.append(np.concatenate([src, dst]))
        self._flat_targets = (np.concatenate(targets) if targets
                              else np.empty(0, dtype=np.int64))
        self._flat_sources = (np.concatenate(sources) if sources
                              else np.empty(0, dtype=np.int64))
        self._num_slots = int(sizes.sum())
        perm = np.argsort(self._flat_targets, kind="stable")
        self._seg_sources = self._flat_sources[perm]
        self._seg_starts = np.searchsorted(
            self._flat_targets[perm], np.arange(self._num_slots))
        # Deterministic per-partition time attribution: share of the
        # fused kernel time proportional to touched elements.
        work = 2.0 * np.array([len(s) for s in self.local_src]) + sizes
        total_work = work.sum()
        self._work_share = (work / total_work if total_work > 0
                            else np.zeros(self.p))

    @property
    def replica_lists(self) -> list:
        """Per-vertex replica partition lists (ascending pid order)."""
        lists = getattr(self, "_replica_lists", None)
        if lists is None:
            bounds = np.cumsum(self.replica_count)[:-1]
            lists = [arr.tolist()
                     for arr in np.split(self._replica_pids, bounds)]
            self._replica_lists = lists
        return lists

    # ------------------------------------------------------------------
    # Gather primitives
    # ------------------------------------------------------------------
    def gather_sum(self, values: np.ndarray, stats: AppRunStats,
                   weight_by_degree: bool = False) -> np.ndarray:
        """Sum ``values[u]`` (optionally ``/deg(u)``) over every
        neighbour u of each vertex; returns the per-vertex totals.

        Each partition computes its local partial sums; mirrors then
        push nonzero partials to masters (counted traffic).
        """
        n = self.graph.num_vertices
        contrib = values / np.maximum(self.graph.degrees(), 1) \
            if weight_by_degree else values
        if self.kernel == "vectorized":
            # One fused pass: partials for every (partition, covered
            # vertex) slot at once, then a second bincount folds the
            # replica partials into the global totals (slots of one
            # vertex are pid-ascending, matching the reference's
            # pid-order accumulation).
            t0 = time.perf_counter()
            partial = np.bincount(self._flat_targets,
                                  weights=contrib[self._flat_sources],
                                  minlength=self._num_slots)
            total = np.bincount(self._flat_cov, weights=partial,
                                minlength=n)
            local_t = (time.perf_counter() - t0) * self._work_share
            # Comm accounting outside the timer, as in the reference.
            pushed = int(((partial != 0.0) & self._flat_mirror).sum())
        else:
            total = np.zeros(n, dtype=np.float64)
            local_t = np.zeros(self.p, dtype=np.float64)
            pushed = 0
            for pid in range(self.p):
                t0 = time.perf_counter()
                partial = np.zeros(n, dtype=np.float64)
                src, dst = self.local_src[pid], self.local_dst[pid]
                np.add.at(partial, dst, contrib[src])
                np.add.at(partial, src, contrib[dst])
                total += partial
                local_t[pid] += time.perf_counter() - t0
                # Mirrors with a nonzero partial push one value each.
                pushed += len(self.covered[pid][
                    (partial[self.covered[pid]] != 0.0)
                    & (self.master[self.covered[pid]] != pid)])
        stats.comm_bytes += pushed * _VALUE_BYTES
        stats.local_seconds += local_t
        stats.elapsed_seconds += float(local_t.max()) if self.p else 0.0
        return total

    def gather_min(self, values: np.ndarray, stats: AppRunStats,
                   active: np.ndarray, offset: float = 0.0) -> np.ndarray:
        """Min over neighbours of ``values[u] + offset`` restricted to
        active source vertices; inactive-only neighbourhoods yield inf.

        The primitive behind SSSP (offset=1 hop cost) and WCC label
        minimisation (offset=0, labels as float values).
        """
        n = self.graph.num_vertices
        best = np.full(n, np.inf, dtype=np.float64)
        if self.kernel == "vectorized":
            # Sorted-segment reduction over the fused slot space, then
            # a min-scatter through the covered lists (min is
            # order-independent, so the fold order never matters).
            t0 = time.perf_counter()
            pushed = 0
            if self._num_slots:
                srcs = self._seg_sources
                vals = np.where(active[srcs], values[srcs] + offset,
                                np.inf)
                partial = np.minimum.reduceat(vals, self._seg_starts)
                np.minimum.at(best, self._flat_cov, partial)
            local_t = (time.perf_counter() - t0) * self._work_share
            if self._num_slots:
                # Comm accounting outside the timer, as in the reference.
                pushed = int((np.isfinite(partial)
                              & self._flat_mirror).sum())
        else:
            local_t = np.zeros(self.p, dtype=np.float64)
            pushed = 0
            for pid in range(self.p):
                t0 = time.perf_counter()
                src, dst = self.local_src[pid], self.local_dst[pid]
                partial = np.full(n, np.inf, dtype=np.float64)
                mask = active[src]
                if mask.any():
                    np.minimum.at(partial, dst[mask],
                                  values[src[mask]] + offset)
                mask = active[dst]
                if mask.any():
                    np.minimum.at(partial, src[mask],
                                  values[dst[mask]] + offset)
                np.minimum(best, partial, out=best)
                local_t[pid] += time.perf_counter() - t0
                pushed += len(self.covered[pid][
                    np.isfinite(partial[self.covered[pid]])
                    & (self.master[self.covered[pid]] != pid)])
        stats.comm_bytes += pushed * _VALUE_BYTES
        stats.local_seconds += local_t
        stats.elapsed_seconds += float(local_t.max()) if self.p else 0.0
        return best

    # ------------------------------------------------------------------
    # Scatter primitive
    # ------------------------------------------------------------------
    def scatter_changed(self, changed_mask: np.ndarray,
                        stats: AppRunStats) -> None:
        """Masters broadcast new values of changed vertices to mirrors."""
        stats.comm_bytes += int(
            self.mirror_count[changed_mask].sum()) * _VALUE_BYTES

    def finish_superstep(self, stats: AppRunStats) -> None:
        stats.supersteps += 1
