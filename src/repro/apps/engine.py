"""GAS-style distributed application engine over edge partitions.

§7.6 of the paper evaluates partitionings by running SSSP, WCC, and
PageRank on PowerLyra and measuring elapsed time, communication volume,
and workload balance.  This engine reproduces exactly the quantities
that *depend on the partitioning*:

* each partition holds its edges plus a replica of every incident
  vertex (vertex-cut execution, as in PowerGraph/PowerLyra);
* one replica per vertex is the **master** (chosen by hash among the
  replicas); the others are mirrors;
* every superstep follows gather → apply → scatter:

  - mirrors push their partial aggregates to the master
    (``8 bytes`` per pushing mirror — the gather traffic),
  - masters apply the update,
  - masters push the new value back to the mirrors of *changed*
    vertices (the scatter traffic);

* per-partition compute time is measured per superstep; the simulated
  parallel elapsed time is ``sum over supersteps of max_p(t_p)`` and
  the workload balance is ``B({total local time per partition})``
  (§7.6's WB).

Applications (:mod:`repro.apps.sssp`, :mod:`repro.apps.wcc`,
:mod:`repro.apps.pagerank`) are built on the two primitives
:meth:`DistributedGraphEngine.gather_sum` / :meth:`gather_min` plus
:meth:`scatter_changed`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.partitioners.base import EdgePartition
from repro.partitioners.hashing import splitmix64

__all__ = ["DistributedGraphEngine", "AppRunStats"]

_VALUE_BYTES = 8


@dataclass
class AppRunStats:
    """Measurements from one application run (one Table 5 cell group)."""

    supersteps: int = 0
    comm_bytes: int = 0
    #: simulated parallel time: sum over supersteps of the slowest
    #: partition's local compute time
    elapsed_seconds: float = 0.0
    #: per-partition total local compute seconds (for WB)
    local_seconds: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def workload_balance(self) -> float:
        total = self.local_seconds
        if total.size == 0 or total.mean() == 0:
            return float("nan")
        return float(total.max() / total.mean())


class DistributedGraphEngine:
    """Vertex-cut execution substrate bound to one :class:`EdgePartition`."""

    def __init__(self, partition: EdgePartition, seed: int = 0):
        self.partition = partition
        self.graph = partition.graph
        self.p = partition.num_partitions
        n = self.graph.num_vertices

        # Per-partition local edge arrays (global vertex ids).
        self.local_src: list[np.ndarray] = []
        self.local_dst: list[np.ndarray] = []
        for pid in range(self.p):
            edges = partition.edges_of(pid)
            self.local_src.append(edges[:, 0].copy())
            self.local_dst.append(edges[:, 1].copy())

        # Replica sets: partitions covering each vertex.
        self.replica_count = np.zeros(n, dtype=np.int64)
        covered = [np.unique(np.concatenate([s, d]))
                   if len(s) else np.empty(0, dtype=np.int64)
                   for s, d in zip(self.local_src, self.local_dst)]
        self.covered = covered
        for pid in range(self.p):
            self.replica_count[covered[pid]] += 1

        # Master election: hash picks one replica per vertex.
        self.master = np.full(n, -1, dtype=np.int64)
        pick = splitmix64(np.arange(n), seed=seed)
        # Build per-vertex replica lists column-by-column to stay vectorised:
        # repeatedly take the k-th covering partition of each vertex.
        replica_lists = [[] for _ in range(n)]
        for pid in range(self.p):
            for v in covered[pid]:
                replica_lists[v].append(pid)
        for v in range(n):
            reps = replica_lists[v]
            if reps:
                self.master[v] = reps[int(pick[v] % np.uint64(len(reps)))]
        self.replica_lists = replica_lists

        #: mirrors per vertex = replicas - 1 (clipped at 0 for isolated)
        self.mirror_count = np.maximum(self.replica_count - 1, 0)

    # ------------------------------------------------------------------
    # Gather primitives
    # ------------------------------------------------------------------
    def gather_sum(self, values: np.ndarray, stats: AppRunStats,
                   weight_by_degree: bool = False) -> np.ndarray:
        """Sum ``values[u]`` (optionally ``/deg(u)``) over every
        neighbour u of each vertex; returns the per-vertex totals.

        Each partition computes its local partial sums; mirrors then
        push nonzero partials to masters (counted traffic).
        """
        n = self.graph.num_vertices
        contrib = values / np.maximum(self.graph.degrees(), 1) \
            if weight_by_degree else values
        total = np.zeros(n, dtype=np.float64)
        local_t = np.zeros(self.p, dtype=np.float64)
        comm = 0
        for pid in range(self.p):
            t0 = time.perf_counter()
            partial = np.zeros(n, dtype=np.float64)
            src, dst = self.local_src[pid], self.local_dst[pid]
            np.add.at(partial, dst, contrib[src])
            np.add.at(partial, src, contrib[dst])
            total += partial
            local_t[pid] += time.perf_counter() - t0
            # Mirrors with a nonzero partial push one value to the master.
            pushed = self.covered[pid][
                (partial[self.covered[pid]] != 0.0)
                & (self.master[self.covered[pid]] != pid)]
            comm += len(pushed) * _VALUE_BYTES
        stats.comm_bytes += comm
        stats.local_seconds += local_t
        stats.elapsed_seconds += float(local_t.max()) if self.p else 0.0
        return total

    def gather_min(self, values: np.ndarray, stats: AppRunStats,
                   active: np.ndarray, offset: float = 0.0) -> np.ndarray:
        """Min over neighbours of ``values[u] + offset`` restricted to
        active source vertices; inactive-only neighbourhoods yield inf.

        The primitive behind SSSP (offset=1 hop cost) and WCC label
        minimisation (offset=0, labels as float values).
        """
        n = self.graph.num_vertices
        best = np.full(n, np.inf, dtype=np.float64)
        local_t = np.zeros(self.p, dtype=np.float64)
        comm = 0
        for pid in range(self.p):
            t0 = time.perf_counter()
            src, dst = self.local_src[pid], self.local_dst[pid]
            partial = np.full(n, np.inf, dtype=np.float64)
            mask = active[src]
            if mask.any():
                np.minimum.at(partial, dst[mask], values[src[mask]] + offset)
            mask = active[dst]
            if mask.any():
                np.minimum.at(partial, src[mask], values[dst[mask]] + offset)
            np.minimum(best, partial, out=best)
            local_t[pid] += time.perf_counter() - t0
            pushed = self.covered[pid][
                np.isfinite(partial[self.covered[pid]])
                & (self.master[self.covered[pid]] != pid)]
            comm += len(pushed) * _VALUE_BYTES
        stats.comm_bytes += comm
        stats.local_seconds += local_t
        stats.elapsed_seconds += float(local_t.max()) if self.p else 0.0
        return best

    # ------------------------------------------------------------------
    # Scatter primitive
    # ------------------------------------------------------------------
    def scatter_changed(self, changed_mask: np.ndarray,
                        stats: AppRunStats) -> None:
        """Masters broadcast new values of changed vertices to mirrors."""
        stats.comm_bytes += int(
            self.mirror_count[changed_mask].sum()) * _VALUE_BYTES

    def finish_superstep(self, stats: AppRunStats) -> None:
        stats.supersteps += 1
