"""Weakly Connected Components over a partitioned graph.

HashMin label propagation: every vertex starts with its own id and
repeatedly adopts the minimum label in its neighbourhood, until no
label changes.  The medium-weight §7.6 workload — traffic shrinks as
labels stabilise.
"""

from __future__ import annotations

import numpy as np

from repro.apps.engine import AppRunStats, DistributedGraphEngine
from repro.partitioners.base import EdgePartition

__all__ = ["wcc"]


def wcc(partition: EdgePartition, max_supersteps: int = 10_000,
        seed: int = 0) -> tuple[np.ndarray, AppRunStats]:
    """Run WCC; returns ``(labels, stats)``.

    Isolated vertices keep their own id as label; components are
    identified by their minimum vertex id.
    """
    engine = DistributedGraphEngine(partition, seed=seed)
    n = partition.graph.num_vertices

    stats = AppRunStats(local_seconds=np.zeros(partition.num_partitions))
    labels = np.arange(n, dtype=np.float64)
    active = np.ones(n, dtype=bool)

    for _ in range(max_supersteps):
        candidate = engine.gather_min(labels, stats, active, offset=0.0)
        improved = candidate < labels
        labels[improved] = candidate[improved]
        engine.scatter_changed(improved, stats)
        engine.finish_superstep(stats)
        active = improved
        if not active.any():
            break
    return labels.astype(np.int64), stats
