"""PageRank over a partitioned graph.

The heaviest §7.6 workload: every vertex contributes every superstep,
so gather+scatter traffic is proportional to the total replica count —
which is why the paper sees the largest partitioning-quality effect
here.  Undirected edges are treated as a pair of directed links, the
standard convention for PageRank on undirected evaluation graphs.
"""

from __future__ import annotations

import numpy as np

from repro.apps.engine import AppRunStats, DistributedGraphEngine
from repro.partitioners.base import EdgePartition

__all__ = ["pagerank"]


def pagerank(partition: EdgePartition, iterations: int = 20,
             damping: float = 0.85, seed: int = 0
             ) -> tuple[np.ndarray, AppRunStats]:
    """Run ``iterations`` synchronous PageRank steps.

    Returns ``(ranks, stats)``; ranks sum to ~1 over non-dangling
    treatment (dangling mass is redistributed uniformly).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    engine = DistributedGraphEngine(partition, seed=seed)
    n = partition.graph.num_vertices
    degrees = partition.graph.degrees()

    stats = AppRunStats(local_seconds=np.zeros(partition.num_partitions))
    ranks = np.full(n, 1.0 / max(n, 1), dtype=np.float64)
    all_vertices = np.ones(n, dtype=bool)

    for _ in range(iterations):
        sums = engine.gather_sum(ranks, stats, weight_by_degree=True)
        dangling = ranks[degrees == 0].sum()
        ranks = ((1.0 - damping) / n
                 + damping * (sums + dangling / n))
        engine.scatter_changed(all_vertices, stats)
        engine.finish_superstep(stats)
    return ranks, stats
