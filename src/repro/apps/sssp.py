"""Single-Source Shortest Path over a partitioned graph.

Unit edge weights (the evaluation graphs are unweighted); frontier-
driven Bellman–Ford, the lightest of the three §7.6 workloads: only
frontier vertices generate traffic, so the communication advantage of
a good partitioning is smallest here — exactly the paper's observation.
"""

from __future__ import annotations

import numpy as np

from repro.apps.engine import AppRunStats, DistributedGraphEngine
from repro.partitioners.base import EdgePartition

__all__ = ["sssp"]


def sssp(partition: EdgePartition, source: int = 0,
         max_supersteps: int = 10_000, seed: int = 0
         ) -> tuple[np.ndarray, AppRunStats]:
    """Run SSSP from ``source``; returns ``(distances, stats)``.

    Unreached vertices keep distance ``inf``.
    """
    engine = DistributedGraphEngine(partition, seed=seed)
    n = partition.graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")

    stats = AppRunStats(local_seconds=np.zeros(partition.num_partitions))
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    active = np.zeros(n, dtype=bool)
    active[source] = True

    for _ in range(max_supersteps):
        candidate = engine.gather_min(dist, stats, active, offset=1.0)
        improved = candidate < dist
        dist[improved] = candidate[improved]
        engine.scatter_changed(improved, stats)
        engine.finish_superstep(stats)
        active = improved
        if not active.any():
            break
    return dist, stats
