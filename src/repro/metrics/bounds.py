"""Theoretical bounds from §6 of the paper.

Three groups of results are implemented:

* **Theorem 1** — the replication-factor upper bound of Distributed NE
  on arbitrary graphs: ``RF <= (|E| + |V| + |P|) / |V|``.
* **Table 1** — expected upper bounds on power-law graphs with the
  Clauset et al. degree model ``Pr[d] = d^-alpha / zeta(alpha)``
  (minimum degree 1):

  - Distributed NE: ``E[UB] ~= E[|E|/|V|] + 1
    = zeta(alpha-1) / (2 zeta(alpha)) + 1`` — reproduces the paper's
    row exactly.
  - Random (1D hash), Grid (2D hash), DBH: the formulas of Xie et
    al. [49].  Two evaluation models are provided.  ``model="pareto-mean"``
    plugs the continuous Pareto mean degree ``m = (alpha-1)/(alpha-2)``
    into the closed forms, which is how the paper's Random row was
    evidently produced (it matches to ~1%; the paper does not show its
    arithmetic).  ``model="discrete"`` takes the exact expectation over
    the truncated discrete zeta pmf — tighter, and useful for checking
    the formulas against simulated hash partitioners.

* **Theorem 3** — the per-computing-unit local time bound
  ``O(d |E| (|P| + d) / (n |P|))``.

All discrete power-law expectations truncate the degree support at
``max_degree`` (default 10^6); with ``alpha > 2`` the neglected tail is
below 1e-6 of the total mass.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "theorem1_upper_bound",
    "theorem2_construction_rf",
    "theorem3_local_time_bound",
    "riemann_zeta",
    "powerlaw_degree_pmf",
    "dne_expected_bound_powerlaw",
    "random_expected_bound_powerlaw",
    "grid_expected_bound_powerlaw",
    "dbh_expected_bound_powerlaw",
    "table1_rows",
]

_DEFAULT_MAX_DEGREE = 1_000_000


def theorem1_upper_bound(num_vertices: int, num_edges: int,
                         num_partitions: int) -> float:
    """Theorem 1: ``RF <= (|E| + |V| + |P|) / |V|``."""
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    return (num_edges + num_vertices + num_partitions) / num_vertices


def theorem2_construction_rf(n: int) -> tuple[float, float]:
    """Worst-case RF and UB for the ring+complete construction.

    For K_n plus a ring of ``n(n-1)/2`` vertices partitioned into
    ``|P| = n(n-1)/2`` parts, the adversarial schedule in the Theorem 2
    proof yields ``RF = 2n(n-1)/|V|`` against
    ``UB = (2n(n-1) + n)/|V|``; their ratio tends to 1.

    Returns ``(rf, ub)``.
    """
    if n < 3:
        raise ValueError("construction needs n >= 3")
    num_vertices = n * (n - 1) // 2 + n
    rf = 2.0 * n * (n - 1) / num_vertices
    ub = (2.0 * n * (n - 1) + n) / num_vertices
    return rf, ub


def theorem3_local_time_bound(max_degree: int, num_edges: int,
                              num_partitions: int, num_units: int) -> float:
    """Theorem 3: worst-case local work per computing unit.

    ``O(d |E| (|P| + d) / (n |P|))`` — returned without the hidden
    constant; useful for asserting the *scaling* of measured operation
    counts.
    """
    if min(max_degree, num_edges, num_partitions, num_units) <= 0:
        raise ValueError("all arguments must be positive")
    return (max_degree * num_edges * (num_partitions + max_degree)
            / (num_units * num_partitions))


# ---------------------------------------------------------------------------
# Power-law machinery
# ---------------------------------------------------------------------------

def riemann_zeta(s: float, max_terms: int = _DEFAULT_MAX_DEGREE) -> float:
    """Riemann zeta by direct summation plus an integral tail estimate.

    Accurate to ~1e-9 for ``s > 1`` with the default term count; avoids
    a scipy dependency in the core package.
    """
    if s <= 1.0:
        raise ValueError("zeta(s) diverges for s <= 1")
    d = np.arange(1, max_terms + 1, dtype=np.float64)
    head = float(np.sum(d ** (-s)))
    # Euler–Maclaurin tail: integral + half-term correction.
    tail = max_terms ** (1.0 - s) / (s - 1.0) - 0.5 * max_terms ** (-s)
    return head + tail


def powerlaw_degree_pmf(alpha: float,
                        max_degree: int = _DEFAULT_MAX_DEGREE) -> np.ndarray:
    """Truncated pmf of ``Pr[d] = d^-alpha / zeta(alpha)``, d >= 1.

    Index 0 of the returned array corresponds to degree 1.
    """
    if alpha <= 1.0:
        raise ValueError("alpha must be > 1")
    d = np.arange(1, max_degree + 1, dtype=np.float64)
    w = d ** (-alpha)
    return w / w.sum()


def pareto_mean_degree(alpha: float) -> float:
    """Mean of the continuous Pareto power law with minimum degree 1.

    ``E[d] = (alpha - 1) / (alpha - 2)`` for ``alpha > 2`` — the
    evaluation point the paper's Table 1 arithmetic uses.
    """
    if alpha <= 2.0:
        raise ValueError("continuous Pareto mean requires alpha > 2")
    return (alpha - 1.0) / (alpha - 2.0)


def dne_expected_bound_powerlaw(alpha: float,
                                max_degree: int = _DEFAULT_MAX_DEGREE) -> float:
    """Distributed NE's expected Theorem 1 bound on a power-law graph.

    §6: ``E[UB] ~= E[|E|/|V|] + 1 = zeta(alpha-1)/(2 zeta(alpha)) + 1``
    (the |P|/|V| term vanishes for |V| >> |P|).
    """
    return (riemann_zeta(alpha - 1.0, max_degree)
            / (2.0 * riemann_zeta(alpha, max_degree))) + 1.0


def _expect_over_degrees(alpha: float, fn, model: str,
                         max_degree: int) -> float:
    """Evaluate ``E[fn(d)]`` under the chosen degree model.

    ``pareto-mean`` evaluates ``fn`` at the continuous Pareto mean
    (Jensen-style, the paper's apparent method); ``discrete`` takes the
    exact expectation over the truncated zeta pmf.
    """
    if model == "pareto-mean":
        return float(fn(np.float64(pareto_mean_degree(alpha))))
    if model == "discrete":
        pmf = powerlaw_degree_pmf(alpha, max_degree)
        d = np.arange(1, max_degree + 1, dtype=np.float64)
        return float(np.dot(pmf, fn(d)))
    raise ValueError(f"unknown degree model {model!r}")


def random_expected_bound_powerlaw(alpha: float, num_partitions: int,
                                   model: str = "pareto-mean",
                                   max_degree: int = _DEFAULT_MAX_DEGREE) -> float:
    """Expected RF of 1D random edge hashing (Xie et al., Theorem 1).

    Each of a degree-``d`` vertex's edges lands on a uniform partition:
    ``E[R | d] = p (1 - (1 - 1/p)^d)``, averaged over the power law.
    """
    p = float(num_partitions)
    return _expect_over_degrees(
        alpha, lambda d: p * (1.0 - (1.0 - 1.0 / p) ** d), model, max_degree)


def grid_expected_bound_powerlaw(alpha: float, num_partitions: int,
                                 model: str = "pareto-mean",
                                 max_degree: int = _DEFAULT_MAX_DEGREE) -> float:
    """Expected RF of 2D (grid) hashing (Xie et al.).

    A vertex's edges are constrained to its row+column of the
    ``sqrt(p) x sqrt(p)`` grid — ``2 sqrt(p) - 1`` candidate partitions:
    ``E[R | d] = s (1 - (1 - 1/s)^d)`` with ``s = 2 sqrt(p) - 1``.
    """
    s = 2.0 * float(np.sqrt(num_partitions)) - 1.0
    return _expect_over_degrees(
        alpha, lambda d: s * (1.0 - (1.0 - 1.0 / s) ** d), model, max_degree)


def dbh_expected_bound_powerlaw(alpha: float, num_partitions: int,
                                model: str = "pareto-mean",
                                max_degree: int = _DEFAULT_MAX_DEGREE) -> float:
    """Expected RF of degree-based hashing (mean-field, after Xie et al.).

    An edge is hashed by its lower-degree endpoint.  For a degree-``d``
    vertex, each neighbour independently has edge-biased degree
    ``Pr_nb[k] ∝ k Pr[k]``; with probability ``q(d) = Pr_nb[k >= d]``
    the edge is hashed by *this* vertex (landing on its fixed home
    partition), otherwise by the neighbour (landing uniformly)::

        E[R | d] <= (1 - (1 - q)^d)  +  p (1 - (1 - 1/p)^(d (1 - q)))

    This is a mean-field *estimate* rather than the loose closed-form
    upper bound the paper tabulates, so it comes out lower than the
    paper's DBH row (see EXPERIMENTS.md); the empirical DBH partitioner
    in :mod:`repro.partitioners.dbh` is the like-for-like comparison.
    """
    p = float(num_partitions)

    if model == "pareto-mean":
        m = pareto_mean_degree(alpha)
        # Edge-biased Pareto tail: Pr[nb degree >= d] = d^(2 - alpha).
        q = min(1.0, m ** (2.0 - alpha))
        own = 1.0 - (1.0 - q) ** m
        others = p * (1.0 - (1.0 - 1.0 / p) ** (m * (1.0 - q)))
        return own + others

    pmf = powerlaw_degree_pmf(alpha, max_degree)
    d = np.arange(1, max_degree + 1, dtype=np.float64)
    nb = d * pmf
    nb /= nb.sum()
    # tail[i] = Pr_nb[k >= d_i]; ties hash toward this vertex (upper bound).
    tail = np.concatenate([[1.0], 1.0 - np.cumsum(nb)[:-1]])
    q = np.clip(tail, 0.0, 1.0)
    own = 1.0 - (1.0 - q) ** d
    others = p * (1.0 - (1.0 - 1.0 / p) ** (d * (1.0 - q)))
    return float(np.dot(pmf, own + others))


#: The paper's reported Table 1 (256 partitions, alpha = 2.2/2.4/2.6/2.8),
#: kept verbatim so benches can print paper-vs-computed side by side.
PAPER_TABLE1 = {
    "Random (1D-hash)": [5.88, 3.46, 2.64, 2.23],
    "Grid (2D-hash)": [4.82, 3.13, 2.47, 2.13],
    "DBH": [5.54, 3.19, 2.42, 2.05],
    "Distributed NE": [2.88, 2.12, 1.88, 1.75],
}

TABLE1_ALPHAS = (2.2, 2.4, 2.6, 2.8)


def table1_rows(alphas=TABLE1_ALPHAS, num_partitions: int = 256,
                model: str = "pareto-mean",
                max_degree: int = _DEFAULT_MAX_DEGREE) -> dict:
    """Regenerate Table 1: method -> list of bounds over ``alphas``."""
    return {
        "Random (1D-hash)": [
            random_expected_bound_powerlaw(a, num_partitions, model, max_degree)
            for a in alphas],
        "Grid (2D-hash)": [
            grid_expected_bound_powerlaw(a, num_partitions, model, max_degree)
            for a in alphas],
        "DBH": [
            dbh_expected_bound_powerlaw(a, num_partitions, model, max_degree)
            for a in alphas],
        "Distributed NE": [
            dne_expected_bound_powerlaw(a, max_degree) for a in alphas],
    }
