"""Per-partition quality reports.

:func:`partition_report` turns an :class:`EdgePartition` into the full
per-partition breakdown a downstream engine operator would want before
deploying: per-partition edge and vertex counts, replica-only
("mirror") vertex counts, plus the aggregate metrics the paper reports
(RF, EB, VB, vertex cuts).  :func:`format_report` renders it as the
table the CLI's ``inspect`` command prints.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.metrics.quality import (
    partition_edge_counts,
    partition_vertex_counts,
    replication_factor,
    vertex_cut_count,
)

if TYPE_CHECKING:  # avoid a metrics <-> partitioners import cycle
    from repro.partitioners.base import EdgePartition

__all__ = ["PartitionReport", "partition_report", "format_report"]

#: diagnostics only (``repro --log-level DEBUG``); report *output*
#: goes through :func:`format_report`, never the logger
_log = logging.getLogger("repro.metrics.report")


@dataclass(frozen=True)
class PartitionReport:
    """Aggregate + per-partition quality numbers."""

    method: str
    num_partitions: int
    num_vertices: int
    num_edges: int
    replication_factor: float
    vertex_cuts: int
    edge_balance: float
    vertex_balance: float
    #: |E_p| per partition
    edge_counts: np.ndarray = field(repr=False)
    #: |V(E_p)| per partition
    vertex_counts: np.ndarray = field(repr=False)
    #: per partition: vertices that are replicas of a vertex whose
    #: master copy (lowest-id covering partition) lives elsewhere
    mirror_counts: np.ndarray = field(repr=False)


def partition_report(partition: "EdgePartition") -> PartitionReport:
    """Compute a :class:`PartitionReport` for ``partition``."""
    graph = partition.graph
    p = partition.num_partitions
    assignment = partition.assignment

    edge_counts = partition_edge_counts(assignment, p)
    vertex_counts = partition_vertex_counts(graph, assignment, p)

    # Mirror counts: vertex v covers partitions S(v); its "master" is
    # min(S(v)) (the PowerGraph convention is hash-based, any fixed
    # choice gives the same count), every other covering partition
    # holds a mirror.
    mirror_counts = np.zeros(p, dtype=np.int64)
    if graph.num_edges:
        verts = np.concatenate([graph.edges[:, 0], graph.edges[:, 1]])
        parts = np.concatenate([assignment, assignment])
        keys = np.unique(verts * p + parts)
        owners = keys % p
        vertices = keys // p
        # First covering partition of each vertex (keys are sorted, so
        # the first occurrence per vertex is its minimum partition).
        first = np.ones(len(keys), dtype=bool)
        first[1:] = vertices[1:] != vertices[:-1]
        mirror_counts = np.bincount(owners[~first], minlength=p)

    _log.debug("report for %s: P=%d, |V|=%d, |E|=%d",
               partition.method or "<unnamed>", p, graph.num_vertices,
               graph.num_edges)
    mean_edges = edge_counts.mean() if p else 0.0
    mean_vertices = vertex_counts.mean() if p else 0.0
    return PartitionReport(
        method=partition.method,
        num_partitions=p,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        replication_factor=replication_factor(graph, assignment, p),
        vertex_cuts=vertex_cut_count(graph, assignment, p),
        edge_balance=(float(edge_counts.max() / mean_edges)
                      if mean_edges else float("nan")),
        vertex_balance=(float(vertex_counts.max() / mean_vertices)
                        if mean_vertices else float("nan")),
        edge_counts=edge_counts,
        vertex_counts=vertex_counts,
        mirror_counts=mirror_counts.astype(np.int64),
    )


def format_report(report: PartitionReport, max_rows: int = 32) -> str:
    """Render a report as aligned text (used by ``repro inspect``)."""
    lines = [
        f"method={report.method}  P={report.num_partitions}  "
        f"|V|={report.num_vertices}  |E|={report.num_edges}",
        f"replication factor={report.replication_factor:.3f}  "
        f"vertex cuts={report.vertex_cuts}  "
        f"EB={report.edge_balance:.3f}  VB={report.vertex_balance:.3f}",
        f"{'part':>5}  {'edges':>9}  {'vertices':>9}  {'mirrors':>9}",
    ]
    shown = min(report.num_partitions, max_rows)
    for p in range(shown):
        lines.append(f"{p:>5}  {report.edge_counts[p]:>9}  "
                     f"{report.vertex_counts[p]:>9}  "
                     f"{report.mirror_counts[p]:>9}")
    if shown < report.num_partitions:
        lines.append(f"... ({report.num_partitions - shown} more)")
    return "\n".join(lines)
