"""Partition quality metrics and the paper's theoretical bounds.

* :mod:`repro.metrics.quality` — replication factor (Equation 1),
  vertex cut, edge/vertex/workload balance (§7.6 definitions).
* :mod:`repro.metrics.bounds` — Theorem 1's upper bound, the power-law
  expected bounds behind Table 1 (Distributed NE vs the Random / Grid /
  DBH bounds of Xie et al.), and the Theorem 3 cost model.
"""

from repro.metrics.quality import (
    balance,
    edge_balance,
    partition_vertex_counts,
    replication_factor,
    vertex_balance,
    vertex_cut_count,
)
from repro.metrics.report import PartitionReport, format_report, partition_report
from repro.metrics.bounds import (
    dne_expected_bound_powerlaw,
    dbh_expected_bound_powerlaw,
    grid_expected_bound_powerlaw,
    random_expected_bound_powerlaw,
    theorem1_upper_bound,
    theorem3_local_time_bound,
)

__all__ = [
    "replication_factor",
    "vertex_cut_count",
    "partition_vertex_counts",
    "balance",
    "edge_balance",
    "vertex_balance",
    "theorem1_upper_bound",
    "theorem3_local_time_bound",
    "dne_expected_bound_powerlaw",
    "random_expected_bound_powerlaw",
    "grid_expected_bound_powerlaw",
    "dbh_expected_bound_powerlaw",
    "PartitionReport",
    "partition_report",
    "format_report",
]
