"""Quality metrics for edge partitions.

All metrics operate on an *assignment array*: ``assignment[e]`` is the
partition id of canonical edge ``e`` of a :class:`~repro.graph.csr.CSRGraph`
(this is the representation returned by every partitioner in
:mod:`repro.partitioners` and by Distributed NE).

Definitions follow the paper:

* replication factor (Equation 1): ``(1/|V|) * Σ_p |V(E_p)|`` where the
  normaliser counts *vertices with at least one edge* — isolated
  vertices are never replicated and the paper's datasets have none.
* balance (§7.6): ``B({x_p}) = max x_p / mean x_p`` for edge counts
  (EB), covered-vertex counts (VB), and per-partition runtimes (WB).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "partition_vertex_counts",
    "replication_factor",
    "vertex_cut_count",
    "balance",
    "edge_balance",
    "vertex_balance",
    "partition_edge_counts",
    "validate_assignment",
]


def validate_assignment(graph: CSRGraph, assignment: np.ndarray,
                        num_partitions: int) -> None:
    """Raise ``ValueError`` unless ``assignment`` is a proper partition.

    Checks shape, dtype-compatibility, and that every edge has a
    partition id in ``[0, num_partitions)`` — i.e. the subsets are
    disjoint and cover E, which is the definition of edge partitioning
    (§2.1).
    """
    assignment = np.asarray(assignment)
    if assignment.shape != (graph.num_edges,):
        raise ValueError(
            f"assignment must have one entry per edge "
            f"({graph.num_edges}), got shape {assignment.shape}")
    if graph.num_edges == 0:
        return
    if assignment.min() < 0 or assignment.max() >= num_partitions:
        raise ValueError("assignment contains out-of-range partition ids")


def partition_vertex_counts(graph: CSRGraph, assignment: np.ndarray,
                            num_partitions: int) -> np.ndarray:
    """``|V(E_p)|`` for each partition p.

    Computed by deduplicating (vertex, partition) incidences over both
    endpoints of every edge.
    """
    if graph.num_edges == 0:
        return np.zeros(num_partitions, dtype=np.int64)
    assignment = np.asarray(assignment, dtype=np.int64)
    # Pair each endpoint with its edge's partition, dedupe pairs.
    verts = np.concatenate([graph.edges[:, 0], graph.edges[:, 1]])
    parts = np.concatenate([assignment, assignment])
    keys = verts * num_partitions + parts
    unique_keys = np.unique(keys)
    owning = unique_keys % num_partitions
    return np.bincount(owning, minlength=num_partitions).astype(np.int64)


def replication_factor(graph: CSRGraph, assignment: np.ndarray,
                       num_partitions: int) -> float:
    """Equation 1: mean number of partitions each (non-isolated) vertex
    appears in."""
    counts = partition_vertex_counts(graph, assignment, num_partitions)
    covered = _num_covered_vertices(graph)
    if covered == 0:
        return 0.0
    return float(counts.sum()) / covered


def vertex_cut_count(graph: CSRGraph, assignment: np.ndarray,
                     num_partitions: int) -> int:
    """Total number of vertex cuts: ``Σ_v (replicas(v) - 1)``."""
    counts = partition_vertex_counts(graph, assignment, num_partitions)
    return int(counts.sum()) - _num_covered_vertices(graph)


def partition_edge_counts(assignment: np.ndarray,
                          num_partitions: int) -> np.ndarray:
    """``|E_p|`` for each partition p."""
    assignment = np.asarray(assignment, dtype=np.int64)
    return np.bincount(assignment, minlength=num_partitions).astype(np.int64)


def balance(values) -> float:
    """§7.6 balance: ``max(values) / mean(values)``.

    1.0 is perfectly balanced.  Returns ``nan`` if the mean is zero.
    """
    values = np.asarray(values, dtype=np.float64)
    mean = values.mean() if values.size else 0.0
    if mean == 0.0:
        return float("nan")
    return float(values.max() / mean)


def edge_balance(assignment: np.ndarray, num_partitions: int) -> float:
    """EB: balance of per-partition edge counts."""
    return balance(partition_edge_counts(assignment, num_partitions))


def vertex_balance(graph: CSRGraph, assignment: np.ndarray,
                   num_partitions: int) -> float:
    """VB: balance of per-partition covered-vertex counts."""
    return balance(partition_vertex_counts(graph, assignment, num_partitions))


def _num_covered_vertices(graph: CSRGraph) -> int:
    """Vertices with degree >= 1 (|V| in the paper's formulas)."""
    return int(np.count_nonzero(np.diff(graph.indptr)))
