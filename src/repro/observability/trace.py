"""Superstep/phase tracer with Chrome trace-event export.

The tracing half of the observability plane.  A :class:`Tracer`
collects *spans* — named, categorised intervals with structured args —
from the execution backends (one span per superstep) and the DNE
driver loop (one span per phase per iteration, plus a run-level
span).  :meth:`Tracer.to_chrome` renders them as Chrome trace-event
JSON (``{"traceEvents": [...]}``) which loads directly in Perfetto /
``chrome://tracing``; ``repro partition --trace-out FILE`` writes it
and ``repro trace summarize FILE`` prints a per-phase table.

Determinism contract
--------------------
Only wall-clock fields (``ts``/``dur`` and any span arg whose key ends
in ``_seconds``) may differ between runs or backends.
:meth:`Tracer.structure` projects those fields away; the remaining
(name, category, args) sequence is pinned identical across
``simulated``/``threads``/``processes`` for a fixed seed by
``tests/test_observability.py``.  Backend identity is therefore
carried in a metadata event (``"ph": "M"``), not in span args.

The default tracer on every backend is the shared :data:`NULL_TRACER`
(``enabled = False``); instrumentation sites guard on that single
attribute, so tracing-off costs one attribute check per superstep.
"""

from __future__ import annotations

import json
import threading
import time

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "load_trace",
           "summarize"]


class NullTracer:
    """No-op tracer; ``enabled`` is False so call sites skip timing."""

    enabled = False

    def span(self, name, cat="", seconds=0.0, args=None, tid=0):
        pass

    def metadata(self, name, args=None):
        pass

    def to_chrome(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def structure(self) -> list:
        return []


#: shared default tracer — backends carry this as a class attribute
NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans; thread-safe (parallel backends may emit)."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._t0 = time.perf_counter()

    # -- recording -----------------------------------------------------
    def span(self, name, cat="", seconds=0.0, args=None, tid=0):
        """Record a completed interval that ended *now* and lasted
        ``seconds`` (Chrome complete event, ``"ph": "X"``)."""
        now = time.perf_counter() - self._t0
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": round(max(0.0, now - seconds) * 1e6, 3),
            "dur": round(seconds * 1e6, 3),
            "pid": 0,
            "tid": tid,
            "args": dict(args) if args else {},
        }
        with self._lock:
            self._events.append(event)

    def metadata(self, name, args=None):
        """Record a metadata event (``"ph": "M"``) — e.g. the backend
        name; excluded from :meth:`structure` by design."""
        event = {"name": name, "cat": "__metadata", "ph": "M",
                 "ts": 0, "pid": 0, "tid": 0,
                 "args": dict(args) if args else {}}
        with self._lock:
            self._events.append(event)

    # -- export --------------------------------------------------------
    def to_chrome(self) -> dict:
        with self._lock:
            return {"traceEvents": [dict(e) for e in self._events],
                    "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, indent=1)
            fh.write("\n")

    def structure(self) -> list:
        """The deterministic projection of the trace: ``(name, cat,
        tid, sorted non-wall-clock args)`` per complete span, in
        emission order.  Wall clock (``ts``/``dur`` and args ending in
        ``_seconds``) is excluded — the same ignore rule
        ``check_results_drift.py`` applies to bench rows."""
        with self._lock:
            return [(e["name"], e["cat"], e["tid"],
                     tuple(sorted((k, v) for k, v in e["args"].items()
                                  if not k.endswith("_seconds"))))
                    for e in self._events if e["ph"] == "X"]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# ----------------------------------------------------------------------
# offline helpers (``repro trace summarize``)
# ----------------------------------------------------------------------
def load_trace(path) -> list[dict]:
    """Load the event list from a Chrome trace-event JSON file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", doc) if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace-event file")
    return events

def summarize(events) -> list[dict]:
    """Aggregate complete spans by (cat, name): count, total wall
    time, and summed executed/skipped step counts where present."""
    groups: dict = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        key = (event.get("cat", ""), event.get("name", ""))
        row = groups.get(key)
        if row is None:
            row = groups[key] = {"cat": key[0], "name": key[1],
                                 "count": 0, "total_ms": 0.0,
                                 "executed": 0, "skipped": 0}
        row["count"] += 1
        row["total_ms"] += event.get("dur", 0) / 1e3
        args = event.get("args") or {}
        row["executed"] += int(args.get("executed", 0))
        row["skipped"] += int(args.get("skipped", 0))
    rows = sorted(groups.values(),
                  key=lambda r: (-r["total_ms"], r["cat"], r["name"]))
    for row in rows:
        row["total_ms"] = round(row["total_ms"], 3)
    return rows
