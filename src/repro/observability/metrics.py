"""Metrics registry: counters, gauges, bounded histograms.

The telemetry half of the observability plane (the other half is
:mod:`repro.observability.trace`).  A :class:`MetricsRegistry` holds
three families of named, optionally-labelled series:

* **counters** — monotonically increasing totals (messages sent,
  checkpoint writes, worker respawns, HTTP requests);
* **gauges** — last-write-wins values (peak resident bytes, cache
  occupancy);
* **histograms** — bounded bucket counts over *fixed* edges plus a
  running sum/count (checkpoint write latency, HTTP request latency).
  Buckets are fixed at first observation of a series, so memory is
  O(series × buckets) no matter how long the process lives.

:meth:`MetricsRegistry.render_prometheus` emits the classic Prometheus
text exposition format (``# TYPE`` comments, cumulative ``_bucket``
lines with ``le`` labels, ``_sum``/``_count``), which is what
``GET /metrics`` on the serving API returns.

Zero-cost-when-off contract
---------------------------
The process-global registry returned by :func:`get_registry` defaults
to a :class:`NullMetricsRegistry` whose recording methods are no-ops
and whose ``enabled`` flag is ``False`` — instrumentation sites either
call the no-ops (rare events: respawns, checkpoint writes) or guard
whole blocks with ``registry.enabled`` (per-run summaries).  Metrics
are **never** consulted by any algorithm: enabling them cannot change
assignments, ops counters, or accounting totals (pinned by
``tests/test_observability.py``).
"""

from __future__ import annotations

import re
import threading

__all__ = ["MetricsRegistry", "NullMetricsRegistry", "DEFAULT_BUCKETS",
           "get_registry", "enable_metrics", "disable_metrics"]

#: default histogram bucket upper bounds, in seconds — spans the
#: microsecond-to-minutes range the repo's latencies actually occupy
DEFAULT_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1,
                   0.5, 1.0, 5.0, 30.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_key(labels: dict) -> tuple:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _render_labels(key: tuple, extra: tuple = ()) -> str:
    pairs = [f'{k}="{_escape(v)}"' for k, v in (*key, *extra)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class NullMetricsRegistry:
    """The default no-op registry: recording costs one method call.

    ``enabled`` is ``False`` so hot call sites can skip whole
    instrumentation blocks with a single attribute check.
    """

    enabled = False

    def counter_inc(self, name: str, value: float = 1, **labels) -> None:
        pass

    def gauge_set(self, name: str, value: float, **labels) -> None:
        pass

    def observe(self, name: str, value: float, buckets=None,
                **labels) -> None:
        pass

    def counter_total(self, name: str) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def render_prometheus(self) -> str:
        return ""


class MetricsRegistry:
    """Thread-safe in-process metrics store.

    Series are identified by ``(name, sorted-label-items)``.  Names
    must match the Prometheus identifier grammar (validated once per
    name); by convention counters end in ``_total`` and latency
    histograms in ``_seconds``.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        #: (name, labels) -> [bucket_counts (len(edges) + 1), sum, count]
        self._hists: dict = {}
        #: name -> fixed bucket edges (ascending)
        self._hist_edges: dict = {}
        self._valid_names: set = set()

    # -- recording -----------------------------------------------------
    def _check_name(self, name: str, labels: dict) -> None:
        if name in self._valid_names:
            return
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._valid_names.add(name)

    def counter_inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` (>= 0) to a counter series."""
        if value < 0:
            raise ValueError("counters only go up")
        self._check_name(name, labels)
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge_set(self, name: str, value: float, **labels) -> None:
        self._check_name(name, labels)
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, buckets=None,
                **labels) -> None:
        """Record one observation into a bounded histogram.

        ``buckets`` (ascending upper bounds) is honoured on the first
        observation of ``name`` and fixed thereafter — mixed edges
        within one name would render an inconsistent exposition.
        """
        self._check_name(name, labels)
        key = (name, _label_key(labels))
        with self._lock:
            edges = self._hist_edges.get(name)
            if edges is None:
                edges = tuple(buckets) if buckets is not None \
                    else DEFAULT_BUCKETS
                if list(edges) != sorted(edges) or not edges:
                    raise ValueError("bucket edges must be ascending")
                self._hist_edges[name] = edges
            hist = self._hists.get(key)
            if hist is None:
                hist = [[0] * (len(edges) + 1), 0.0, 0]
                self._hists[key] = hist
            slot = len(edges)  # +Inf overflow bucket
            for i, edge in enumerate(edges):
                if value <= edge:
                    slot = i
                    break
            hist[0][slot] += 1
            hist[1] += value
            hist[2] += 1

    # -- reading -------------------------------------------------------
    def counter_total(self, name: str) -> float:
        """Sum of a counter across all of its label sets."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items()
                       if n == name)

    def snapshot(self) -> dict:
        """Plain-dict copy (keys ``name{label="v",...}``) for tests."""
        def flat(series):
            return {name + _render_labels(key): value
                    for (name, key), value in series.items()}
        with self._lock:
            return {"counters": flat(self._counters),
                    "gauges": flat(self._gauges),
                    "histograms": {
                        name + _render_labels(key): {
                            "count": hist[2], "sum": hist[1]}
                        for (name, key), hist in self._hists.items()}}

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition format 0.0.4."""
        lines = []
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            hists = {key: ([*h[0]], h[1], h[2])
                     for key, h in self._hists.items()}
            hist_edges = dict(self._hist_edges)
        for kind, series in (("counter", counters), ("gauge", gauges)):
            for name in sorted({n for n, _ in series}):
                lines.append(f"# TYPE {name} {kind}")
                for (n, key), value in sorted(series.items()):
                    if n == name:
                        lines.append(f"{name}{_render_labels(key)} "
                                     f"{_format_value(value)}")
        for name in sorted({n for n, _ in hists}):
            edges = hist_edges[name]
            lines.append(f"# TYPE {name} histogram")
            for (n, key), (buckets, total, count) in sorted(hists.items()):
                if n != name:
                    continue
                running = 0
                for edge, bucket in zip(edges, buckets):
                    running += bucket
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(key, (('le', repr(float(edge))),))}"
                        f" {running}")
                lines.append(
                    f"{name}_bucket"
                    f"{_render_labels(key, (('le', '+Inf'),))} {count}")
                lines.append(f"{name}_sum{_render_labels(key)} "
                             f"{_format_value(total)}")
                lines.append(f"{name}_count{_render_labels(key)} {count}")
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# process-global registry
# ----------------------------------------------------------------------
_NULL = NullMetricsRegistry()
_registry = _NULL


def get_registry():
    """The process-global registry (a shared no-op until enabled)."""
    return _registry


def enable_metrics(registry: MetricsRegistry | None = None):
    """Install (and return) a live process-global registry.

    Idempotent when already enabled: with no explicit ``registry`` the
    existing live registry is kept, so independent consumers (the
    serving API, a bench harness) can all call this and share one
    registry.
    """
    global _registry
    if registry is not None:
        _registry = registry
    elif not _registry.enabled:
        _registry = MetricsRegistry()
    return _registry


def disable_metrics() -> None:
    """Swap the shared no-op registry back in (drops recorded data)."""
    global _registry
    _registry = _NULL
