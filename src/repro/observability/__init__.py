"""Observability plane: metrics registry + superstep tracer.

Both halves default to shared no-op implementations, so the rest of
the repo can instrument unconditionally without paying for telemetry
nobody asked for — and, more importantly, without being able to
perturb results (the neutrality pin lives in
``tests/test_observability.py``).
"""

from repro.observability.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                                         NullMetricsRegistry,
                                         disable_metrics, enable_metrics,
                                         get_registry)
from repro.observability.trace import (NULL_TRACER, NullTracer, Tracer,
                                       load_trace, summarize)

__all__ = [
    "MetricsRegistry", "NullMetricsRegistry", "DEFAULT_BUCKETS",
    "get_registry", "enable_metrics", "disable_metrics",
    "Tracer", "NullTracer", "NULL_TRACER", "load_trace", "summarize",
]
