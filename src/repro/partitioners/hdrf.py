"""HDRF — High-Degree (are) Replicated First streaming partitioner [39].

Petroni et al. (CIKM'15).  Each streamed edge ``(u, v)`` is scored
against every partition::

    C(u, v, p) = C_rep(u, v, p) + lam * C_bal(p)

    C_rep = g(u, p) + g(v, p)
    g(w, p) = (1 + (1 - theta(w)))   if p in replicas(w) else 0
    theta(w) = d(w) / (d(u) + d(v))  (normalised degree within the edge)

    C_bal = (maxload - load(p)) / (eps + maxload - minload)

so placing the edge with an already-replicated *low*-degree endpoint
scores higher than with a high-degree one — high-degree vertices get
replicated first, which suits power-law graphs.  ``lam`` (paper default
1.0) weights balance against replication.

Degrees are the true final degrees (the "offline degree" variant);
HDRF's original also supports incremental degree estimates, selectable
with ``use_partial_degrees=True``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.base import EdgePartition, Partitioner

__all__ = ["HDRFPartitioner"]


class HDRFPartitioner(Partitioner):
    """Streaming HDRF with the paper-default scoring."""

    name = "hdrf"

    def __init__(self, num_partitions: int, seed: int = 0,
                 lam: float = 1.0, eps: float = 1.0,
                 shuffle: bool = True, use_partial_degrees: bool = False):
        super().__init__(num_partitions, seed)
        self.lam = lam
        self.eps = eps
        self.shuffle = shuffle
        self.use_partial_degrees = use_partial_degrees

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        order = np.arange(graph.num_edges)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            order = rng.permutation(order)

        if self.use_partial_degrees:
            degrees = np.zeros(graph.num_vertices, dtype=np.int64)
        else:
            degrees = graph.degrees().astype(np.int64)

        # replicas[v] is a bitmask over partitions (p <= 64 in all paper
        # experiments; fall back to python sets above that).
        use_bitmask = p <= 64
        if use_bitmask:
            replicas = np.zeros(graph.num_vertices, dtype=np.uint64)
        else:
            replica_sets = [set() for _ in range(graph.num_vertices)]
        loads = np.zeros(p, dtype=np.int64)
        assignment = np.empty(graph.num_edges, dtype=np.int64)
        part_range = np.arange(p)

        for eid in order:
            u, v = graph.edges[eid]
            if self.use_partial_degrees:
                degrees[u] += 1
                degrees[v] += 1
            du, dv = degrees[u], degrees[v]
            total = du + dv
            theta_u = du / total if total else 0.5
            theta_v = dv / total if total else 0.5

            if use_bitmask:
                in_u = (replicas[u] >> part_range.astype(np.uint64)) & np.uint64(1)
                in_v = (replicas[v] >> part_range.astype(np.uint64)) & np.uint64(1)
            else:
                in_u = np.array([q in replica_sets[u] for q in part_range])
                in_v = np.array([q in replica_sets[v] for q in part_range])

            g_u = in_u * (1.0 + (1.0 - theta_u))
            g_v = in_v * (1.0 + (1.0 - theta_v))
            maxload, minload = loads.max(), loads.min()
            c_bal = (maxload - loads) / (self.eps + maxload - minload)
            score = g_u + g_v + self.lam * c_bal
            target = int(np.argmax(score))

            assignment[eid] = target
            loads[target] += 1
            if use_bitmask:
                bit = np.uint64(1) << np.uint64(target)
                replicas[u] |= bit
                replicas[v] |= bit
            else:
                replica_sets[u].add(target)
                replica_sets[v].add(target)

        return EdgePartition(graph, p, assignment, method=self.name,
                             extra={"lambda": self.lam})
