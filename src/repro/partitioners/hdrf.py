"""HDRF — High-Degree (are) Replicated First streaming partitioner [39].

Petroni et al. (CIKM'15).  Each streamed edge ``(u, v)`` is scored
against every partition::

    C(u, v, p) = C_rep(u, v, p) + lam * C_bal(p)

    C_rep = g(u, p) + g(v, p)
    g(w, p) = (1 + (1 - theta(w)))   if p in replicas(w) else 0
    theta(w) = d(w) / (d(u) + d(v))  (normalised degree within the edge)

    C_bal = (maxload - load(p)) / (eps + maxload - minload)

so placing the edge with an already-replicated *low*-degree endpoint
scores higher than with a high-degree one — high-degree vertices get
replicated first, which suits power-law graphs.  ``lam`` (paper default
1.0) weights balance against replication.

Degrees are the true final degrees (the "offline degree" variant);
HDRF's original also supports incremental degree estimates, selectable
with ``use_partial_degrees=True``.

Kernels: ``"vectorized"`` (default) runs the chunked scoring driver of
:mod:`repro.core.streaming` — whole windows of edges scored against all
|P| partitions in one pass, replica membership in the shared
dense/packed-bitset backends; ``"python"`` is the per-edge reference
loop below, kept verbatim.  ``tests/test_streaming_equivalence.py``
pins the pair bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.core.streaming import (TAIL_BLOCK, EdgeStreamScorer,
                                  StreamingState, block_tail_hints,
                                  run_chunked_stream)
from repro.graph.csr import CSRGraph
from repro.partitioners.base import EdgePartition, StreamingEdgePartitioner

__all__ = ["HDRFPartitioner"]


class _HDRFScorer(EdgeStreamScorer):
    """Rowwise form of the reference's per-edge HDRF score.

    The replication term ``g_u + g_v`` depends only on membership rows
    and degrees — stable across a collision-free window — and is hoisted
    into the window aux; only the balance term tracks the running loads.
    """

    def __init__(self, state, u, v, degrees, lam, eps, partial):
        super().__init__(state, u, v)
        self.degrees = degrees
        self.lam = lam
        self.eps = eps
        self.partial = partial

    def window_static(self, sl):
        u, v = self.u[sl], self.v[sl]
        du = self.degrees[u]
        dv = self.degrees[v]
        if self.partial:
            # The reference bumps both endpoint degrees *before*
            # scoring; a row whose endpoints were not touched earlier
            # in the window sees exactly "+1 over the pre-window
            # count" (touched rows re-derive in the tail walker).
            du = du + 1
            dv = dv + 1
        total = du + dv
        safe = np.where(total > 0, total, 1)
        theta_u = np.where(total > 0, du / safe, 0.5)
        theta_v = np.where(total > 0, dv / safe, 0.5)
        fu = 1.0 + (1.0 - theta_u)
        fv = 1.0 + (1.0 - theta_v)
        in_u = self.state.member_rows(u)
        in_v = self.state.member_rows(v)
        return [in_u * fu[:, None] + in_v * fv[:, None], fu, fv]

    def pick(self, aux, rows, loads_mat):
        maxload = loads_mat.max(axis=1, keepdims=True)
        minload = loads_mat.min(axis=1, keepdims=True)
        c_bal = (maxload - loads_mat) / (self.eps + maxload - minload)
        return (aux[0][rows] + self.lam * c_bal).argmax(axis=1)

    def tail_walk(self, sl, aux, start, stop):
        G, fu, fv = aux
        us, vs = self.u[sl], self.v[sl]
        state = self.state
        member = state.member
        loads = state.loads                      # live, walker-committed
        degrees = self.degrees
        lam, eps, partial = self.lam, self.eps, self.partial
        changed = self._changed
        maxload = int(loads.max())
        minload = int(loads.min())
        at_min = int((loads == minload).sum())
        # Maintained lam * C_bal vector: between max/min shifts only the
        # placed entry changes, and scalar `-`/`/`/`*` on float64 are
        # correctly rounded (unlike ``**``), so entry updates are
        # bit-identical to the reference's whole-vector expression
        # ``lam * (max - loads) / (eps + max - min)``.
        denom = eps + maxload - minload
        lam_cbal = lam * ((maxload - loads) / denom)
        buf = np.empty(len(loads), dtype=np.float64)
        out = np.empty(stop - start, dtype=np.int64)
        # Batched tie-break: between max/min shifts a placement only
        # lowers the placed entry's lam_cbal (lam >= 0), so a
        # block-start hint stays exact for fresh rows whose hinted
        # partition was not placed into since the snapshot; a shift
        # rebuilds the whole vector and invalidates the block's
        # remaining hints (see block_tail_hints).
        hints_ok = lam >= 0
        k = start
        while k < stop:
            end = min(stop, k + TAIL_BLOCK)
            if hints_ok:
                barg = block_tail_hints(G[k:end], lam_cbal)
            touched: set = set()
            invalid = False
            for k2 in range(k, end):
                uk = int(us[k2])
                vk = int(vs[k2])
                if partial:
                    degrees[uk] += 1
                    degrees[vk] += 1
                fresh = uk not in changed and vk not in changed
                if not fresh:
                    if partial:
                        du, dv = degrees[uk], degrees[vk]
                        total = du + dv
                        theta_u = du / total if total else 0.5
                        theta_v = dv / total if total else 0.5
                        fu_k = 1.0 + (1.0 - theta_u)
                        fv_k = 1.0 + (1.0 - theta_v)
                    else:
                        fu_k, fv_k = fu[k2], fv[k2]
                    rows = member.rows_bool(np.array([uk, vk]))
                    G[k2] = rows[0] * fu_k + rows[1] * fv_k
                if (hints_ok and fresh and not invalid
                        and int(barg[k2 - k]) not in touched):
                    t = int(barg[k2 - k])
                else:
                    np.add(G[k2], lam_cbal, out=buf)
                    t = int(np.argmax(buf))
                out[k2 - start] = t
                loads[t] += 1
                lt = int(loads[t])
                shifted = False
                if lt > maxload:
                    maxload = lt
                    shifted = True
                if lt - 1 == minload:
                    at_min -= 1
                    if at_min == 0:
                        minload += 1
                        at_min = int((loads == minload).sum())
                        shifted = True
                if shifted:
                    denom = eps + maxload - minload
                    np.subtract(maxload, loads, out=buf, casting="unsafe")
                    buf /= denom
                    np.multiply(buf, lam, out=lam_cbal)
                    invalid = True
                else:
                    lam_cbal[t] = lam * ((maxload - lt) / denom)
                    touched.add(t)
                if not member.get_bit(uk, t):
                    member.set_bit(uk, t)
                    changed.add(uk)
                if not member.get_bit(vk, t):
                    member.set_bit(vk, t)
                    changed.add(vk)
                if partial:
                    changed.add(uk)
                    changed.add(vk)
            k = end
        return out

    def apply(self, u, v, targets):
        if self.partial:
            self.degrees[u] += 1
            self.degrees[v] += 1
            # Partial-degree rows also go stale on plain re-occurrence.
            self._changed.update(u.tolist())
            self._changed.update(v.tolist())


class HDRFPartitioner(StreamingEdgePartitioner):
    """Streaming HDRF with the paper-default scoring."""

    name = "hdrf"

    def __init__(self, num_partitions: int, seed: int = 0,
                 lam: float = 1.0, eps: float = 1.0,
                 shuffle: bool = True, use_partial_degrees: bool = False,
                 kernel: str = "vectorized"):
        super().__init__(num_partitions, seed, shuffle=shuffle,
                         kernel=kernel)
        self.lam = lam
        self.eps = eps
        self.use_partial_degrees = use_partial_degrees

    def _initial_degrees(self, graph: CSRGraph) -> np.ndarray:
        if self.use_partial_degrees:
            return np.zeros(graph.num_vertices, dtype=np.int64)
        return graph.degrees().astype(np.int64)

    def _result(self, graph: CSRGraph, assignment: np.ndarray
                ) -> EdgePartition:
        return EdgePartition(graph, self.num_partitions, assignment,
                             method=self.name,
                             extra={"lambda": self.lam})

    def _partition_vectorized(self, graph: CSRGraph) -> EdgePartition:
        order = self.stream_order(graph.num_edges)
        state = StreamingState(graph.num_vertices, self.num_partitions)
        scorer = _HDRFScorer(state,
                             graph.edges[order, 0], graph.edges[order, 1],
                             self._initial_degrees(graph),
                             self.lam, self.eps, self.use_partial_degrees)
        assignment = np.empty(graph.num_edges, dtype=np.int64)
        assignment[order] = run_chunked_stream(scorer)
        return self._result(graph, assignment)

    def _partition_python(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        order = self.stream_order(graph.num_edges)
        degrees = self._initial_degrees(graph)

        # replicas[v] is a bitmask over partitions (p <= 64 in all paper
        # experiments; fall back to python sets above that).
        use_bitmask = p <= 64
        if use_bitmask:
            replicas = np.zeros(graph.num_vertices, dtype=np.uint64)
        else:
            replica_sets = [set() for _ in range(graph.num_vertices)]
        loads = np.zeros(p, dtype=np.int64)
        assignment = np.empty(graph.num_edges, dtype=np.int64)
        part_range = np.arange(p)

        for eid in order:
            u, v = graph.edges[eid]
            if self.use_partial_degrees:
                degrees[u] += 1
                degrees[v] += 1
            du, dv = degrees[u], degrees[v]
            total = du + dv
            theta_u = du / total if total else 0.5
            theta_v = dv / total if total else 0.5

            if use_bitmask:
                in_u = (replicas[u] >> part_range.astype(np.uint64)) & np.uint64(1)
                in_v = (replicas[v] >> part_range.astype(np.uint64)) & np.uint64(1)
            else:
                in_u = np.array([q in replica_sets[u] for q in part_range])
                in_v = np.array([q in replica_sets[v] for q in part_range])

            g_u = in_u * (1.0 + (1.0 - theta_u))
            g_v = in_v * (1.0 + (1.0 - theta_v))
            maxload, minload = loads.max(), loads.min()
            c_bal = (maxload - loads) / (self.eps + maxload - minload)
            score = g_u + g_v + self.lam * c_bal
            target = int(np.argmax(score))

            assignment[eid] = target
            loads[target] += 1
            if use_bitmask:
                bit = np.uint64(1) << np.uint64(target)
                replicas[u] |= bit
                replicas[v] |= bit
            else:
                replica_sets[u].add(target)
                replica_sets[v].add(target)

        return self._result(graph, assignment)
