"""Hash-based edge partitioners: Random (1D), Grid (2D), DBH, Hybrid.

These are the scalable/low-quality baselines of §2.2 and §7:

* :class:`RandomPartitioner` — 1D hash: each edge uniformly at random.
* :class:`GridPartitioner` — 2D hash: partitions arranged in a
  ``r x c`` grid; an edge goes to the cell addressed by its endpoint
  hashes, which confines each vertex's replicas to one row + column.
  This is also Distributed NE's *initial placement* (§4).
* :class:`DBHPartitioner` — degree-based hashing (Xie et al. [49]):
  hash each edge by its lower-degree endpoint so low-degree vertices
  stay whole and high-degree vertices absorb the cuts.
* :class:`HybridHashPartitioner` — PowerLyra's Hybrid [13]: edges are
  grouped by (a chosen) endpoint; groups of low-degree vertices stay on
  the vertex's hash partition, while edges incident to high-degree
  vertices are scattered by the other endpoint's hash.

All hashes are ``splitmix64``-style integer mixes, deterministic in the
partitioner seed.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.base import EdgePartition, Partitioner

__all__ = [
    "splitmix64",
    "RandomPartitioner",
    "GridPartitioner",
    "DBHPartitioner",
    "HybridHashPartitioner",
]


def splitmix64(x: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorised splitmix64 finaliser — a high-quality integer mix.

    Operates on (copies of) int64/uint64 arrays; the seed perturbs the
    stream so different runs decorrelate.
    """
    with np.errstate(over="ignore"):  # wraparound is the point of the mix
        z = (np.asarray(x, dtype=np.uint64) + np.uint64(0x9E3779B97F4A7C15)
             + np.uint64(seed) * np.uint64(0xBF58476D1CE4E5B9))
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


class RandomPartitioner(Partitioner):
    """1D hash: every edge assigned to a uniform random partition."""

    name = "random"

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        h = splitmix64(np.arange(graph.num_edges), seed=self.seed)
        assignment = (h % np.uint64(self.num_partitions)).astype(np.int64)
        return EdgePartition(graph, self.num_partitions, assignment,
                             method=self.name)


def grid_shape(num_partitions: int) -> tuple[int, int]:
    """Factor ``num_partitions`` into the most-square grid ``r x c``."""
    r = int(np.sqrt(num_partitions))
    while num_partitions % r:
        r -= 1
    return r, num_partitions // r


class GridPartitioner(Partitioner):
    """2D hash (Grid / "2D-Random" in the paper).

    Partitions form an ``r x c`` grid; edge ``(u, v)`` goes to cell
    ``(h(u) mod r, h(v) mod c)``.  Every vertex's edges then live in
    one grid row plus one grid column, bounding its replicas by
    ``r + c - 1`` — the property §4 exploits for the initial placement
    (replica locations are computable from the vertex id alone).
    """

    name = "grid"

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        rows, cols = grid_shape(self.num_partitions)
        hu = splitmix64(graph.edges[:, 0], seed=self.seed)
        hv = splitmix64(graph.edges[:, 1], seed=self.seed + 1)
        r = (hu % np.uint64(rows)).astype(np.int64)
        c = (hv % np.uint64(cols)).astype(np.int64)
        assignment = r * cols + c
        return EdgePartition(graph, self.num_partitions, assignment,
                             method=self.name)


class DBHPartitioner(Partitioner):
    """Degree-based hashing: hash each edge by its lower-degree endpoint.

    Ties break toward the smaller vertex id, matching the common
    implementation (and keeping the assignment deterministic).
    """

    name = "dbh"

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        deg = graph.degrees()
        u, v = graph.edges[:, 0], graph.edges[:, 1]
        du, dv = deg[u], deg[v]
        # Canonical edges have u < v, so preferring u on ties is the
        # smaller-id rule.
        pick_u = du <= dv
        key = np.where(pick_u, u, v)
        h = splitmix64(key, seed=self.seed)
        assignment = (h % np.uint64(self.num_partitions)).astype(np.int64)
        return EdgePartition(graph, self.num_partitions, assignment,
                             method=self.name)


class HybridHashPartitioner(Partitioner):
    """PowerLyra's Hybrid hash [13].

    Edges are grouped by their (canonical) grouping endpoint.  If the
    grouping endpoint's degree is below ``threshold`` the whole group
    follows that vertex's hash (low-degree vertices are never cut);
    otherwise each edge is scattered by the *other* endpoint's hash
    (high-degree vertices absorb the replication, like DBH but with a
    hard threshold — PowerLyra's default is 100).
    """

    name = "hybrid"

    def __init__(self, num_partitions: int, seed: int = 0,
                 threshold: int = 100):
        super().__init__(num_partitions, seed)
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        deg = graph.degrees()
        u, v = graph.edges[:, 0], graph.edges[:, 1]
        # Group by the lower-degree endpoint (ties toward u, as in DBH).
        group_by_u = deg[u] <= deg[v]
        group = np.where(group_by_u, u, v)
        other = np.where(group_by_u, v, u)
        low_degree = deg[group] < self.threshold
        key = np.where(low_degree, group, other)
        h = splitmix64(key, seed=self.seed)
        assignment = (h % np.uint64(self.num_partitions)).astype(np.int64)
        return EdgePartition(graph, self.num_partitions, assignment,
                             method=self.name,
                             extra={"threshold": self.threshold})
