"""Hybrid Ginger — PowerLyra's Fennel-style refinement of Hybrid hash [13].

Chen et al. (EuroSys'15).  The method:

1. run Hybrid hashing (low-degree vertices grouped on their own hash
   partition, high-degree vertices scattered — see
   :class:`repro.partitioners.hashing.HybridHashPartitioner`);
2. iteratively *re-home* each low-degree vertex's edge group with a
   Fennel-derived score that trades locality against balance::

       score(v, p) = |N(v) ∩ V(E_p)|  -  gamma/2 * (|V_p| + nu * |E_p|)

   where ``|V_p|``/``|E_p|`` are the partition's current vertex/edge
   loads and ``nu`` normalises edges to vertices (``nu = |V|/|E|``).
   Moving the group moves all edges hashed by ``v``.

Per the paper, a few refinement rounds suffice; quality lands between
plain hashing and the greedy/streaming family.

Kernels: the refinement rounds are a *stream of vertex groups*, so the
``"vectorized"`` kernel (default) drives them through the streaming
core's prefix-commit loop
(:func:`repro.core.streaming.run_chunked_fixpoint`) with a weighted
group scorer: window histograms are one bincount over the gathered
incident-edge assignments, loads reconstruct through signed
group-sized deltas, and a window position replays sequentially only
when a *moved* in-window neighbour staled its locality histogram.
``"python"`` is the per-group reference loop, kept verbatim and pinned
bit-identical by ``tests/test_streaming_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.streaming import run_chunked_fixpoint
from repro.graph.csr import CSRGraph, adjacency_slots
from repro.partitioners.base import EdgePartition, Partitioner
from repro.partitioners.hashing import HybridHashPartitioner
from repro.kernels import validate_kernel

__all__ = ["HybridGingerPartitioner"]


class _GingerRoundScorer:
    """Chunked-driver scorer for one refinement round's group stream.

    Implements the :func:`~repro.core.streaming.run_chunked_fixpoint`
    protocol for a *weighted* item stream: each item is a low-degree
    grouping vertex, a "placement" moves ``len(group)`` edges and one
    covered vertex, and the opaque loads view threaded between
    :meth:`reconstruct` and :meth:`select` is the
    ``(edge_loads, vertex_loads)`` matrix pair.
    """

    def __init__(self, graph: CSRGraph, assignment: np.ndarray,
                 edge_loads: np.ndarray, vertex_loads: np.ndarray,
                 group_indptr: np.ndarray, group_eids: np.ndarray,
                 group_vertices: np.ndarray, gamma: float, nu: float):
        self.graph = graph
        self.assignment = assignment
        self.edge_loads = edge_loads
        self.vertex_loads = vertex_loads
        self.group_indptr = group_indptr
        self.group_eids = group_eids
        self.group_vertices = group_vertices    # sorted grouping vertices
        self.gamma = gamma
        self.nu = nu
        self.num_partitions = len(edge_loads)
        self.items = np.empty(0, dtype=np.int64)    # set per round
        self.gis = np.empty(0, dtype=np.int64)
        self.moved = 0
        #: vertex -> window position stamp (reset after every window)
        self._pos_of = np.full(graph.num_vertices, -1, dtype=np.int64)
        self._window_key = None

    def start_round(self, items: np.ndarray) -> None:
        self.items = items
        self.gis = np.searchsorted(self.group_vertices, items)
        self.moved = 0
        self._window_key = None

    def __len__(self) -> int:
        return len(self.items)

    def _window(self, sl: slice):
        """Memoised incident-edge gather + locality histogram for the
        current window (the histogram is loads-independent, so both of
        the fixpoint driver's select passes share one build; commit
        invalidates the memo)."""
        key = (sl.start, sl.stop)
        if self._window_key != key:
            vs = self.items[sl]
            slot_idx, counts = adjacency_slots(self.graph.indptr, vs)
            gi = self.gis[sl]
            firsts = self.group_eids[self.group_indptr[gi]]
            w, p = len(vs), self.num_partitions
            parts = self.assignment[self.graph.edge_ids[slot_idx]]
            rows = np.repeat(np.arange(w, dtype=np.int64), counts)
            hist = np.bincount(rows * p + parts,
                               minlength=w * p).reshape(w, p)
            self._window_key = key
            self._window_data = (vs, slot_idx, counts,
                                 self.assignment[firsts],
                                 hist.astype(np.float64))
        return self._window_data

    def group_sizes(self, gi: np.ndarray) -> np.ndarray:
        return self.group_indptr[gi + 1] - self.group_indptr[gi]

    def select(self, sl, loads_mats):
        hist = self._window(sl)[4]
        if loads_mats is None:
            el, vl = self.edge_loads[None, :], self.vertex_loads[None, :]
        else:
            el, vl = loads_mats
        penalty = (self.gamma / 2.0) * (vl + self.nu * el)
        return (hist - penalty).argmax(axis=1)

    def reconstruct(self, sl, t0):
        cur = self._window(sl)[3]
        w, p = len(t0), self.num_partitions
        sizes = self.group_sizes(self.gis[sl]).astype(np.float64)
        el_hot = np.zeros((w, p))
        vl_hot = np.zeros((w, p))
        moved = np.flatnonzero(t0 != cur)
        shift = moved + 1                      # exclusive prefix
        shift = shift[shift < w]
        moved = moved[moved + 1 < w]
        el_hot[shift, cur[moved]] -= sizes[moved]
        el_hot[shift, t0[moved]] += sizes[moved]
        vl_hot[shift, cur[moved]] -= 1.0
        vl_hot[shift, t0[moved]] += 1.0
        np.cumsum(el_hot, axis=0, out=el_hot)
        np.cumsum(vl_hot, axis=0, out=vl_hot)
        return (self.edge_loads[None, :] + el_hot,
                self.vertex_loads[None, :] + vl_hot)

    def run_length(self, sl, t0, t1):
        vs, slot_idx, counts, cur, _ = self._window(sl)
        w = len(vs)
        moved0 = t0 != cur
        bad = t1 != t0
        # Locality staleness: a moved earlier-in-window neighbour
        # rewrote some incident edge's assignment under this vertex.
        pos_of = self._pos_of
        pos_of[vs] = np.arange(w)
        nbr_pos = pos_of[self.graph.indices[slot_idx]]
        pos_of[vs] = -1
        rows = np.repeat(np.arange(w, dtype=np.int64), counts)
        # -1 stamps wrap to the last window slot, but the >= 0 term
        # vetoes those lanes, so the gather below is safe.
        hit = (nbr_pos >= 0) & (nbr_pos < rows) & moved0[nbr_pos]
        if hit.any():
            bad[rows[hit].min()] = True
        first = np.flatnonzero(bad)
        return max(1, int(first[0])) if len(first) else w

    def commit(self, sl, targets):
        # The committed run is a prefix of the memoised window: reuse
        # its cur column instead of re-gathering the adjacency.
        key = self._window_key
        if key and key[0] == sl.start and sl.stop <= key[1]:
            cur = self._window_data[3][:sl.stop - sl.start]
        else:
            cur = self._window(sl)[3]
        moved = np.flatnonzero(targets != cur)
        self._window_key = None
        if not len(moved):
            return
        gi = self.gis[sl][moved]
        tg = targets[moved]
        cm = cur[moved]
        sizes = self.group_sizes(gi).astype(np.float64)
        slot, counts = adjacency_slots(self.group_indptr, gi)
        self.assignment[self.group_eids[slot]] = np.repeat(tg, counts)
        np.subtract.at(self.edge_loads, cm, sizes)
        np.add.at(self.edge_loads, tg, sizes)
        np.subtract.at(self.vertex_loads, cm, 1.0)
        np.add.at(self.vertex_loads, tg, 1.0)
        self.moved += len(moved)


class HybridGingerPartitioner(Partitioner):
    """Hybrid hash + Ginger (Fennel-heuristic) refinement rounds."""

    name = "hybrid_ginger"

    def __init__(self, num_partitions: int, seed: int = 0,
                 threshold: int = 100, rounds: int = 3,
                 gamma: float = 1.5, kernel: str = "vectorized"):
        super().__init__(num_partitions, seed)
        self.threshold = threshold
        self.rounds = rounds
        self.gamma = gamma
        self.kernel = validate_kernel(kernel)

    def _setup(self, graph: CSRGraph):
        """Base Hybrid-hash run + the low-degree grouping (shared by
        both kernels; group enumeration order is eid-ascending)."""
        p = self.num_partitions
        base = HybridHashPartitioner(
            p, seed=self.seed, threshold=self.threshold).partition(graph)
        assignment = base.assignment.copy()

        deg = graph.degrees()
        u_col, v_col = graph.edges[:, 0], graph.edges[:, 1]
        group_by_u = deg[u_col] <= deg[v_col]
        group_vertex = np.where(group_by_u, u_col, v_col)
        low = deg[group_vertex] < self.threshold
        return assignment, group_vertex, low

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        if self.kernel == "python":
            return self._partition_python(graph)
        return self._partition_vectorized(graph)

    def _partition_vectorized(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        assignment, group_vertex, low = self._setup(graph)

        low_eids = np.flatnonzero(low)
        gv = group_vertex[low_eids]
        order = np.argsort(gv, kind="stable")    # (vertex, eid) ascending
        group_eids = low_eids[order]
        vertices, counts = np.unique(gv, return_counts=True)
        group_indptr = np.zeros(len(vertices) + 1, dtype=np.int64)
        np.cumsum(counts, out=group_indptr[1:])

        edge_loads = np.bincount(assignment, minlength=p).astype(np.float64)
        vertex_loads = _covered_vertex_counts(graph, assignment, p).astype(np.float64)
        nu = graph.num_vertices / max(graph.num_edges, 1)
        rng = np.random.default_rng(self.seed)

        scorer = _GingerRoundScorer(graph, assignment, edge_loads,
                                    vertex_loads, group_indptr, group_eids,
                                    vertices, self.gamma, nu)
        moved_total = 0
        stream = vertices.astype(np.int64).copy()
        for _ in range(self.rounds):
            rng.shuffle(stream)
            scorer.start_round(stream)
            run_chunked_fixpoint(scorer)
            scorer.vertex_loads[:] = _covered_vertex_counts(
                graph, assignment, p).astype(np.float64)
            moved_total += scorer.moved
            if not scorer.moved:
                break

        return EdgePartition(graph, p, assignment, method=self.name,
                             iterations=self.rounds,
                             extra={"moved_groups": moved_total})

    def _partition_python(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        assignment, group_vertex, low = self._setup(graph)

        # Edge ids grouped by their low-degree grouping vertex.
        groups: dict[int, list[int]] = {}
        for eid in np.flatnonzero(low):
            groups.setdefault(int(group_vertex[eid]), []).append(int(eid))

        edge_loads = np.bincount(assignment, minlength=p).astype(np.float64)
        vertex_loads = _covered_vertex_counts(graph, assignment, p).astype(np.float64)
        nu = graph.num_vertices / max(graph.num_edges, 1)
        rng = np.random.default_rng(self.seed)

        moved_total = 0
        vertices = np.array(sorted(groups), dtype=np.int64)
        for _ in range(self.rounds):
            rng.shuffle(vertices)
            moved = 0
            for v in vertices:
                eids = groups[int(v)]
                current = assignment[eids[0]]
                # Locality: neighbours' partition histogram.
                nbr_parts = np.zeros(p, dtype=np.float64)
                for eid in graph.incident_edge_ids(v):
                    nbr_parts[assignment[eid]] += 1.0
                penalty = (self.gamma / 2.0) * (vertex_loads + nu * edge_loads)
                score = nbr_parts - penalty
                target = int(np.argmax(score))
                if target != current:
                    for eid in eids:
                        assignment[eid] = target
                    edge_loads[current] -= len(eids)
                    edge_loads[target] += len(eids)
                    # Vertex-load bookkeeping kept approximate (exact
                    # recount once per round below) for speed.
                    vertex_loads[current] -= 1
                    vertex_loads[target] += 1
                    moved += 1
            vertex_loads = _covered_vertex_counts(
                graph, assignment, p).astype(np.float64)
            moved_total += moved
            if not moved:
                break

        return EdgePartition(graph, p, assignment, method=self.name,
                             iterations=self.rounds,
                             extra={"moved_groups": moved_total})


def _covered_vertex_counts(graph: CSRGraph, assignment: np.ndarray,
                           p: int) -> np.ndarray:
    """|V(E_p)| per partition (same computation as metrics.quality)."""
    verts = np.concatenate([graph.edges[:, 0], graph.edges[:, 1]])
    parts = np.concatenate([assignment, assignment])
    keys = verts * p + parts
    owning = np.unique(keys) % p
    return np.bincount(owning, minlength=p)
