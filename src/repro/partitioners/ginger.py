"""Hybrid Ginger — PowerLyra's Fennel-style refinement of Hybrid hash [13].

Chen et al. (EuroSys'15).  The method:

1. run Hybrid hashing (low-degree vertices grouped on their own hash
   partition, high-degree vertices scattered — see
   :class:`repro.partitioners.hashing.HybridHashPartitioner`);
2. iteratively *re-home* each low-degree vertex's edge group with a
   Fennel-derived score that trades locality against balance::

       score(v, p) = |N(v) ∩ V(E_p)|  -  gamma/2 * (|V_p| + nu * |E_p|)

   where ``|V_p|``/``|E_p|`` are the partition's current vertex/edge
   loads and ``nu`` normalises edges to vertices (``nu = |V|/|E|``).
   Moving the group moves all edges hashed by ``v``.

Per the paper, a few refinement rounds suffice; quality lands between
plain hashing and the greedy/streaming family.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.base import EdgePartition, Partitioner
from repro.partitioners.hashing import HybridHashPartitioner

__all__ = ["HybridGingerPartitioner"]


class HybridGingerPartitioner(Partitioner):
    """Hybrid hash + Ginger (Fennel-heuristic) refinement rounds."""

    name = "hybrid_ginger"

    def __init__(self, num_partitions: int, seed: int = 0,
                 threshold: int = 100, rounds: int = 3,
                 gamma: float = 1.5):
        super().__init__(num_partitions, seed)
        self.threshold = threshold
        self.rounds = rounds
        self.gamma = gamma

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        base = HybridHashPartitioner(
            p, seed=self.seed, threshold=self.threshold).partition(graph)
        assignment = base.assignment.copy()

        deg = graph.degrees()
        u_col, v_col = graph.edges[:, 0], graph.edges[:, 1]
        group_by_u = deg[u_col] <= deg[v_col]
        group_vertex = np.where(group_by_u, u_col, v_col)
        low = deg[group_vertex] < self.threshold

        # Edge ids grouped by their low-degree grouping vertex.
        groups: dict[int, list[int]] = {}
        for eid in np.flatnonzero(low):
            groups.setdefault(int(group_vertex[eid]), []).append(int(eid))

        edge_loads = np.bincount(assignment, minlength=p).astype(np.float64)
        vertex_loads = _covered_vertex_counts(graph, assignment, p).astype(np.float64)
        nu = graph.num_vertices / max(graph.num_edges, 1)
        rng = np.random.default_rng(self.seed)

        moved_total = 0
        vertices = np.array(sorted(groups), dtype=np.int64)
        for _ in range(self.rounds):
            rng.shuffle(vertices)
            moved = 0
            for v in vertices:
                eids = groups[int(v)]
                current = assignment[eids[0]]
                # Locality: neighbours' partition histogram.
                nbr_parts = np.zeros(p, dtype=np.float64)
                for eid in graph.incident_edge_ids(v):
                    nbr_parts[assignment[eid]] += 1.0
                penalty = (self.gamma / 2.0) * (vertex_loads + nu * edge_loads)
                score = nbr_parts - penalty
                target = int(np.argmax(score))
                if target != current:
                    for eid in eids:
                        assignment[eid] = target
                    edge_loads[current] -= len(eids)
                    edge_loads[target] += len(eids)
                    # Vertex-load bookkeeping kept approximate (exact
                    # recount once per round below) for speed.
                    vertex_loads[current] -= 1
                    vertex_loads[target] += 1
                    moved += 1
            vertex_loads = _covered_vertex_counts(
                graph, assignment, p).astype(np.float64)
            moved_total += moved
            if not moved:
                break

        return EdgePartition(graph, p, assignment, method=self.name,
                             iterations=self.rounds,
                             extra={"moved_groups": moved_total})


def _covered_vertex_counts(graph: CSRGraph, assignment: np.ndarray,
                           p: int) -> np.ndarray:
    """|V(E_p)| per partition (same computation as metrics.quality)."""
    verts = np.concatenate([graph.edges[:, 0], graph.edges[:, 1]])
    parts = np.concatenate([assignment, assignment])
    keys = verts * p + parts
    owning = np.unique(keys) % p
    return np.bincount(owning, minlength=p)
