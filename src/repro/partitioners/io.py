"""Serialisation of partitioning results.

A partitioner run is the expensive step of the paper's workflow
(pre-processing for a distributed graph engine), so its result must be
persistable.  :func:`save_partition` / :func:`load_partition` store an
:class:`~repro.partitioners.base.EdgePartition` as a single ``.npz``
file: the canonical edge array, the per-edge assignment, and the run
metadata (method, elapsed, iterations, JSON-encodable extras).

Loading rebuilds the CSR graph from the stored edges, so the file is
self-contained — a downstream engine needs nothing else.
"""

from __future__ import annotations

import json

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.base import EdgePartition

__all__ = ["save_partition", "load_partition"]

_FORMAT_VERSION = 1


def _jsonable(value):
    """Best-effort conversion of `extra` entries to JSON-encodable."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


def save_partition(path, partition: EdgePartition) -> None:
    """Write ``partition`` to ``path`` as a compressed npz archive."""
    meta = {
        "format_version": _FORMAT_VERSION,
        "method": partition.method,
        "num_partitions": partition.num_partitions,
        "num_vertices": partition.graph.num_vertices,
        "elapsed_seconds": partition.elapsed_seconds,
        "iterations": partition.iterations,
        "extra": _jsonable(partition.extra),
    }
    np.savez_compressed(
        path,
        edges=partition.graph.edges,
        assignment=partition.assignment,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_partition(path) -> EdgePartition:
    """Read a partition written by :func:`save_partition`."""
    with np.load(path) as data:
        edges = data["edges"]
        assignment = data["assignment"]
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
    version = meta.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported partition file version {version!r}")
    graph = CSRGraph(edges, num_vertices=meta["num_vertices"])
    return EdgePartition(
        graph,
        meta["num_partitions"],
        assignment,
        method=meta["method"],
        elapsed_seconds=meta["elapsed_seconds"],
        iterations=meta["iterations"],
        extra=meta["extra"],
    )
