"""Baseline partitioners evaluated against Distributed NE.

The paper's comparison set (§7.1):

====================  ==========================================  =========
Name                  Class                                        Kind
====================  ==========================================  =========
Random (1D hash)      :class:`~repro.partitioners.hashing.RandomPartitioner`        edge
2D-Random / Grid      :class:`~repro.partitioners.hashing.GridPartitioner`          edge
DBH                   :class:`~repro.partitioners.hashing.DBHPartitioner`           edge
Hybrid                :class:`~repro.partitioners.hashing.HybridHashPartitioner`    edge
Oblivious             :class:`~repro.partitioners.oblivious.ObliviousPartitioner`   edge
Hybrid Ginger         :class:`~repro.partitioners.ginger.HybridGingerPartitioner`   edge
HDRF                  :class:`~repro.partitioners.hdrf.HDRFPartitioner`             edge (streaming)
FENNEL                :class:`~repro.partitioners.fennel.FennelEdgePartitioner`     edge (streaming)
NE                    :class:`~repro.partitioners.ne.NEPartitioner`                 edge (offline)
SNE                   :class:`~repro.partitioners.sne.SNEPartitioner`               edge (streaming)
Sheep                 :class:`~repro.partitioners.sheep.SheepPartitioner`           edge (tree)
Spinner               :class:`~repro.partitioners.spinner.SpinnerPartitioner`       vertex
ParMETIS-like         :class:`~repro.partitioners.metis_like.MetisLikePartitioner`  vertex
XtraPuLP-like         :class:`~repro.partitioners.xtrapulp.XtraPuLPPartitioner`     vertex
====================  ==========================================  =========

Vertex partitioners expose ``partition_vertices`` and their
``partition`` applies the §7.1 vertex→edge conversion.
``PARTITIONER_REGISTRY`` maps the names the bench harness uses to the
classes; Distributed NE registers itself on import of
:mod:`repro.core`.
"""

from repro.partitioners.base import EdgePartition, Partitioner, VertexPartition
from repro.partitioners.hashing import (
    DBHPartitioner,
    GridPartitioner,
    HybridHashPartitioner,
    RandomPartitioner,
)
from repro.partitioners.fennel import FennelEdgePartitioner
from repro.partitioners.oblivious import ObliviousPartitioner
from repro.partitioners.hdrf import HDRFPartitioner
from repro.partitioners.ginger import HybridGingerPartitioner
from repro.partitioners.ne import NEPartitioner
from repro.partitioners.sne import SNEPartitioner
from repro.partitioners.sheep import SheepPartitioner
from repro.partitioners.spinner import SpinnerPartitioner
from repro.partitioners.metis_like import MetisLikePartitioner
from repro.partitioners.xtrapulp import XtraPuLPPartitioner
from repro.partitioners.vertex_to_edge import vertex_to_edge_partition

PARTITIONER_REGISTRY = {
    cls.name: cls
    for cls in (
        RandomPartitioner,
        GridPartitioner,
        DBHPartitioner,
        HybridHashPartitioner,
        ObliviousPartitioner,
        FennelEdgePartitioner,
        HDRFPartitioner,
        HybridGingerPartitioner,
        NEPartitioner,
        SNEPartitioner,
        SheepPartitioner,
        SpinnerPartitioner,
        MetisLikePartitioner,
        XtraPuLPPartitioner,
    )
}

__all__ = [
    "EdgePartition",
    "VertexPartition",
    "Partitioner",
    "RandomPartitioner",
    "GridPartitioner",
    "DBHPartitioner",
    "HybridHashPartitioner",
    "ObliviousPartitioner",
    "FennelEdgePartitioner",
    "HDRFPartitioner",
    "HybridGingerPartitioner",
    "NEPartitioner",
    "SNEPartitioner",
    "SheepPartitioner",
    "SpinnerPartitioner",
    "MetisLikePartitioner",
    "XtraPuLPPartitioner",
    "vertex_to_edge_partition",
    "PARTITIONER_REGISTRY",
]
