"""Sequential Neighbor Expansion (NE) — Zhang et al., KDD'17 [54].

The offline single-machine algorithm that §3.1 of the Distributed NE
paper recaps and that Distributed NE parallelises.  Partitions are
grown one after another:

* maintain a boundary ``B`` of vertices touching the current edge set;
* repeatedly pop ``argmin_{x in B} Drest(x)`` (the vertex whose
  remaining degree is smallest, Equation 4) and allocate all its
  remaining edges (one-hop);
* additionally allocate any remaining edge whose *both* endpoints are
  already covered by the partition (two-hop rule, Condition 5);
* stop when the partition reaches ``alpha * |E| / |P|`` edges or no
  edges remain, then start the next partition from a fresh random seed
  vertex.

Leftover edges after the final partition (possible when early
partitions hoard the budget) go to the least-loaded partitions, keeping
the balance constraint intact.

The expansion engine is shared with SNE via :class:`ExpansionState`.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph, adjacency_slots, first_occurrence
from repro.kernels import validate_kernel
from repro.partitioners.base import EdgePartition, Partitioner

__all__ = ["NEPartitioner", "ExpansionState"]


class ExpansionState:
    """Mutable state for greedy neighbour expansion over a CSR graph.

    Tracks, for the whole run: the per-edge assignment (-1 while
    unallocated) and per-vertex remaining degree; and, for the current
    partition: the covered-vertex mask and the boundary priority queue
    (a lazy-deletion heap keyed by ``Drest``).

    ``allowed`` optionally restricts which edges are visible (SNE's
    bounded buffer); ``None`` means the whole graph.

    ``kernel`` selects the expansion implementation:
    ``"vectorized"`` (default) allocates whole adjacency slices with
    masked NumPy gathers; ``"python"`` is the per-slot reference loop.
    Both produce identical assignments (pinned by the kernel
    equivalence tests).
    """

    def __init__(self, graph: CSRGraph, rng: np.random.Generator,
                 allowed: np.ndarray | None = None,
                 kernel: str = "vectorized"):
        validate_kernel(kernel)
        self.graph = graph
        self.rng = rng
        self.kernel = kernel
        self.assignment = np.full(graph.num_edges, -1, dtype=np.int64)
        self.allowed = allowed
        if allowed is None:
            self.rest_degree = graph.degrees().astype(np.int64).copy()
        else:
            self.rest_degree = np.zeros(graph.num_vertices, dtype=np.int64)
            vis = graph.edges[allowed]
            if len(vis):
                self.rest_degree += np.bincount(
                    vis.ravel(), minlength=graph.num_vertices)
        self.unallocated = int(self.rest_degree.sum() // 2)
        # Random-probe order for seed selection.
        self._probe_order = rng.permutation(graph.num_vertices)
        self._probe_pos = 0
        # Per-partition state, reset by begin_partition().
        self.in_part = np.zeros(graph.num_vertices, dtype=bool)
        self._touched: list[int] = []
        self.boundary: list[tuple[int, int]] = []

    # -- per-partition lifecycle ----------------------------------------
    def begin_partition(self) -> None:
        """Reset covered-vertex mask and boundary for a new partition."""
        for v in self._touched:
            self.in_part[v] = False
        self._touched = []
        self.boundary = []

    def _cover(self, v: int) -> None:
        if not self.in_part[v]:
            self.in_part[v] = True
            self._touched.append(int(v))

    def push_boundary(self, v: int) -> None:
        heapq.heappush(self.boundary, (int(self.rest_degree[v]), int(v)))

    def pop_min_boundary(self) -> int | None:
        """Pop the boundary vertex with the smallest *current* Drest.

        Lazy deletion: stale entries (score changed since push) are
        skipped; zero-score vertices expand nothing and are dropped.
        """
        while self.boundary:
            score, v = heapq.heappop(self.boundary)
            current = self.rest_degree[v]
            if current == 0:
                continue
            if score != current:
                heapq.heappush(self.boundary, (int(current), v))
                continue
            return v
        return None

    def random_seed_vertex(self) -> int | None:
        """Next random vertex that still has unallocated (visible) edges."""
        n = self.graph.num_vertices
        while self._probe_pos < n:
            v = int(self._probe_order[self._probe_pos])
            if self.rest_degree[v] > 0:
                return v
            self._probe_pos += 1
        # Wrap-around pass: earlier probes may have regained visibility
        # (SNE refills buffers), so scan once more.
        hits = np.flatnonzero(self.rest_degree > 0)
        if len(hits):
            return int(hits[0])
        return None

    # -- allocation ------------------------------------------------------
    def _visible(self, eid: int) -> bool:
        return self.allowed is None or bool(self.allowed[eid])

    def allocate_edge(self, eid: int, pid: int) -> None:
        u, v = self.graph.edges[eid]
        self.assignment[eid] = pid
        self.rest_degree[u] -= 1
        self.rest_degree[v] -= 1
        self.unallocated -= 1

    def expand_vertex(self, v: int, pid: int, limit: int,
                      allocated: int) -> int:
        """Allocate ``v``'s remaining visible edges (one-hop), then any
        two-hop edges closed by the new coverage.  Returns the updated
        allocated count (stops exactly at ``limit``)."""
        if self.kernel == "vectorized":
            return self._expand_vertex_vectorized(v, pid, limit, allocated)
        return self._expand_vertex_python(v, pid, limit, allocated)

    def _expand_vertex_vectorized(self, v: int, pid: int, limit: int,
                                  allocated: int) -> int:
        """Flat-array expansion: masked slices of the vertex's incident
        edge ids, with first-occurrence dedup for the two-hop closure.

        Matches the per-slot reference walk exactly: free slots are
        taken in adjacency order up to ``limit``; hitting the limit
        anywhere in the one-hop scan skips the two-hop phase and all
        boundary pushes (the reference breaks out the same way whether
        the cap lands mid-row or on the final slot)."""
        graph = self.graph
        self._cover(v)
        s, e = graph.indptr[v], graph.indptr[v + 1]
        eids = graph.edge_ids[s:e]
        free = self.assignment[eids] == -1
        if self.allowed is not None:
            free &= self.allowed[eids]
        f = np.flatnonzero(free)
        room = limit - allocated
        if len(f) > room:
            f = f[:room]
        take = eids[f]
        nbrs = graph.indices[s:e][f]
        k = len(take)
        if k:
            self.assignment[take] = pid
            self.rest_degree[v] -= k
            self.rest_degree[nbrs] -= 1   # simple graph: nbrs distinct
            self.unallocated -= k
            allocated += k
            new_cover = nbrs[~self.in_part[nbrs]]
            self.in_part[new_cover] = True
            self._touched.extend(int(u) for u in new_cover)
        else:
            new_cover = nbrs[:0]
        if allocated >= limit:
            return allocated

        # Two-hop rule: edges between newly covered vertices and any
        # covered vertex are free (Condition 5).  Batched over all
        # newly covered rows; an edge shared by two new rows is taken
        # at its first occurrence, as in the sequential walk.
        if len(new_cover) == 0:
            return allocated
        slot_idx, counts = adjacency_slots(graph.indptr, new_cover)
        eids2 = graph.edge_ids[slot_idx]
        ok = (self.assignment[eids2] == -1) & self.in_part[graph.indices[slot_idx]]
        if self.allowed is not None:
            ok &= self.allowed[eids2]
        cand_pos = np.flatnonzero(ok)
        push_upto = len(new_cover)       # rows whose boundary push runs
        if len(cand_pos):
            cand_eids = eids2[cand_pos]
            occ = first_occurrence(cand_eids)
            cand_pos = cand_pos[occ]
            cand_eids = cand_eids[occ]
            room = limit - allocated
            if len(cand_eids) > room:
                cand_pos = cand_pos[:room]
                cand_eids = cand_eids[:room]
            if len(cand_eids):
                self.assignment[cand_eids] = pid
                ends = graph.edges[cand_eids]
                # O(candidates), not O(n): scatter-subtract only the
                # touched endpoints (duplicates accumulate).
                np.subtract.at(self.rest_degree, ends.ravel(), 1)
                allocated += len(cand_eids)
                self.unallocated -= len(cand_eids)
            if allocated >= limit:
                # The reference push-checks every row up to and
                # including the one whose allocation reached the cap,
                # then breaks.
                push_upto = int(np.searchsorted(
                    np.cumsum(counts), cand_pos[-1], side="right")) + 1
        for u in new_cover[:push_upto]:
            if self.rest_degree[u] > 0:
                self.push_boundary(int(u))
        return allocated

    def _expand_vertex_python(self, v: int, pid: int, limit: int,
                              allocated: int) -> int:
        """Reference expansion: one adjacency slot at a time."""
        graph = self.graph
        self._cover(v)
        new_cover: list[int] = []
        for slot in range(graph.indptr[v], graph.indptr[v + 1]):
            if allocated >= limit:
                return allocated
            eid = int(graph.edge_ids[slot])
            if self.assignment[eid] != -1 or not self._visible(eid):
                continue
            u = int(graph.indices[slot])
            self.allocate_edge(eid, pid)
            allocated += 1
            if not self.in_part[u]:
                self._cover(u)
                new_cover.append(u)

        # Two-hop rule: edges between newly covered vertices and any
        # covered vertex are free (Condition 5).
        for u in new_cover:
            if allocated >= limit:
                break
            for slot in range(graph.indptr[u], graph.indptr[u + 1]):
                if allocated >= limit:
                    break
                eid = int(graph.edge_ids[slot])
                if self.assignment[eid] != -1 or not self._visible(eid):
                    continue
                w = int(graph.indices[slot])
                if self.in_part[w]:
                    self.allocate_edge(eid, pid)
                    allocated += 1
            if self.rest_degree[u] > 0:
                self.push_boundary(u)
        return allocated


class NEPartitioner(Partitioner):
    """Offline sequential NE with the paper's α-bounded partition sizes."""

    name = "ne"

    def __init__(self, num_partitions: int, seed: int = 0,
                 alpha: float = 1.1, kernel: str = "vectorized"):
        super().__init__(num_partitions, seed)
        if alpha < 1.0:
            raise ValueError("imbalance factor alpha must be >= 1.0")
        self.alpha = alpha
        self.kernel = validate_kernel(kernel)

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        rng = np.random.default_rng(self.seed)
        state = ExpansionState(graph, rng, kernel=self.kernel)
        limit = max(1, int(np.ceil(self.alpha * graph.num_edges / p)))

        for pid in range(p):
            if state.unallocated == 0:
                break
            state.begin_partition()
            allocated = 0
            while allocated < limit and state.unallocated > 0:
                v = state.pop_min_boundary()
                if v is None:
                    v = state.random_seed_vertex()
                    if v is None:
                        break
                allocated = state.expand_vertex(v, pid, limit, allocated)

        _sweep_leftovers(state, p)
        return EdgePartition(graph, p, state.assignment, method=self.name,
                             extra={"alpha": self.alpha})


def _sweep_leftovers(state: ExpansionState, num_partitions: int) -> None:
    """Assign any still-unallocated edges to the least-loaded partitions.

    Rarely needed (only when early partitions exhaust their budgets on a
    component and the tail partitions never see edges); keeps coverage
    total so the result is a true partition of E.
    """
    left = np.flatnonzero(state.assignment == -1)
    if len(left) == 0:
        return
    loads = np.bincount(state.assignment[state.assignment >= 0],
                        minlength=num_partitions).astype(np.int64)
    for eid in left:
        target = int(np.argmin(loads))
        state.assignment[eid] = target
        loads[target] += 1
    state.unallocated = 0
