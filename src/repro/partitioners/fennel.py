"""FENNEL-based streaming edge partitioner (Tsourakakis et al. [45],
edge variant after Bourse et al. [10]).

The related-work family §2.2 cites alongside HDRF/SNE.  FENNEL's
one-pass score trades marginal locality against a superlinear load
penalty.  For the *edge* partitioning variant, each streamed edge
``(u, v)`` is scored against partition ``p`` as::

    score(p) = |{u, v} ∩ V(E_p)|  -  gamma/2 * ((load_p + 1)^a - load_p^a)

i.e. the replication saved by reusing existing vertex copies minus the
marginal increase of the convex load penalty ``gamma * load^a`` (the
classic FENNEL exponent ``a = 1.5``).  With ``gamma`` scaled as
``sqrt(|P|) / |E|^(a-1)`` the penalty balances partitions without a
hard cap.

Quality lands in the greedy-streaming class (comparable to Oblivious,
behind NE-family methods) — included as the related-work baseline and
as another point in the streaming design space.

Kernels: ``"vectorized"`` (default) rides the chunked scoring driver of
:mod:`repro.core.streaming`; ``"python"`` is the per-edge reference
loop, kept verbatim and pinned bit-identical by
``tests/test_streaming_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.streaming import (TAIL_BLOCK, EdgeStreamScorer,
                                  StreamingState, block_tail_hints,
                                  run_chunked_stream)
from repro.graph.csr import CSRGraph
from repro.partitioners.base import EdgePartition, StreamingEdgePartitioner

__all__ = ["FennelEdgePartitioner"]


class _FennelScorer(EdgeStreamScorer):
    """Rowwise form of the reference's per-edge FENNEL score.

    The locality term is hoisted per collision-free window; the convex
    load penalty tracks the running loads.  The tail stepper recomputes
    the penalty vector with the reference's exact expression each step
    (caching per-entry powers would re-evaluate ``**`` along a
    different NumPy code path, and the equivalence pin is bit-exact).
    """

    def __init__(self, state, u, v, gamma, load_exponent):
        super().__init__(state, u, v)
        self.gamma = gamma
        self.load_exponent = load_exponent
        self._pen_table = self._penalty_table()

    def window_static(self, sl):
        u, v = self.u[sl], self.v[sl]
        in_u = self.state.member_rows(u)
        in_v = self.state.member_rows(v)
        return in_u.astype(np.float64) + in_v.astype(np.float64)

    def pick(self, aux, rows, loads_mat):
        loads = loads_mat.astype(np.float64)
        a = self.load_exponent
        penalty = self.gamma * ((loads + 1.0) ** a - loads ** a)
        return (aux[rows] - penalty).argmax(axis=1)

    def _penalty_table(self) -> np.ndarray:
        """Marginal penalty per integer load value, for every load the
        stream can reach.  Built through the same whole-array ufunc
        loop as the reference's per-edge vector (NumPy's SIMD pow is
        not bit-identical to the float64 scalar operator, and is
        verified value-deterministic across array shapes by the
        equivalence pins), so table lookups reproduce the reference's
        floats exactly."""
        vals = np.arange(len(self.u) + 2, dtype=np.float64)
        a = self.load_exponent
        return self.gamma * ((vals + 1.0) ** a - vals ** a)

    def tail_walk(self, sl, aux, start, stop):
        us, vs = self.u[sl], self.v[sl]
        state = self.state
        member = state.member
        changed = self._changed
        pen_table = self._pen_table
        loads = state.loads.tolist()             # walker-local int loads
        penalty = pen_table[state.loads]
        buf = np.empty_like(penalty)
        out = np.empty(stop - start, dtype=np.int64)
        # Batched tie-break: a placement only raises the placed entry's
        # marginal penalty (gamma >= 0, convex table), so a block-start
        # hint stays exact for fresh rows whose hinted partition was
        # not placed into since the snapshot (see block_tail_hints).
        hints_ok = self.gamma >= 0
        k = start
        while k < stop:
            end = min(stop, k + TAIL_BLOCK)
            if hints_ok:
                barg = block_tail_hints(aux[k:end], penalty, subtract=True)
            touched: set = set()
            for k2 in range(k, end):
                uk = int(us[k2])
                vk = int(vs[k2])
                fresh = uk not in changed and vk not in changed
                if not fresh:
                    rows = member.rows_bool(np.array([uk, vk]))
                    aux[k2] = (rows[0].astype(np.float64)
                               + rows[1].astype(np.float64))
                if hints_ok and fresh and int(barg[k2 - k]) not in touched:
                    t = int(barg[k2 - k])
                else:
                    np.subtract(aux[k2], penalty, out=buf)
                    t = int(np.argmax(buf))
                out[k2 - start] = t
                loads[t] += 1
                penalty[t] = pen_table[loads[t]]
                touched.add(t)
                if not member.get_bit(uk, t):
                    member.set_bit(uk, t)
                    changed.add(uk)
                if not member.get_bit(vk, t):
                    member.set_bit(vk, t)
                    changed.add(vk)
            k = end
        state.loads += np.bincount(out, minlength=state.num_partitions)
        return out


class FennelEdgePartitioner(StreamingEdgePartitioner):
    """One-pass FENNEL scoring over the edge stream."""

    name = "fennel"

    def __init__(self, num_partitions: int, seed: int = 0,
                 load_exponent: float = 1.5, gamma: float | None = None,
                 shuffle: bool = True, kernel: str = "vectorized"):
        super().__init__(num_partitions, seed, shuffle=shuffle,
                         kernel=kernel)
        if load_exponent <= 1.0:
            raise ValueError("load_exponent must be > 1 (convex penalty)")
        self.load_exponent = load_exponent
        self.gamma = gamma

    def _resolve_gamma(self, graph: CSRGraph) -> float:
        if self.gamma is not None:
            return self.gamma
        p = self.num_partitions
        m = max(graph.num_edges, 1)
        a = self.load_exponent
        # Classic FENNEL scaling adapted to edge loads.
        gamma = np.sqrt(p) * m / (m / p) ** a if p > 1 else 0.0
        return gamma / m  # normalise so penalties are O(1) per edge

    def _result(self, graph: CSRGraph, assignment: np.ndarray,
                gamma: float) -> EdgePartition:
        return EdgePartition(graph, self.num_partitions, assignment,
                             method=self.name,
                             extra={"gamma": float(gamma),
                                    "load_exponent": self.load_exponent})

    def _partition_vectorized(self, graph: CSRGraph) -> EdgePartition:
        gamma = self._resolve_gamma(graph)
        order = self.stream_order(graph.num_edges)
        state = StreamingState(graph.num_vertices, self.num_partitions)
        scorer = _FennelScorer(state,
                               graph.edges[order, 0], graph.edges[order, 1],
                               gamma, self.load_exponent)
        assignment = np.empty(graph.num_edges, dtype=np.int64)
        assignment[order] = run_chunked_stream(scorer)
        return self._result(graph, assignment, gamma)

    def _partition_python(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        a = self.load_exponent
        gamma = self._resolve_gamma(graph)
        order = self.stream_order(graph.num_edges)

        use_bitmask = p <= 64
        if use_bitmask:
            replicas = np.zeros(graph.num_vertices, dtype=np.uint64)
        else:
            replica_sets = [set() for _ in range(graph.num_vertices)]
        loads = np.zeros(p, dtype=np.float64)
        assignment = np.empty(graph.num_edges, dtype=np.int64)
        part_ids = np.arange(p)

        for eid in order:
            u, v = graph.edges[eid]
            if use_bitmask:
                in_u = (replicas[u] >> part_ids.astype(np.uint64)) & np.uint64(1)
                in_v = (replicas[v] >> part_ids.astype(np.uint64)) & np.uint64(1)
                locality = in_u.astype(np.float64) + in_v.astype(np.float64)
            else:
                locality = np.array(
                    [(q in replica_sets[u]) + (q in replica_sets[v])
                     for q in part_ids], dtype=np.float64)
            penalty = gamma * ((loads + 1.0) ** a - loads ** a)
            target = int(np.argmax(locality - penalty))

            assignment[eid] = target
            loads[target] += 1.0
            if use_bitmask:
                bit = np.uint64(1) << np.uint64(target)
                replicas[u] |= bit
                replicas[v] |= bit
            else:
                replica_sets[u].add(target)
                replica_sets[v].add(target)

        return self._result(graph, assignment, gamma)
