"""FENNEL-based streaming edge partitioner (Tsourakakis et al. [45],
edge variant after Bourse et al. [10]).

The related-work family §2.2 cites alongside HDRF/SNE.  FENNEL's
one-pass score trades marginal locality against a superlinear load
penalty.  For the *edge* partitioning variant, each streamed edge
``(u, v)`` is scored against partition ``p`` as::

    score(p) = |{u, v} ∩ V(E_p)|  -  gamma/2 * ((load_p + 1)^a - load_p^a)

i.e. the replication saved by reusing existing vertex copies minus the
marginal increase of the convex load penalty ``gamma * load^a`` (the
classic FENNEL exponent ``a = 1.5``).  With ``gamma`` scaled as
``sqrt(|P|) / |E|^(a-1)`` the penalty balances partitions without a
hard cap.

Quality lands in the greedy-streaming class (comparable to Oblivious,
behind NE-family methods) — included as the related-work baseline and
as another point in the streaming design space.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.base import EdgePartition, Partitioner

__all__ = ["FennelEdgePartitioner"]


class FennelEdgePartitioner(Partitioner):
    """One-pass FENNEL scoring over the edge stream."""

    name = "fennel"

    def __init__(self, num_partitions: int, seed: int = 0,
                 load_exponent: float = 1.5, gamma: float | None = None,
                 shuffle: bool = True):
        super().__init__(num_partitions, seed)
        if load_exponent <= 1.0:
            raise ValueError("load_exponent must be > 1 (convex penalty)")
        self.load_exponent = load_exponent
        self.gamma = gamma
        self.shuffle = shuffle

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        m = max(graph.num_edges, 1)
        a = self.load_exponent
        gamma = self.gamma
        if gamma is None:
            # Classic FENNEL scaling adapted to edge loads.
            gamma = np.sqrt(p) * m / (m / p) ** a if p > 1 else 0.0
            gamma /= m  # normalise so penalties are O(1) per edge

        order = np.arange(graph.num_edges)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            order = rng.permutation(order)

        use_bitmask = p <= 64
        if use_bitmask:
            replicas = np.zeros(graph.num_vertices, dtype=np.uint64)
        else:
            replica_sets = [set() for _ in range(graph.num_vertices)]
        loads = np.zeros(p, dtype=np.float64)
        assignment = np.empty(graph.num_edges, dtype=np.int64)
        part_ids = np.arange(p)

        for eid in order:
            u, v = graph.edges[eid]
            if use_bitmask:
                in_u = (replicas[u] >> part_ids.astype(np.uint64)) & np.uint64(1)
                in_v = (replicas[v] >> part_ids.astype(np.uint64)) & np.uint64(1)
                locality = in_u.astype(np.float64) + in_v.astype(np.float64)
            else:
                locality = np.array(
                    [(q in replica_sets[u]) + (q in replica_sets[v])
                     for q in part_ids], dtype=np.float64)
            penalty = gamma * ((loads + 1.0) ** a - loads ** a)
            target = int(np.argmax(locality - penalty))

            assignment[eid] = target
            loads[target] += 1.0
            if use_bitmask:
                bit = np.uint64(1) << np.uint64(target)
                replicas[u] |= bit
                replicas[v] |= bit
            else:
                replica_sets[u].add(target)
                replica_sets[v].add(target)

        return EdgePartition(graph, p, assignment, method=self.name,
                             extra={"gamma": float(gamma),
                                    "load_exponent": a})
