"""SNE — Streaming Neighbor Expansion (Zhang et al., KDD'17 [54]).

The bounded-memory variant of NE: the edge stream is consumed into a
buffer of at most ``buffer_factor * |E| / |P|`` edges; neighbour
expansion runs *within the buffer* only.  When the current partition
fills (or the buffer runs dry of expandable edges), the buffer is
topped back up from the stream.  Quality sits between HDRF and offline
NE (Table 4), because expansion decisions see only the buffered
fragment of the graph.

The default ``buffer_factor = 16`` holds several partitions' worth of
edges, matching the regime Zhang et al. evaluate (their buffer is a
memory budget independent of |P|); shrinking it toward 1 degrades
quality smoothly toward hash-like levels, which is itself a useful
ablation of how much graph context the expansion heuristic needs.

Implementation notes: the buffer is a boolean visibility mask over
canonical edge ids (``ExpansionState.allowed``); refilling flips more
ids visible in stream order and updates the visible remaining degrees.

The whole stream run is one sequential program, so the execution
backends (:mod:`repro.cluster.backends`) host it through the
whole-graph offload path rather than per-partition supersteps:
``backend="simulated"`` runs inline, ``"threads"`` on a worker thread,
``"processes"`` in a worker process with the CSR arrays mapped through
shared memory (only the assignment and the scalar stats travel back).
All backends are bit-identical on the assignment and on the reported
``state_bytes`` footprint (pinned by ``tests/test_backends.py``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.backends import create_backend, validate_backend
from repro.cluster.checkpoint import CheckpointStore
from repro.graph.csr import CSRGraph
from repro.kernels import validate_kernel
from repro.observability.trace import NULL_TRACER
from repro.partitioners.base import EdgePartition, Partitioner
from repro.partitioners.ne import ExpansionState, _sweep_leftovers

__all__ = ["SNEPartitioner"]


def _run_sne_stream(graph: CSRGraph, p: int, seed: int, alpha: float,
                    buffer_factor: float, shuffle: bool, kernel: str,
                    checkpoint_dir: str | None = None, resume: bool = False
                    ) -> tuple[np.ndarray, dict]:
    """One full SNE stream run; pure function of (graph, parameters).

    Module-level and fully deterministic so every execution backend —
    inline, worker thread, or shared-memory worker process — computes
    the identical ``(assignment, extra)``.  With ``checkpoint_dir``
    the run snapshots its whole streaming state at every partition
    boundary; ``resume`` restarts from the newest snapshot and is
    bit-identical to the uninterrupted run.
    """
    rng = np.random.default_rng(seed)

    stream = np.arange(graph.num_edges)
    if shuffle:
        stream = rng.permutation(stream)

    allowed = np.zeros(graph.num_edges, dtype=bool)
    state = ExpansionState(graph, rng, allowed=allowed, kernel=kernel)
    limit = max(1, int(np.ceil(alpha * graph.num_edges / p)))
    capacity = max(limit, int(buffer_factor * graph.num_edges / p))

    stream_pos = 0
    buffered = 0  # visible & unallocated edges

    def refill(current_buffered: int) -> int:
        # Bulk top-up: flip the next stream chunk visible and add
        # its endpoint degrees in one bincount pass.
        nonlocal stream_pos
        need = capacity - current_buffered
        if need <= 0 or stream_pos >= len(stream):
            return current_buffered
        chunk = stream[stream_pos:stream_pos + need]
        stream_pos += len(chunk)
        allowed[chunk] = True
        state.rest_degree += np.bincount(
            graph.edges[chunk].ravel(), minlength=graph.num_vertices)
        return current_buffered + len(chunk)

    # With a visibility mask, rest_degree starts at zero and counts
    # only buffered edges; unallocated still tracks the full graph.
    state.rest_degree[:] = 0
    state.unallocated = graph.num_edges
    buffered = refill(0)

    meta = {"partitioner": "sne", "p": p, "seed": seed, "alpha": alpha,
            "buffer_factor": buffer_factor, "shuffle": shuffle,
            "kernel": kernel, "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges}
    store = (CheckpointStore(checkpoint_dir)
             if checkpoint_dir is not None else None)
    start_pid = 0
    snapshot = store.load_latest() if (store is not None and resume) else None
    if snapshot is not None:
        CheckpointStore.check_meta(snapshot, meta)
        # Overwrite the freshly-built streaming state in place (the
        # ``allowed`` mask is shared between ``state`` and ``refill``,
        # so it must keep its identity).  Coverage/boundary need no
        # restore: snapshots are cut at partition boundaries, where
        # ``begin_partition`` wipes them anyway.
        rng.bit_generator.state = snapshot["rng_state"]
        state.assignment[:] = snapshot["assignment"]
        state.rest_degree[:] = snapshot["rest_degree"]
        state.unallocated = snapshot["unallocated"]
        state._probe_order[:] = snapshot["probe_order"]
        state._probe_pos = snapshot["probe_pos"]
        allowed[:] = snapshot["allowed"]
        stream_pos = snapshot["stream_pos"]
        buffered = snapshot["buffered"]
        start_pid = snapshot["next_pid"]

    for pid in range(start_pid, p):
        if store is not None:
            store.save(pid, {
                "meta": meta, "next_pid": pid,
                "rng_state": rng.bit_generator.state,
                "assignment": state.assignment.copy(),
                "rest_degree": state.rest_degree.copy(),
                "unallocated": state.unallocated,
                "probe_order": state._probe_order.copy(),
                "probe_pos": state._probe_pos,
                "allowed": allowed.copy(),
                "stream_pos": stream_pos,
                "buffered": buffered,
            })
        if state.unallocated == 0:
            break
        state.begin_partition()
        allocated = 0
        while allocated < limit and state.unallocated > 0:
            v = state.pop_min_boundary()
            if v is None:
                buffered = refill(buffered)
                v = state.random_seed_vertex()
                if v is None:
                    break
            before = state.unallocated
            allocated = state.expand_vertex(v, pid, limit, allocated)
            buffered -= before - state.unallocated
            if buffered < capacity // 2:
                buffered = refill(buffered)

    _sweep_leftovers(state, p)
    # Resident footprint of the streaming state (the bounded-memory
    # claim SNE exists for): per-edge assignment + visibility mask,
    # per-vertex degrees/coverage, and the probe order.  Deterministic,
    # so backend equivalence can pin it alongside the assignment.
    state_bytes = (state.assignment.nbytes + allowed.nbytes
                   + state.rest_degree.nbytes + state.in_part.nbytes
                   + state._probe_order.nbytes)
    extra = {"alpha": alpha, "buffer_capacity": capacity,
             "state_bytes": int(state_bytes)}
    return state.assignment, extra


class SNEPartitioner(Partitioner):
    """Streaming NE with a bounded in-memory edge buffer."""

    name = "sne"

    def __init__(self, num_partitions: int, seed: int = 0,
                 alpha: float = 1.1, buffer_factor: float = 16.0,
                 shuffle: bool = True, kernel: str = "vectorized",
                 backend: str = "simulated", workers: int | None = None,
                 checkpoint_dir: str | None = None, resume: bool = False,
                 step_timeout: float | None = None, max_retries: int = 0,
                 fault_plan=None, tracer=None):
        super().__init__(num_partitions, seed)
        if buffer_factor <= 0:
            raise ValueError("buffer_factor must be positive")
        self.alpha = alpha
        self.buffer_factor = buffer_factor
        self.shuffle = shuffle
        self.kernel = validate_kernel(kernel)
        self.backend = validate_backend(backend)
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        if resume and checkpoint_dir is None:
            raise ValueError("resume requires checkpoint_dir")
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        if backend != "processes" and (step_timeout is not None or max_retries
                                       or fault_plan is not None):
            raise ValueError("step_timeout/max_retries/fault_plan require "
                             "backend='processes'")
        self.step_timeout = step_timeout
        self.max_retries = max_retries
        self.fault_plan = fault_plan
        self.tracer = tracer

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        tracer = self.tracer if self.tracer is not None else NULL_TRACER
        args = (self.num_partitions, self.seed, self.alpha,
                self.buffer_factor, self.shuffle, self.kernel,
                self.checkpoint_dir, self.resume)
        t0 = time.perf_counter() if tracer.enabled else 0.0
        if self.backend == "simulated":
            assignment, extra = _run_sne_stream(graph, *args)
        else:
            backend = create_backend(
                self.backend, self.workers,
                step_timeout=self.step_timeout,
                max_retries=self.max_retries or None,
                fault_plan=self.fault_plan)
            try:
                assignment, extra = backend.run_graph_task(
                    _run_sne_stream, graph, *args)
            finally:
                backend.close()
        if tracer.enabled:
            # One span for the whole stream (it is a single sequential
            # graph task on every backend, so the structure is
            # backend-independent by construction); backend identity
            # rides in a metadata event, like the DNE driver's.
            tracer.metadata("backend", {"name": self.backend})
            tracer.span("graph_task:sne_stream", cat="graph_task",
                        seconds=time.perf_counter() - t0,
                        args={"method": self.name, "kernel": self.kernel,
                              "partitions": self.num_partitions})
        extra["backend"] = self.backend
        return EdgePartition(graph, self.num_partitions, assignment,
                             method=self.name, extra=extra)
