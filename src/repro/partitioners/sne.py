"""SNE — Streaming Neighbor Expansion (Zhang et al., KDD'17 [54]).

The bounded-memory variant of NE: the edge stream is consumed into a
buffer of at most ``buffer_factor * |E| / |P|`` edges; neighbour
expansion runs *within the buffer* only.  When the current partition
fills (or the buffer runs dry of expandable edges), the buffer is
topped back up from the stream.  Quality sits between HDRF and offline
NE (Table 4), because expansion decisions see only the buffered
fragment of the graph.

The default ``buffer_factor = 16`` holds several partitions' worth of
edges, matching the regime Zhang et al. evaluate (their buffer is a
memory budget independent of |P|); shrinking it toward 1 degrades
quality smoothly toward hash-like levels, which is itself a useful
ablation of how much graph context the expansion heuristic needs.

Implementation notes: the buffer is a boolean visibility mask over
canonical edge ids (``ExpansionState.allowed``); refilling flips more
ids visible in stream order and updates the visible remaining degrees.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels import validate_kernel
from repro.partitioners.base import EdgePartition, Partitioner
from repro.partitioners.ne import ExpansionState, _sweep_leftovers

__all__ = ["SNEPartitioner"]


class SNEPartitioner(Partitioner):
    """Streaming NE with a bounded in-memory edge buffer."""

    name = "sne"

    def __init__(self, num_partitions: int, seed: int = 0,
                 alpha: float = 1.1, buffer_factor: float = 16.0,
                 shuffle: bool = True, kernel: str = "vectorized"):
        super().__init__(num_partitions, seed)
        if buffer_factor <= 0:
            raise ValueError("buffer_factor must be positive")
        self.alpha = alpha
        self.buffer_factor = buffer_factor
        self.shuffle = shuffle
        self.kernel = validate_kernel(kernel)

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        rng = np.random.default_rng(self.seed)

        stream = np.arange(graph.num_edges)
        if self.shuffle:
            stream = rng.permutation(stream)

        allowed = np.zeros(graph.num_edges, dtype=bool)
        state = ExpansionState(graph, rng, allowed=allowed,
                               kernel=self.kernel)
        limit = max(1, int(np.ceil(self.alpha * graph.num_edges / p)))
        capacity = max(limit, int(self.buffer_factor * graph.num_edges / p))

        stream_pos = 0
        buffered = 0  # visible & unallocated edges

        def refill(current_buffered: int) -> int:
            # Bulk top-up: flip the next stream chunk visible and add
            # its endpoint degrees in one bincount pass.
            nonlocal stream_pos
            need = capacity - current_buffered
            if need <= 0 or stream_pos >= len(stream):
                return current_buffered
            chunk = stream[stream_pos:stream_pos + need]
            stream_pos += len(chunk)
            allowed[chunk] = True
            state.rest_degree += np.bincount(
                graph.edges[chunk].ravel(), minlength=graph.num_vertices)
            return current_buffered + len(chunk)

        # With a visibility mask, rest_degree starts at zero and counts
        # only buffered edges; unallocated still tracks the full graph.
        state.rest_degree[:] = 0
        state.unallocated = graph.num_edges
        buffered = refill(0)

        for pid in range(p):
            if state.unallocated == 0:
                break
            state.begin_partition()
            allocated = 0
            while allocated < limit and state.unallocated > 0:
                v = state.pop_min_boundary()
                if v is None:
                    buffered = refill(buffered)
                    v = state.random_seed_vertex()
                    if v is None:
                        break
                before = state.unallocated
                allocated = state.expand_vertex(v, pid, limit, allocated)
                buffered -= before - state.unallocated
                if buffered < capacity // 2:
                    buffered = refill(buffered)

        _sweep_leftovers(state, p)
        return EdgePartition(graph, p, state.assignment, method=self.name,
                             extra={"alpha": self.alpha,
                                    "buffer_capacity": capacity})
