"""Sheep — elimination-tree edge partitioner (Margo & Seltzer [35]).

Sheep translates the graph into an *elimination tree* and partitions
the tree instead of the graph:

1. order vertices by (approximate minimum) degree — the elimination
   order; low-degree vertices become deep leaves, hubs end up near the
   root;
2. build the elimination tree over the original edges: each vertex's
   parent is its lowest-ranked higher neighbour (the standard
   fill-in-free approximation Sheep's distributed variant also uses);
3. map every edge to its lower-ranked endpoint (the tree node that
   "eliminates" the edge);
4. cut the tree into ``|P|`` edge-weight-balanced connected chunks by
   greedy postorder packing, and give each edge its node's chunk.

The paper's critique — Sheep shines on graphs whose elimination
structure is shallow (webs, Twitter) and falls behind on dense socials
(Orkut, Pokec) — is a property of this construction and carries over.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.base import EdgePartition, Partitioner

__all__ = ["SheepPartitioner"]


class SheepPartitioner(Partitioner):
    """Elimination-tree partitioning with postorder chunking."""

    name = "sheep"

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        n, p = graph.num_vertices, self.num_partitions
        if graph.num_edges == 0:
            return EdgePartition(graph, p,
                                 np.empty(0, dtype=np.int64),
                                 method=self.name)

        rank = _min_degree_order(graph)
        order = np.argsort(rank)  # order[i] = vertex with rank i

        # Parent = lowest-ranked neighbour with higher rank.  Ranks are
        # a permutation, so the row-wise minimum over masked neighbour
        # ranks picks a unique vertex; empty and all-lower rows stay -1.
        nbr_rank = rank[graph.indices]
        own_rank = np.repeat(rank, graph.degrees())
        cand = np.where(nbr_rank > own_rank, nbr_rank, n)   # n = +inf
        parent = np.full(n, -1, dtype=np.int64)
        rows = np.flatnonzero(np.diff(graph.indptr) > 0)
        if len(rows):
            # Empty rows occupy no slots, so consecutive non-empty row
            # starts delimit exactly the per-row segments.
            mins = np.minimum.reduceat(cand, graph.indptr[rows])
            valid = mins < n
            parent[rows[valid]] = order[mins[valid]]

        # Edge -> its lower-ranked endpoint (the eliminating node).
        u_col, v_col = graph.edges[:, 0], graph.edges[:, 1]
        owner = np.where(rank[u_col] < rank[v_col], u_col, v_col)
        edge_weight = np.bincount(owner, minlength=n).astype(np.int64)

        chunk = _postorder_pack(parent, rank, order, edge_weight, p)
        assignment = chunk[owner]
        return EdgePartition(graph, p, assignment, method=self.name)


def _min_degree_order(graph: CSRGraph) -> np.ndarray:
    """Approximate minimum-degree elimination ranks (flat-array heap).

    Degrees are decremented as neighbours get eliminated, without
    fill-in edges — the same approximation Sheep's streaming
    translation makes.

    The elimination is inherently sequential (each pop depends on the
    decrements of every earlier one), but all per-vertex state lives in
    flat int64 arrays and the heap holds *encoded* keys
    ``degree * n + vertex`` — plain machine ints, whose ordering equals
    the reference's lexicographic ⟨degree, vertex⟩ tuples (ties to the
    lowest id) without allocating a tuple per entry.  Neighbour
    filtering, degree decrements, and key construction per elimination
    are single vectorized operations; canonical edges are deduplicated,
    so each surviving neighbour is decremented exactly once per batch,
    matching the reference's per-slot walk.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    degree = graph.degrees().astype(np.int64)
    eliminated = np.zeros(n, dtype=bool)
    rank = np.zeros(n, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    nn = np.int64(n)
    heap = (degree * nn + np.arange(n, dtype=np.int64)).tolist()
    heapq.heapify(heap)
    next_rank = 0
    while heap:
        key = heapq.heappop(heap)
        v = key % n
        if eliminated[v]:
            continue
        if key // n != degree[v]:   # stale entry: requeue at the live key
            heapq.heappush(heap, int(degree[v]) * n + v)
            continue
        eliminated[v] = True
        rank[v] = next_rank
        next_rank += 1
        nbrs = indices[indptr[v]:indptr[v + 1]]
        alive = nbrs[~eliminated[nbrs]]
        if len(alive):
            degree[alive] -= 1
            for k in (degree[alive] * nn + alive).tolist():
                heapq.heappush(heap, k)
    return rank


def _postorder_pack(parent: np.ndarray, rank: np.ndarray,
                    order: np.ndarray, edge_weight: np.ndarray,
                    p: int) -> np.ndarray:
    """Cut the elimination forest into ``p`` weight-balanced chunks.

    Processing vertices in elimination (post)order keeps each chunk a
    union of subtree fragments — Sheep's tree partitioning — while a
    greedy budget rollover keeps edge counts balanced.
    """
    n = len(parent)
    total = int(edge_weight.sum())
    budget = max(1, int(np.ceil(total / p)))
    chunk = np.full(n, -1, dtype=np.int64)
    current, acc = 0, 0
    for v in order:
        chunk[v] = current
        acc += int(edge_weight[v])
        if acc >= budget and current < p - 1:
            current += 1
            acc = 0
    return chunk
