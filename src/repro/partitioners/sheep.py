"""Sheep — elimination-tree edge partitioner (Margo & Seltzer [35]).

Sheep translates the graph into an *elimination tree* and partitions
the tree instead of the graph:

1. order vertices by (approximate minimum) degree — the elimination
   order; low-degree vertices become deep leaves, hubs end up near the
   root;
2. build the elimination tree over the original edges: each vertex's
   parent is its lowest-ranked higher neighbour (the standard
   fill-in-free approximation Sheep's distributed variant also uses);
3. map every edge to its lower-ranked endpoint (the tree node that
   "eliminates" the edge);
4. cut the tree into ``|P|`` edge-weight-balanced connected chunks by
   greedy postorder packing, and give each edge its node's chunk.

The paper's critique — Sheep shines on graphs whose elimination
structure is shallow (webs, Twitter) and falls behind on dense socials
(Orkut, Pokec) — is a property of this construction and carries over.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph, adjacency_slots
from repro.kernels import validate_kernel
from repro.partitioners.base import EdgePartition, Partitioner

__all__ = ["SheepPartitioner"]


class SheepPartitioner(Partitioner):
    """Elimination-tree partitioning with postorder chunking.

    ``kernel="vectorized"`` (default) computes the elimination order
    with batched pops of non-interacting minima
    (:func:`_min_degree_order`); ``"python"`` keeps the encoded-int
    sequential heap (:func:`_min_degree_order_python`).  The two are
    pinned rank-identical by the vertex-partitioner test suite.
    """

    name = "sheep"

    def __init__(self, num_partitions: int, seed: int = 0,
                 kernel: str = "vectorized"):
        super().__init__(num_partitions, seed)
        self.kernel = validate_kernel(kernel)

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        n, p = graph.num_vertices, self.num_partitions
        if graph.num_edges == 0:
            return EdgePartition(graph, p,
                                 np.empty(0, dtype=np.int64),
                                 method=self.name)

        if self.kernel == "python":
            rank = _min_degree_order_python(graph)
        else:
            rank = _min_degree_order(graph)
        order = np.argsort(rank)  # order[i] = vertex with rank i

        # Parent = lowest-ranked neighbour with higher rank.  Ranks are
        # a permutation, so the row-wise minimum over masked neighbour
        # ranks picks a unique vertex; empty and all-lower rows stay -1.
        nbr_rank = rank[graph.indices]
        own_rank = np.repeat(rank, graph.degrees())
        cand = np.where(nbr_rank > own_rank, nbr_rank, n)   # n = +inf
        parent = np.full(n, -1, dtype=np.int64)
        rows = np.flatnonzero(np.diff(graph.indptr) > 0)
        if len(rows):
            # Empty rows occupy no slots, so consecutive non-empty row
            # starts delimit exactly the per-row segments.
            mins = np.minimum.reduceat(cand, graph.indptr[rows])
            valid = mins < n
            parent[rows[valid]] = order[mins[valid]]

        # Edge -> its lower-ranked endpoint (the eliminating node).
        u_col, v_col = graph.edges[:, 0], graph.edges[:, 1]
        owner = np.where(rank[u_col] < rank[v_col], u_col, v_col)
        edge_weight = np.bincount(owner, minlength=n).astype(np.int64)

        chunk = _postorder_pack(parent, rank, order, edge_weight, p)
        assignment = chunk[owner]
        return EdgePartition(graph, p, assignment, method=self.name)


def _min_degree_order(graph: CSRGraph) -> np.ndarray:
    """Approximate minimum-degree elimination ranks, batched.

    The heap-based walk pops ⟨degree, id⟩ minima one at a time; this
    version pops whole *batches* per round and stays pop-for-pop
    identical to it.  Round structure: let ``d0`` be the current
    minimum alive degree and ``C`` the alive vertices at ``d0`` in id
    order — the heap would pop ``C`` left to right *unless* a pop's
    decrements inject a smaller key mid-run.  Exactly two events can do
    that, and each yields an exact truncation point:

    * an edge inside ``C`` — the earlier endpoint's pop drops the later
      one below ``d0``, so the batch ends right after the earlier one
      (truncate at ``min(position) + 1`` per such edge);
    * an outside neighbour ``w`` with ``degree[w] - d0`` of its
      ``C``-neighbours inside the batch — its degree reaches ``d0``
      at its ``(degree[w] - d0)``-th ``C``-neighbour's pop, so the
      batch ends right after that pop.

    The batch is ``C`` clipped to the smallest truncation point
    (always >= 1, so every round progresses); batch members are then
    pairwise non-adjacent, their ranks assign in id order, and every
    surviving neighbour's degree drops by its batch-neighbour count in
    one scatter-add.  Candidates live in lazy degree buckets (vertices
    re-enter a bucket when a decrement lands them on its level;
    entries are validated on consumption), so a round's cost tracks
    the vertices it touches, never the whole graph, and the candidate
    window adapts to the recent batch size (clipping ``C`` is exact —
    truncation points beyond the window are irrelevant to a batch
    inside it).  On skewed graphs the low-degree fringe forms huge
    independent batches; on meshes the truncations shrink batches
    toward the sequential walk.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    degree = graph.degrees().astype(np.int64)
    eliminated = np.zeros(n, dtype=bool)
    rank = np.empty(n, dtype=np.int64)
    INF = np.iinfo(np.int64).max
    pos_of = np.full(n, INF, dtype=np.int64)   # position in C, INF outside

    #: lazy candidate buckets: degree level -> list of vertex-id chunks
    buckets: dict[int, list] = {}
    init_order = np.argsort(degree, kind="stable")
    degs = degree[init_order]
    level_starts = np.flatnonzero(np.concatenate(([True],
                                                  degs[1:] != degs[:-1])))
    level_ends = np.concatenate((level_starts[1:], [n]))
    for s, e in zip(level_starts.tolist(), level_ends.tolist()):
        buckets[int(degs[s])] = [init_order[s:e]]

    d0 = 0
    next_rank = 0
    cap = 1 << 14
    rounds = popped_window = 0
    while next_rank < n:
        # Lowest level with a live candidate (lazy validation: entries
        # whose vertex was eliminated or decremented away are dropped).
        while True:
            chunks = buckets.get(d0)
            if not chunks:
                buckets.pop(d0, None)
                d0 += 1
                continue
            single = len(chunks) == 1
            arr = chunks[0] if single else np.concatenate(chunks)
            arr = arr[~eliminated[arr] & (degree[arr] == d0)]
            if not len(arr):
                del buckets[d0]
                d0 += 1
                continue
            # Chunks are individually sorted-unique and pairwise
            # disjoint (a degree only ever decreases, so a vertex
            # enters each level at most once); a lone chunk survives
            # filtering still sorted.
            C_full = arr if single else np.unique(arr)
            break
        C = C_full[:cap] if len(C_full) > cap else C_full
        limit = len(C)
        if d0 > 0 and len(C) > 1:
            pos_of[C] = np.arange(len(C))
            slot_idx, counts = adjacency_slots(indptr, C)
            nbrs = indices[slot_idx]
            alive = ~eliminated[nbrs]
            nbrs = nbrs[alive]
            rows = np.repeat(np.arange(len(C), dtype=np.int64),
                             counts)[alive]
            nbr_pos = pos_of[nbrs]
            inside = nbr_pos != INF
            if inside.any():
                pair_cut = np.minimum(rows[inside], nbr_pos[inside]) + 1
                limit = min(limit, int(pair_cut.min()))
            outside = ~inside
            if outside.any():
                w_out = nbrs[outside]
                r_out = rows[outside]
                # Per outside vertex: position of its (degree - d0)-th
                # C-neighbour, via one (vertex, position) sort.  A
                # candidate clipped off the window (degree == d0,
                # need == 0) drops *below* d0 at its first
                # batch-neighbour pop, so it counts as need 1.
                order = np.lexsort((r_out, w_out))
                w_s, r_s = w_out[order], r_out[order]
                starts = np.flatnonzero(
                    np.concatenate(([True], w_s[1:] != w_s[:-1])))
                lens = np.diff(np.concatenate((starts, [len(w_s)])))
                need = np.maximum(degree[w_s[starts]] - d0, 1)
                hit = need <= lens
                if hit.any():
                    trig = r_s[starts[hit] + need[hit] - 1] + 1
                    limit = min(limit, int(trig.min()))
            pos_of[C] = INF
        B = C[:max(1, limit)]
        rank[B] = next_rank + np.arange(len(B))
        next_rank += len(B)
        eliminated[B] = True
        buckets[d0] = [C_full[len(B):]] if len(B) < len(C_full) else []
        slot_idx, _ = adjacency_slots(indptr, B)
        nb = indices[slot_idx]
        nb = nb[~eliminated[nb]]
        if len(nb):
            np.subtract.at(degree, nb, 1)
            # Re-bucket the decremented vertices at their new levels.
            nbu = np.unique(nb)
            ndeg = degree[nbu]
            order_d = np.argsort(ndeg, kind="stable")
            nds = ndeg[order_d]
            st = np.flatnonzero(np.concatenate(([True],
                                                nds[1:] != nds[:-1])))
            en = np.concatenate((st[1:], [len(nds)]))
            for s, e in zip(st.tolist(), en.tolist()):
                lvl = int(nds[s])
                buckets.setdefault(lvl, []).append(nbu[order_d[s:e]])
                if lvl < d0:
                    d0 = lvl
        cap = max(64, min(1 << 14, 4 * len(B)))
        # Past the low-degree fringe, truncations shrink batches to a
        # handful of pops — inherently sequential peeling, where
        # per-round bookkeeping loses to the plain heap.  Once the
        # rolling batch size degrades, hand the remainder to the heap
        # walk (an exact continuation from any consistent state).
        rounds += 1
        popped_window += len(B)
        if rounds == 16:
            if popped_window < 16 * 32:
                _heap_finish(graph, degree, eliminated, rank, next_rank)
                return rank
            rounds = popped_window = 0
    return rank


def _heap_finish(graph: CSRGraph, degree: np.ndarray,
                 eliminated: np.ndarray, rank: np.ndarray,
                 next_rank: int) -> None:
    """Continue the elimination sequentially from a mid-run state with
    the encoded-int heap (the ``"python"`` kernel's loop body)."""
    n = graph.num_vertices
    indptr, indices = graph.indptr, graph.indices
    nn = np.int64(n)
    alive = np.flatnonzero(~eliminated)
    heap = (degree[alive] * nn + alive).tolist()
    heapq.heapify(heap)
    while heap:
        key = heapq.heappop(heap)
        v = key % n
        if eliminated[v]:
            continue
        if key // n != degree[v]:   # stale entry: requeue at the live key
            heapq.heappush(heap, int(degree[v]) * n + v)
            continue
        eliminated[v] = True
        rank[v] = next_rank
        next_rank += 1
        nbrs = indices[indptr[v]:indptr[v + 1]]
        live = nbrs[~eliminated[nbrs]]
        if len(live):
            degree[live] -= 1
            for k in (degree[live] * nn + live).tolist():
                heapq.heappush(heap, k)


def _min_degree_order_python(graph: CSRGraph) -> np.ndarray:
    """Approximate minimum-degree elimination ranks (flat-array heap).

    Degrees are decremented as neighbours get eliminated, without
    fill-in edges — the same approximation Sheep's streaming
    translation makes.

    The elimination is inherently sequential (each pop depends on the
    decrements of every earlier one), but all per-vertex state lives in
    flat int64 arrays and the heap holds *encoded* keys
    ``degree * n + vertex`` — plain machine ints, whose ordering equals
    the reference's lexicographic ⟨degree, vertex⟩ tuples (ties to the
    lowest id) without allocating a tuple per entry.  Neighbour
    filtering, degree decrements, and key construction per elimination
    are single vectorized operations; canonical edges are deduplicated,
    so each surviving neighbour is decremented exactly once per batch,
    matching the reference's per-slot walk.

    The loop body is :func:`_heap_finish` from a fresh state — the
    same walk the batched kernel continues with mid-run, so the two
    kernels share one copy of the pop/requeue semantics.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    degree = graph.degrees().astype(np.int64)
    eliminated = np.zeros(n, dtype=bool)
    rank = np.zeros(n, dtype=np.int64)
    _heap_finish(graph, degree, eliminated, rank, 0)
    return rank


def _postorder_pack(parent: np.ndarray, rank: np.ndarray,
                    order: np.ndarray, edge_weight: np.ndarray,
                    p: int) -> np.ndarray:
    """Cut the elimination forest into ``p`` weight-balanced chunks.

    Processing vertices in elimination (post)order keeps each chunk a
    union of subtree fragments — Sheep's tree partitioning — while a
    greedy budget rollover keeps edge counts balanced.
    """
    n = len(parent)
    total = int(edge_weight.sum())
    budget = max(1, int(np.ceil(total / p)))
    chunk = np.full(n, -1, dtype=np.int64)
    current, acc = 0, 0
    for v in order:
        chunk[v] = current
        acc += int(edge_weight[v])
        if acc >= budget and current < p - 1:
            current += 1
            acc = 0
    return chunk
