"""PowerGraph's greedy ("Oblivious") streaming edge partitioner [16].

Edges arrive as a stream; each is placed by the classic PowerGraph
greedy rules using only the replica sets accumulated so far:

1. if the endpoints' replica sets intersect, pick the least-loaded
   partition in the intersection;
2. else if both endpoints have replicas, pick the least-loaded
   partition among the replicas of the endpoint with more remaining
   edges (so the vertex that will need more placements keeps its
   options open);
3. else if one endpoint has replicas, pick its least-loaded partition;
4. else pick the globally least-loaded partition.

"Oblivious" refers to running this greedy independently per machine
without synchronising replica tables; as is standard in partitioning
studies (and optimistic toward the baseline), we simulate the
single-stream variant.

Kernels: ``"vectorized"`` expresses the rule cascade as masked
least-loaded selection over membership rows inside the chunked scoring
driver of :mod:`repro.core.streaming`; ``"python"`` is the per-edge
loop.  The pair is pinned bit-identical by
``tests/test_streaming_equivalence.py``, but unlike the scored
baselines the *reference stays the default here*: Oblivious's per-edge
work is a couple of small-set probes, which beat the chunked NumPy
walk at every measured |P| (the ``oblivious`` row in
``BENCH_kernels.json`` tracks the gap honestly).  The vectorized
kernel remains available for the substrate's packed-membership path
and uniform testing.
"""

from __future__ import annotations

import numpy as np

from repro.core.streaming import EdgeStreamScorer, StreamingState, \
    run_chunked_stream
from repro.graph.csr import CSRGraph
from repro.partitioners.base import EdgePartition, StreamingEdgePartitioner

__all__ = ["ObliviousPartitioner"]


class _ObliviousScorer(EdgeStreamScorer):
    """Rule cascade as one masked least-loaded selection per edge.

    Every rule reduces to "least-loaded partition in a candidate pool,
    ties to the smaller id" — exactly an argmin over
    ``load * |P| + id`` keys restricted to the pool mask.
    """

    _BIG = np.iinfo(np.int64).max

    def __init__(self, state, u, v, remaining):
        super().__init__(state, u, v)
        self.remaining = remaining

    def window_static(self, sl):
        u, v = self.u[sl], self.v[sl]
        mem_u = self.state.member_rows(u)
        mem_v = self.state.member_rows(v)
        inter = mem_u & mem_v
        has_i = inter.any(axis=1)
        has_u = mem_u.any(axis=1)
        has_v = mem_v.any(axis=1)
        favour_u = self.remaining[u] >= self.remaining[v]
        pool = np.where(has_i[:, None], inter,
                        np.where((has_u & has_v)[:, None],
                                 np.where(favour_u[:, None], mem_u, mem_v),
                                 mem_u | mem_v))
        pool[~(has_u | has_v)] = True     # rule 4: every partition
        return [pool, favour_u]

    def pick(self, aux, rows, loads_mat):
        p = self.state.num_partitions
        key = loads_mat * p + np.arange(p, dtype=np.int64)[None, :]
        return np.where(aux[0][rows], key, self._BIG).argmin(axis=1)

    def _pool_row(self, uk, vk):
        rows = self.state.member.rows_bool(np.array([uk, vk]))
        mu, mv = rows[0], rows[1]
        inter = mu & mv
        if inter.any():
            return inter
        if mu.any() and mv.any():
            return mu if self.remaining[uk] >= self.remaining[vk] else mv
        if mu.any():
            return mu
        if mv.any():
            return mv
        return np.ones(self.state.num_partitions, dtype=bool)

    def tail_walk(self, sl, aux, start, stop):
        pool, favour = aux
        us, vs = self.u[sl], self.v[sl]
        state = self.state
        member = state.member
        remaining = self.remaining
        changed = self._changed
        p = state.num_partitions
        loads = state.loads                      # live, walker-committed
        key = loads * p + np.arange(p, dtype=np.int64)
        BIG = self._BIG
        out = np.empty(stop - start, dtype=np.int64)
        for k in range(start, stop):
            uk = int(us[k])
            vk = int(vs[k])
            # Rule 2's remaining-degree comparison drifts with every
            # incident placement, so re-derive the pool row whenever a
            # membership bit flipped *or* the comparison flipped.
            if (uk in changed or vk in changed
                    or (remaining[uk] >= remaining[vk]) != favour[k]):
                pool[k] = self._pool_row(uk, vk)
            t = int(np.where(pool[k], key, BIG).argmin())
            out[k - start] = t
            key[t] += p
            loads[t] += 1
            remaining[uk] -= 1
            remaining[vk] -= 1
            if not member.get_bit(uk, t):
                member.set_bit(uk, t)
                changed.add(uk)
            if not member.get_bit(vk, t):
                member.set_bit(vk, t)
                changed.add(vk)
        return out

    def apply(self, u, v, targets):
        self.remaining[u] -= 1
        self.remaining[v] -= 1


class ObliviousPartitioner(StreamingEdgePartitioner):
    """Single-stream PowerGraph greedy."""

    name = "oblivious"

    def __init__(self, num_partitions: int, seed: int = 0,
                 shuffle: bool = True, kernel: str = "python"):
        # Default is the reference: measured faster than the chunked
        # walk at every |P| (see module docstring).
        super().__init__(num_partitions, seed, shuffle=shuffle,
                         kernel=kernel)

    def _partition_vectorized(self, graph: CSRGraph) -> EdgePartition:
        order = self.stream_order(graph.num_edges)
        state = StreamingState(graph.num_vertices, self.num_partitions)
        scorer = _ObliviousScorer(state,
                                  graph.edges[order, 0],
                                  graph.edges[order, 1],
                                  graph.degrees().astype(np.int64).copy())
        assignment = np.empty(graph.num_edges, dtype=np.int64)
        assignment[order] = run_chunked_stream(scorer)
        return EdgePartition(graph, self.num_partitions, assignment,
                             method=self.name)

    def _partition_python(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        order = self.stream_order(graph.num_edges)

        replicas = [set() for _ in range(graph.num_vertices)]
        loads = np.zeros(p, dtype=np.int64)
        remaining = graph.degrees().astype(np.int64).copy()
        assignment = np.empty(graph.num_edges, dtype=np.int64)

        for eid in order:
            u, v = graph.edges[eid]
            ru, rv = replicas[u], replicas[v]
            inter = ru & rv
            if inter:
                target = _least_loaded(inter, loads)
            elif ru and rv:
                # Rule 2: favour the endpoint with more remaining edges.
                pool = ru if remaining[u] >= remaining[v] else rv
                target = _least_loaded(pool, loads)
            elif ru or rv:
                target = _least_loaded(ru or rv, loads)
            else:
                target = int(np.argmin(loads))
            assignment[eid] = target
            ru.add(target)
            rv.add(target)
            loads[target] += 1
            remaining[u] -= 1
            remaining[v] -= 1

        return EdgePartition(graph, p, assignment, method=self.name)


def _least_loaded(candidates, loads: np.ndarray) -> int:
    """Least-loaded partition id among ``candidates`` (ties -> smaller id)."""
    best, best_load = -1, None
    for c in sorted(candidates):
        if best_load is None or loads[c] < best_load:
            best, best_load = c, loads[c]
    return best
