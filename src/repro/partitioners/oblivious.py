"""PowerGraph's greedy ("Oblivious") streaming edge partitioner [16].

Edges arrive as a stream; each is placed by the classic PowerGraph
greedy rules using only the replica sets accumulated so far:

1. if the endpoints' replica sets intersect, pick the least-loaded
   partition in the intersection;
2. else if both endpoints have replicas, pick the least-loaded
   partition among the replicas of the endpoint with more remaining
   edges (so the vertex that will need more placements keeps its
   options open);
3. else if one endpoint has replicas, pick its least-loaded partition;
4. else pick the globally least-loaded partition.

"Oblivious" refers to running this greedy independently per machine
without synchronising replica tables; as is standard in partitioning
studies (and optimistic toward the baseline), we simulate the
single-stream variant.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.base import EdgePartition, Partitioner

__all__ = ["ObliviousPartitioner"]


class ObliviousPartitioner(Partitioner):
    """Single-stream PowerGraph greedy."""

    name = "oblivious"

    def __init__(self, num_partitions: int, seed: int = 0,
                 shuffle: bool = True):
        super().__init__(num_partitions, seed)
        self.shuffle = shuffle

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        order = np.arange(graph.num_edges)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            order = rng.permutation(order)

        replicas = [set() for _ in range(graph.num_vertices)]
        loads = np.zeros(p, dtype=np.int64)
        remaining = graph.degrees().astype(np.int64).copy()
        assignment = np.empty(graph.num_edges, dtype=np.int64)

        for eid in order:
            u, v = graph.edges[eid]
            ru, rv = replicas[u], replicas[v]
            inter = ru & rv
            if inter:
                target = _least_loaded(inter, loads)
            elif ru and rv:
                # Rule 2: favour the endpoint with more remaining edges.
                pool = ru if remaining[u] >= remaining[v] else rv
                target = _least_loaded(pool, loads)
            elif ru or rv:
                target = _least_loaded(ru or rv, loads)
            else:
                target = int(np.argmin(loads))
            assignment[eid] = target
            ru.add(target)
            rv.add(target)
            loads[target] += 1
            remaining[u] -= 1
            remaining[v] -= 1

        return EdgePartition(graph, p, assignment, method=self.name)


def _least_loaded(candidates, loads: np.ndarray) -> int:
    """Least-loaded partition id among ``candidates`` (ties -> smaller id)."""
    best, best_load = -1, None
    for c in sorted(candidates):
        if best_load is None or loads[c] < best_load:
            best, best_load = c, loads[c]
    return best
