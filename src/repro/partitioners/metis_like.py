"""Multilevel vertex partitioner in the ParMETIS family [23].

The classic three-phase scheme:

1. **Coarsening** — repeated heavy-edge matching contracts matched
   pairs into supervertices (vertex weights accumulate, parallel edges
   merge their weights) until the graph is small;
2. **Initial partitioning** — greedy region growing on the coarsest
   graph, balanced by vertex weight;
3. **Uncoarsening + refinement** — labels are projected back level by
   level and a boundary Kernighan–Lin/FM pass moves vertices whose gain
   (reduction in weighted edge cut) is positive, respecting the balance
   constraint.

The paper's observations about this family are structural — high
memory (every coarsening level keeps a graph copy; we surface that via
``extra["coarse_levels_bytes"]``) and strong quality on low-degree
graphs — and both carry over to this reimplementation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.base import Partitioner, VertexPartition
from repro.partitioners.vertex_to_edge import vertex_to_edge_partition

__all__ = ["MetisLikePartitioner"]


class _Level:
    """One coarsening level: weighted adjacency + projection map."""

    def __init__(self, adjacency: list[dict], vertex_weights: np.ndarray,
                 coarse_of: np.ndarray | None):
        self.adjacency = adjacency          # adjacency[v] = {u: edge weight}
        self.vertex_weights = vertex_weights
        self.coarse_of = coarse_of          # fine vertex -> coarse vertex

    @property
    def n(self) -> int:
        return len(self.adjacency)

    def nbytes(self) -> int:
        """Rough resident size of this level (for the memory model)."""
        entries = sum(len(a) for a in self.adjacency)
        return entries * 24 + self.vertex_weights.nbytes


class MetisLikePartitioner(Partitioner):
    """Multilevel heavy-edge-matching + FM-refinement vertex partitioner."""

    name = "metis_like"

    def __init__(self, num_partitions: int, seed: int = 0,
                 coarsen_to: int | None = None, balance: float = 1.05,
                 refine_passes: int = 4):
        super().__init__(num_partitions, seed)
        self.coarsen_to = coarsen_to
        self.balance = balance
        self.refine_passes = refine_passes

    def _partition(self, graph: CSRGraph):
        vp = self.partition_vertices(graph)
        return vertex_to_edge_partition(vp, seed=self.seed)

    def partition_vertices(self, graph: CSRGraph) -> VertexPartition:
        rng = np.random.default_rng(self.seed)
        target = self.coarsen_to or max(8 * self.num_partitions, 64)

        levels = [_base_level(graph)]
        while levels[-1].n > target:
            nxt = _coarsen(levels[-1], rng)
            if nxt.n >= levels[-1].n * 0.95:  # matching stalled
                break
            levels.append(nxt)

        labels = _region_grow(levels[-1], self.num_partitions,
                              self.balance, rng)
        for level_idx in range(len(levels) - 1, 0, -1):
            fine = levels[level_idx - 1]
            coarse_of = levels[level_idx].coarse_of
            labels = labels[coarse_of]
            labels = _fm_refine(fine, labels, self.num_partitions,
                                self.balance, self.refine_passes, rng)
        if len(levels) == 1:
            labels = _fm_refine(levels[0], labels, self.num_partitions,
                                self.balance, self.refine_passes, rng)

        total_bytes = sum(level.nbytes() for level in levels)
        return VertexPartition(
            graph, self.num_partitions, labels, method=self.name,
            iterations=len(levels),
            extra={"coarse_levels": len(levels),
                   "coarse_levels_bytes": total_bytes})


def _base_level(graph: CSRGraph) -> _Level:
    adjacency: list[dict] = [dict() for _ in range(graph.num_vertices)]
    for u, v in graph.edges:
        adjacency[u][int(v)] = adjacency[u].get(int(v), 0) + 1
        adjacency[v][int(u)] = adjacency[v].get(int(u), 0) + 1
    weights = np.ones(graph.num_vertices, dtype=np.int64)
    return _Level(adjacency, weights, None)


def _coarsen(level: _Level, rng: np.random.Generator) -> _Level:
    """Heavy-edge matching contraction."""
    n = level.n
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] != -1:
            continue
        best, best_w = -1, 0
        for u, w in level.adjacency[v].items():
            if match[u] == -1 and u != v and w > best_w:
                best, best_w = u, w
        if best != -1:
            match[v] = best
            match[best] = v
        else:
            match[v] = v  # unmatched: contracts alone

    coarse_of = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if coarse_of[v] != -1:
            continue
        coarse_of[v] = next_id
        partner = match[v]
        if partner != v and coarse_of[partner] == -1:
            coarse_of[partner] = next_id
        next_id += 1

    adjacency: list[dict] = [dict() for _ in range(next_id)]
    weights = np.zeros(next_id, dtype=np.int64)
    for v in range(n):
        cv = coarse_of[v]
        weights[cv] += level.vertex_weights[v]
        for u, w in level.adjacency[v].items():
            cu = coarse_of[u]
            if cu == cv:
                continue
            adjacency[cv][int(cu)] = adjacency[cv].get(int(cu), 0) + w
    return _Level(adjacency, weights, coarse_of)


def _region_grow(level: _Level, k: int, balance: float,
                 rng: np.random.Generator) -> np.ndarray:
    """Greedy balanced region growing for the initial partition."""
    n = level.n
    labels = np.full(n, -1, dtype=np.int64)
    total = int(level.vertex_weights.sum())
    capacity = balance * total / k
    loads = np.zeros(k, dtype=np.float64)

    seeds = rng.permutation(n)[:k]
    frontiers: list[list[int]] = [[] for _ in range(k)]
    for i, s in enumerate(seeds):
        if labels[s] == -1:
            labels[s] = i
            loads[i] += level.vertex_weights[s]
            frontiers[i].append(int(s))

    active = True
    while active:
        active = False
        for i in range(k):
            if loads[i] >= capacity or not frontiers[i]:
                continue
            v = frontiers[i].pop()
            for u in level.adjacency[v]:
                if labels[u] == -1 and loads[i] + level.vertex_weights[u] <= capacity:
                    labels[u] = i
                    loads[i] += level.vertex_weights[u]
                    frontiers[i].append(int(u))
            if frontiers[i]:
                active = True
    # Orphans (disconnected leftovers) go to the lightest part.
    for v in np.flatnonzero(labels == -1):
        i = int(np.argmin(loads))
        labels[v] = i
        loads[i] += level.vertex_weights[v]
    return labels


def _fm_refine(level: _Level, labels: np.ndarray, k: int, balance: float,
               passes: int, rng: np.random.Generator) -> np.ndarray:
    """Boundary FM: move vertices with positive cut gain, keep balance."""
    labels = labels.copy()
    total = int(level.vertex_weights.sum())
    capacity = balance * total / k
    loads = np.bincount(labels, weights=level.vertex_weights,
                        minlength=k).astype(np.float64)
    n = level.n
    order = np.arange(n)
    for _ in range(passes):
        rng.shuffle(order)
        moved = 0
        for v in order:
            adj = level.adjacency[v]
            if not adj:
                continue
            current = labels[v]
            gains = np.zeros(k, dtype=np.float64)
            internal = 0.0
            for u, w in adj.items():
                if labels[u] == current:
                    internal += w
                else:
                    gains[labels[u]] += w
            gains -= internal
            w_v = level.vertex_weights[v]
            gains[loads + w_v > capacity] = -np.inf
            gains[current] = 0.0
            target = int(np.argmax(gains))
            if gains[target] > 0 and target != current:
                labels[v] = target
                loads[current] -= w_v
                loads[target] += w_v
                moved += 1
        if moved == 0:
            break
    return labels
