"""Multilevel vertex partitioner in the ParMETIS family [23].

The classic three-phase scheme:

1. **Coarsening** — repeated heavy-edge matching contracts matched
   pairs into supervertices (vertex weights accumulate, parallel edges
   merge their weights) until the graph is small;
2. **Initial partitioning** — greedy region growing on the coarsest
   graph, balanced by vertex weight;
3. **Uncoarsening + refinement** — labels are projected back level by
   level and a boundary Kernighan–Lin/FM pass moves vertices whose gain
   (reduction in weighted edge cut) is positive, respecting the balance
   constraint.

The paper's observations about this family are structural — high
memory (every coarsening level keeps a whole weighted-graph copy; we
surface that via ``extra["coarse_levels_bytes"]``) and strong quality
on low-degree graphs — and both carry over to this reimplementation.

Levels are stored as CSR arrays (sorted neighbour rows, parallel
weight array) rather than the former adjacency-of-dicts: heavy-edge
matching scans flat rows, contraction is one sorted-key segment
reduction, and ``nbytes()`` prices the arrays actually held.  NOTE:
neighbour iteration order at coarse levels therefore changed from dict
insertion order to sorted order, which shifts matching tie-breaks and
hence assignments — the affected ``benchmarks/results/*.json`` entries
were regenerated deliberately (see CHANGES.md), per the ROADMAP's
CSR-row-order note.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.base import Partitioner, VertexPartition
from repro.partitioners.vertex_to_edge import vertex_to_edge_partition

__all__ = ["MetisLikePartitioner"]


class _Level:
    """One coarsening level: weighted CSR adjacency + projection map.

    ``indptr`` / ``nbr`` / ``wgt`` hold the symmetrised weighted
    adjacency with neighbour-sorted rows; ``coarse_of`` maps this
    level's *finer* predecessor onto it (None for the base level).
    """

    def __init__(self, indptr: np.ndarray, nbr: np.ndarray,
                 wgt: np.ndarray, vertex_weights: np.ndarray,
                 coarse_of: np.ndarray | None):
        self.indptr = indptr
        self.nbr = nbr
        self.wgt = wgt
        self.vertex_weights = vertex_weights
        self.coarse_of = coarse_of          # fine vertex -> coarse vertex

    @property
    def n(self) -> int:
        return len(self.indptr) - 1

    def row(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbour ids, edge weights) of ``v``, neighbour-sorted."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.nbr[lo:hi], self.wgt[lo:hi]

    def nbytes(self) -> int:
        """Resident size of this level's graph copy (the memory the
        paper's multilevel critique is about)."""
        return (self.indptr.nbytes + self.nbr.nbytes + self.wgt.nbytes
                + self.vertex_weights.nbytes)


class MetisLikePartitioner(Partitioner):
    """Multilevel heavy-edge-matching + FM-refinement vertex partitioner."""

    name = "metis_like"

    def __init__(self, num_partitions: int, seed: int = 0,
                 coarsen_to: int | None = None, balance: float = 1.05,
                 refine_passes: int = 4):
        super().__init__(num_partitions, seed)
        self.coarsen_to = coarsen_to
        self.balance = balance
        self.refine_passes = refine_passes

    def _partition(self, graph: CSRGraph):
        vp = self.partition_vertices(graph)
        return vertex_to_edge_partition(vp, seed=self.seed)

    def partition_vertices(self, graph: CSRGraph) -> VertexPartition:
        rng = np.random.default_rng(self.seed)
        target = self.coarsen_to or max(8 * self.num_partitions, 64)

        levels = [_base_level(graph)]
        while levels[-1].n > target:
            nxt = _coarsen(levels[-1], rng)
            if nxt.n >= levels[-1].n * 0.95:  # matching stalled
                break
            levels.append(nxt)

        labels = _region_grow(levels[-1], self.num_partitions,
                              self.balance, rng)
        for level_idx in range(len(levels) - 1, 0, -1):
            fine = levels[level_idx - 1]
            coarse_of = levels[level_idx].coarse_of
            labels = labels[coarse_of]
            labels = _fm_refine(fine, labels, self.num_partitions,
                                self.balance, self.refine_passes, rng)
        if len(levels) == 1:
            labels = _fm_refine(levels[0], labels, self.num_partitions,
                                self.balance, self.refine_passes, rng)

        total_bytes = sum(level.nbytes() for level in levels)
        return VertexPartition(
            graph, self.num_partitions, labels, method=self.name,
            iterations=len(levels),
            extra={"coarse_levels": len(levels),
                   "coarse_levels_bytes": total_bytes})


def _base_level(graph: CSRGraph) -> _Level:
    """The input graph as a unit-weight level (its own CSR copy — each
    level owns its arrays, which is what the memory model prices)."""
    weights = np.ones(graph.num_vertices, dtype=np.int64)
    return _Level(graph.indptr.copy(), graph.indices.copy(),
                  np.ones(2 * graph.num_edges, dtype=np.int64),
                  weights, None)


def _coarsen(level: _Level, rng: np.random.Generator) -> _Level:
    """Heavy-edge matching contraction."""
    n = level.n
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] != -1:
            continue
        nbrs, wgts = level.row(v)
        free = (match[nbrs] == -1) & (nbrs != v)
        if free.any():
            # Heaviest free neighbour; ties -> first in row order
            # (neighbour-sorted, so the smallest id).
            cand = np.where(free, wgts, 0)
            best = int(nbrs[np.argmax(cand)])
            match[v] = best
            match[best] = v
        else:
            match[v] = v  # unmatched: contracts alone

    # Pairs contract onto ids assigned in ascending order of their
    # smaller constituent — the order a 0..n-1 first-seen sweep yields.
    rep = np.minimum(np.arange(n, dtype=np.int64), match)
    _, coarse_of = np.unique(rep, return_inverse=True)
    next_id = int(coarse_of.max()) + 1 if n else 0

    # Contract the weighted adjacency: map both endpoints of every slot,
    # drop intra-pair slots, and merge parallel edges with one sorted
    # segment reduction.  Rows come out neighbour-sorted.
    counts = np.diff(level.indptr)
    cu = np.repeat(coarse_of, counts)
    cv = coarse_of[level.nbr]
    keep = cu != cv
    key = cu[keep] * next_id + cv[keep]
    if len(key):
        order_k = np.argsort(key, kind="stable")
        key_s = key[order_k]
        wgt_s = level.wgt[keep][order_k]
        seg = np.flatnonzero(np.concatenate(([True],
                                             key_s[1:] != key_s[:-1])))
        uniq = key_s[seg]
        merged = np.add.reduceat(wgt_s, seg)
    else:
        uniq = key
        merged = level.wgt[:0]

    indptr = np.zeros(next_id + 1, dtype=np.int64)
    np.cumsum(np.bincount(uniq // next_id, minlength=next_id),
              out=indptr[1:])
    weights = np.bincount(coarse_of, weights=level.vertex_weights,
                          minlength=next_id).astype(np.int64)
    return _Level(indptr, uniq % next_id, merged, weights, coarse_of)


def _region_grow(level: _Level, k: int, balance: float,
                 rng: np.random.Generator) -> np.ndarray:
    """Greedy balanced region growing for the initial partition."""
    n = level.n
    labels = np.full(n, -1, dtype=np.int64)
    total = int(level.vertex_weights.sum())
    capacity = balance * total / k
    loads = np.zeros(k, dtype=np.float64)

    seeds = rng.permutation(n)[:k]
    frontiers: list[list[int]] = [[] for _ in range(k)]
    for i, s in enumerate(seeds):
        if labels[s] == -1:
            labels[s] = i
            loads[i] += level.vertex_weights[s]
            frontiers[i].append(int(s))

    active = True
    while active:
        active = False
        for i in range(k):
            if loads[i] >= capacity or not frontiers[i]:
                continue
            v = frontiers[i].pop()
            for u in level.row(v)[0]:
                if labels[u] == -1 and loads[i] + level.vertex_weights[u] <= capacity:
                    labels[u] = i
                    loads[i] += level.vertex_weights[u]
                    frontiers[i].append(int(u))
            if frontiers[i]:
                active = True
    # Orphans (disconnected leftovers) go to the lightest part.
    for v in np.flatnonzero(labels == -1):
        i = int(np.argmin(loads))
        labels[v] = i
        loads[i] += level.vertex_weights[v]
    return labels


def _fm_refine(level: _Level, labels: np.ndarray, k: int, balance: float,
               passes: int, rng: np.random.Generator) -> np.ndarray:
    """Boundary FM: move vertices with positive cut gain, keep balance."""
    labels = labels.copy()
    total = int(level.vertex_weights.sum())
    capacity = balance * total / k
    loads = np.bincount(labels, weights=level.vertex_weights,
                        minlength=k).astype(np.float64)
    n = level.n
    order = np.arange(n)
    for _ in range(passes):
        rng.shuffle(order)
        moved = 0
        for v in order:
            nbrs, wgts = level.row(v)
            if not len(nbrs):
                continue
            current = labels[v]
            # Weighted neighbour-label histogram; the gain of staying
            # (the internal weight) is subtracted from every move.
            gains = np.bincount(labels[nbrs], weights=wgts,
                                minlength=k)
            gains -= gains[current]
            w_v = level.vertex_weights[v]
            gains[loads + w_v > capacity] = -np.inf
            gains[current] = 0.0
            target = int(np.argmax(gains))
            if gains[target] > 0 and target != current:
                labels[v] = target
                loads[current] -= w_v
                loads[target] += w_v
                moved += 1
        if moved == 0:
            break
    return labels
