"""Common interfaces for all partitioners.

Every partitioner — the baselines here and Distributed NE in
:mod:`repro.core` — consumes a :class:`~repro.graph.csr.CSRGraph` and
produces an :class:`EdgePartition`: an assignment of every canonical
edge to one of ``num_partitions`` parts, plus the run metadata the
benchmarks report (iterations, elapsed time, cluster statistics where
applicable).

Vertex partitioners (:mod:`repro.partitioners.spinner`,
``metis_like``, ``xtrapulp``) produce a :class:`VertexPartition`, which
§7.1 of the paper converts to an edge partition by assigning each edge
uniformly to one of its endpoints' parts —
:func:`repro.partitioners.vertex_to_edge.vertex_to_edge_partition`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels import validate_kernel
from repro.metrics.quality import (
    edge_balance,
    replication_factor,
    validate_assignment,
    vertex_balance,
)
from repro.observability.metrics import get_registry

__all__ = ["EdgePartition", "VertexPartition", "Partitioner",
           "StreamingEdgePartitioner", "timed_partition"]


@dataclass
class EdgePartition:
    """Result of an edge partitioning run.

    Attributes
    ----------
    graph:
        The partitioned graph.
    num_partitions:
        ``|P|``.
    assignment:
        int64 array, one partition id per canonical edge.
    method:
        Human-readable partitioner name.
    elapsed_seconds:
        Wall-clock partitioning time (excludes graph generation/loading,
        matching the paper's measurement protocol).
    iterations:
        Number of global iterations/barriers, when the method is
        iterative (0 for one-shot hashing).
    extra:
        Free-form per-method metadata (e.g. cluster stats summaries).
    """

    graph: CSRGraph
    num_partitions: int
    assignment: np.ndarray
    method: str = ""
    elapsed_seconds: float = 0.0
    iterations: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        validate_assignment(self.graph, self.assignment, self.num_partitions)

    # -- convenience metrics -------------------------------------------
    def replication_factor(self) -> float:
        """Equation 1's RF for this partition."""
        return replication_factor(self.graph, self.assignment,
                                  self.num_partitions)

    def edge_balance(self) -> float:
        return edge_balance(self.assignment, self.num_partitions)

    def vertex_balance(self) -> float:
        return vertex_balance(self.graph, self.assignment,
                              self.num_partitions)

    def edges_of(self, p: int) -> np.ndarray:
        """Canonical ``(k, 2)`` edge array of partition ``p``."""
        return self.graph.edges[self.assignment == p]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EdgePartition(method={self.method!r}, "
                f"P={self.num_partitions}, RF={self.replication_factor():.3f})")


@dataclass
class VertexPartition:
    """Result of a vertex (edge-cut) partitioning run."""

    graph: CSRGraph
    num_partitions: int
    assignment: np.ndarray  # one partition id per vertex
    method: str = ""
    elapsed_seconds: float = 0.0
    iterations: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if self.assignment.shape != (self.graph.num_vertices,):
            raise ValueError("vertex assignment must have one entry per vertex")
        if self.graph.num_vertices and (
                self.assignment.min() < 0
                or self.assignment.max() >= self.num_partitions):
            raise ValueError("assignment contains out-of-range partition ids")


class Partitioner:
    """Base class: subclasses implement :meth:`_partition`.

    ``partition`` wraps the implementation with wall-clock timing so
    every method reports elapsed time uniformly.
    """

    #: registry name, overridden by subclasses
    name = "base"

    def __init__(self, num_partitions: int, seed: int = 0):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.seed = seed

    def partition(self, graph: CSRGraph) -> EdgePartition:
        """Partition ``graph`` and return a timed :class:`EdgePartition`."""
        start = time.perf_counter()
        result = self._partition(graph)
        result.elapsed_seconds = time.perf_counter() - start
        registry = get_registry()
        if registry.enabled:
            registry.counter_inc("repro_partition_runs_total",
                                 method=self.name)
            registry.observe("repro_partition_seconds",
                             result.elapsed_seconds, method=self.name)
        return result

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        raise NotImplementedError


class StreamingEdgePartitioner(Partitioner):
    """Shared plumbing for the one-pass streaming baselines.

    HDRF, FENNEL, and Oblivious all walk the canonical edge list once —
    optionally in a seeded shuffled order — scoring each edge against
    every partition, and all ship two implementations selected by the
    standard ``kernel=`` flag: ``"vectorized"`` (default; the chunked
    scoring driver of :mod:`repro.core.streaming`) and ``"python"``
    (the per-edge reference loop, kept verbatim).  This base owns the
    flag validation and the stream order so both kernels consume the
    RNG identically — the order *is* part of the pinned behaviour.
    """

    def __init__(self, num_partitions: int, seed: int = 0,
                 shuffle: bool = True, kernel: str = "vectorized"):
        super().__init__(num_partitions, seed)
        self.shuffle = shuffle
        self.kernel = validate_kernel(kernel)

    def stream_order(self, num_edges: int) -> np.ndarray:
        """Edge-id visit order: identity, or a seeded permutation."""
        order = np.arange(num_edges)
        if self.shuffle:
            order = np.random.default_rng(self.seed).permutation(order)
        return order

    def _partition(self, graph: CSRGraph) -> EdgePartition:
        if self.kernel == "python":
            return self._partition_python(graph)
        return self._partition_vectorized(graph)

    def _partition_python(self, graph: CSRGraph) -> EdgePartition:
        raise NotImplementedError

    def _partition_vectorized(self, graph: CSRGraph) -> EdgePartition:
        raise NotImplementedError


def timed_partition(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
