"""Vertex-partition → edge-partition conversion (§7.1).

To compare vertex partitioners (ParMETIS, Spinner, XtraPuLP) against
edge partitioners on replication factor, the paper follows Bourse et
al. [10]: each edge is assigned *uniformly at random to one of its two
endpoints' partitions*.  Internal edges (both endpoints in the same
part) stay there; cut edges flip a fair coin.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import EdgePartition, VertexPartition

__all__ = ["vertex_to_edge_partition"]


def vertex_to_edge_partition(vp: VertexPartition,
                             seed: int = 0) -> EdgePartition:
    """Convert ``vp`` into an :class:`EdgePartition` per §7.1's recipe."""
    graph = vp.graph
    pu = vp.assignment[graph.edges[:, 0]]
    pv = vp.assignment[graph.edges[:, 1]]
    rng = np.random.default_rng(seed)
    coin = rng.integers(0, 2, size=graph.num_edges)
    assignment = np.where(coin == 0, pu, pv)
    # Cut edges are what the distributed vertex partitioner stores twice
    # (ghosts); recorded for the Figure 9 memory model.
    cut_edges = int(np.count_nonzero(pu != pv))
    return EdgePartition(
        graph, vp.num_partitions, assignment,
        method=f"{vp.method}->edge",
        elapsed_seconds=vp.elapsed_seconds,
        iterations=vp.iterations,
        extra=dict(vp.extra, converted_from="vertex",
                   cut_edges=cut_edges))
