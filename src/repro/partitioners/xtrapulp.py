"""XtraPuLP-style vertex partitioner (Slota et al. [42]).

XtraPuLP partitions vertices with label propagation but — unlike
Spinner — *without* an initial random allocation: labels start from
BFS-grown regions around ``|P|`` seed vertices, then two constrained
label-propagation phases alternate, one balancing vertices and one
balancing edges.  This direct construction is why the paper groups it
with the "indirect but sometimes high-quality" methods (excellent on
graphs with good locality like WebUK, poor on some socials).

Implementation: multi-source BFS seeding, then the same
capacity-constrained LP loop as Spinner, run twice with the load
measured first in vertices and then in degrees.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.base import Partitioner, VertexPartition
from repro.partitioners.vertex_to_edge import vertex_to_edge_partition

__all__ = ["XtraPuLPPartitioner"]


class XtraPuLPPartitioner(Partitioner):
    """BFS-seeded, doubly-constrained label propagation."""

    name = "xtrapulp"

    def __init__(self, num_partitions: int, seed: int = 0,
                 lp_iterations: int = 12, capacity_factor: float = 1.10):
        super().__init__(num_partitions, seed)
        self.lp_iterations = lp_iterations
        self.capacity_factor = capacity_factor

    def _partition(self, graph: CSRGraph):
        vp = self.partition_vertices(graph)
        return vertex_to_edge_partition(vp, seed=self.seed)

    def partition_vertices(self, graph: CSRGraph) -> VertexPartition:
        k = self.num_partitions
        rng = np.random.default_rng(self.seed)
        labels = self._bfs_seed_labels(graph, rng)
        degrees = graph.degrees().astype(np.int64)

        # Phase 1: balance vertex counts; Phase 2: balance degree (edge)
        # counts — XtraPuLP's alternating constraint structure.
        iters1 = self._lp_phase(graph, labels, np.ones_like(degrees), rng)
        iters2 = self._lp_phase(graph, labels, np.maximum(degrees, 1), rng)

        return VertexPartition(graph, k, labels, method=self.name,
                               iterations=iters1 + iters2)

    # -- phases ----------------------------------------------------------
    def _bfs_seed_labels(self, graph: CSRGraph,
                         rng: np.random.Generator) -> np.ndarray:
        """Grow |P| BFS regions from random seeds; orphans join the
        smallest region."""
        k = self.num_partitions
        n = graph.num_vertices
        labels = np.full(n, -1, dtype=np.int64)
        seeds = rng.choice(n, size=min(k, n), replace=False)
        queues = [deque([int(s)]) for s in seeds]
        sizes = np.zeros(k, dtype=np.int64)
        capacity = int(np.ceil(self.capacity_factor * n / k))
        for i, s in enumerate(seeds):
            labels[s] = i
            sizes[i] += 1
        active = True
        while active:
            active = False
            for i, q in enumerate(queues):
                if sizes[i] >= capacity:
                    q.clear()  # full region: stop exploring from it
                    continue
                # Round-robin, capacity-bounded expansion keeps regions
                # size-comparable even around hubs.
                budget = 64
                while q and budget and sizes[i] < capacity:
                    v = q.popleft()
                    for u in graph.neighbors(v):
                        if labels[u] == -1 and sizes[i] < capacity:
                            labels[u] = i
                            sizes[i] += 1
                            q.append(int(u))
                    budget -= 1
                if q:
                    active = True
        orphans = np.flatnonzero(labels == -1)
        for v in orphans:
            target = int(np.argmin(sizes))
            labels[v] = target
            sizes[target] += 1
        return labels

    def _lp_phase(self, graph: CSRGraph, labels: np.ndarray,
                  weights: np.ndarray, rng: np.random.Generator) -> int:
        k = self.num_partitions
        loads = np.bincount(labels, weights=weights, minlength=k)
        capacity = max(1.0, self.capacity_factor * weights.sum() / k)
        order = np.arange(graph.num_vertices)
        iterations = 0
        for iterations in range(1, self.lp_iterations + 1):
            rng.shuffle(order)
            moves = 0
            for v in order:
                nbrs = graph.neighbors(v)
                if len(nbrs) == 0:
                    continue
                counts = np.zeros(k, dtype=np.float64)
                for u in nbrs:
                    counts[labels[u]] += 1.0
                current = labels[v]
                w = weights[v]
                counts[(loads + w > capacity)
                       & (np.arange(k) != current)] = -np.inf
                target = int(np.argmax(counts))
                if target != current and counts[target] > counts[current]:
                    loads[current] -= w
                    loads[target] += w
                    labels[v] = target
                    moves += 1
            if moves == 0:
                break
        return iterations
