"""Spinner — label-propagation vertex partitioner (Martella et al. [36]).

Spinner initialises every vertex with a *random* partition label and
then runs capacity-constrained label propagation: each vertex prefers
the label most frequent among its neighbours, discounted by how loaded
that label already is.  The random initialisation is exactly why the
paper classifies Spinner with the hash-based family — the refinement
cannot fully undo the random start on skewed graphs.

Implementation follows the paper's scoring::

    score(v, l) = w(v, l) / deg(v)  +  c * (1 - load(l) / capacity)

where ``w(v, l)`` counts v's neighbours with label ``l``, ``capacity``
is the balanced per-label degree budget ``c_f * total_degree / k``, and
moves into labels that are over capacity are rejected.  Iteration stops
at convergence (few moves) or ``max_iterations``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.base import Partitioner, VertexPartition
from repro.partitioners.vertex_to_edge import vertex_to_edge_partition

__all__ = ["SpinnerPartitioner"]


class SpinnerPartitioner(Partitioner):
    """Label-propagation vertex partitioning with random initialisation."""

    name = "spinner"

    def __init__(self, num_partitions: int, seed: int = 0,
                 max_iterations: int = 30, capacity_factor: float = 1.05,
                 balance_weight: float = 0.5,
                 convergence_fraction: float = 0.001):
        super().__init__(num_partitions, seed)
        self.max_iterations = max_iterations
        self.capacity_factor = capacity_factor
        self.balance_weight = balance_weight
        self.convergence_fraction = convergence_fraction

    # The public ``partition`` returns the §7.1-converted edge partition;
    # ``partition_vertices`` exposes the raw vertex labels.
    def _partition(self, graph: CSRGraph):
        vp = self.partition_vertices(graph)
        return vertex_to_edge_partition(vp, seed=self.seed)

    def partition_vertices(self, graph: CSRGraph) -> VertexPartition:
        k = self.num_partitions
        rng = np.random.default_rng(self.seed)
        labels = rng.integers(0, k, size=graph.num_vertices).astype(np.int64)
        degrees = graph.degrees().astype(np.int64)
        total_degree = int(degrees.sum())
        capacity = max(1.0, self.capacity_factor * total_degree / k)

        loads = np.bincount(labels, weights=degrees, minlength=k)
        order = np.arange(graph.num_vertices)
        iterations = 0

        for iterations in range(1, self.max_iterations + 1):
            rng.shuffle(order)
            moves = 0
            for v in order:
                deg = degrees[v]
                if deg == 0:
                    continue
                counts = np.zeros(k, dtype=np.float64)
                for u in graph.neighbors(v):
                    counts[labels[u]] += 1.0
                score = (counts / deg
                         + self.balance_weight * (1.0 - loads / capacity))
                # Reject moves into over-capacity labels.
                current = labels[v]
                score[(loads + deg > capacity)
                      & (np.arange(k) != current)] = -np.inf
                target = int(np.argmax(score))
                if target != current and score[target] > score[current]:
                    loads[current] -= deg
                    loads[target] += deg
                    labels[v] = target
                    moves += 1
            if moves <= self.convergence_fraction * graph.num_vertices:
                break

        return VertexPartition(graph, k, labels, method=self.name,
                               iterations=iterations)
