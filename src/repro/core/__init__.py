"""Distributed NE — the paper's core contribution.

* :mod:`repro.core.hash2d` — 2D-hash initial placement with
  id-computable replica metadata (§4).
* :mod:`repro.core.allocation` — allocation processes: one-hop
  allocation with local conflict resolution, replica synchronisation,
  two-hop allocation, local Drest (Algorithms 2–3).
* :mod:`repro.core.expansion` — expansion processes: boundary priority
  queue, multi-expansion (Algorithms 1 and 4).
* :mod:`repro.core.distributed_ne` — :class:`DistributedNE`, the public
  partitioner driving a simulated cluster.

Importing this package registers ``distributed_ne`` in
:data:`repro.partitioners.PARTITIONER_REGISTRY`.
"""

from repro.core.distributed_ne import DistributedNE
from repro.core.hash2d import Hash1DPlacement, Hash2DPlacement

from repro.partitioners import PARTITIONER_REGISTRY

PARTITIONER_REGISTRY.setdefault(DistributedNE.name, DistributedNE)

__all__ = ["DistributedNE", "Hash2DPlacement", "Hash1DPlacement"]
