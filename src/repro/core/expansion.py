"""Expansion process (§3.3 Algorithm 1, §5 Algorithm 4).

One expansion process per partition.  It owns the partition's boundary
— a priority queue of ⟨Drest(v), v⟩ — and per iteration:

* pops the ``k = max(1, ceil(lambda * |B|))`` lowest-scored boundary
  vertices (multi-expansion; ``lambda = 1/|B|``-equivalent single pop
  when ``lambda`` is tiny, full-boundary flush when ``lambda = 1``);
* falls back to one random seed vertex when the boundary is empty —
  preferentially from the co-located allocation process, otherwise
  scanning remote ones (accounted as remote queries);
* multicasts the selected ⟨v, p⟩ pairs to the replica processes of
  each v;
* after the allocation phases, folds the received new boundary pairs
  (summing per-process local Drest scores into global ones) and new
  edges into its state;
* checks termination: it stops expanding once ``|E_p|`` exceeds
  ``alpha |E| / |P|`` or every edge in the graph is allocated.

Boundary scores are *entry-time* scores, exactly as in the paper: a
vertex keeps the Drest it had when it entered the boundary; popping a
since-fully-allocated vertex simply allocates nothing that iteration.

Kernel architecture
-------------------
§7.4 of the paper shows the vertex-selection phase growing from <1% of
wall clock at 4 machines to 30.3% at 256 — at scale-out the selection
plane is the bottleneck, so it ships in the same two interchangeable
kernels as the allocation plane:

* ``kernel="vectorized"`` (default) — the boundary is a flat-array
  priority structure (:class:`BoundaryQueue`: parallel ``drest`` /
  ``vertex`` int64 arrays plus a boolean membership mask, batched
  ``insert_many`` and ``pop_k_min``), the multicast fan-out is one
  batched ``replica_membership`` call sliced per destination process,
  the boundary fold is a concatenated-payload ``np.unique`` +
  scatter-add, and every message payload is a structured ``(k, 2)``
  int64 ndarray (see the payload contract in
  :mod:`repro.cluster.runtime`) — no Python tuples ever cross the
  simulated wire, and the whole multicast rides the barrier-batched
  plane in one ``send_fanout`` call (payloads buffered per
  destination, priced and delivered in bulk at the delivering
  barrier).
* ``kernel="python"`` — the per-pair reference: a heapq/set boundary
  (:class:`HeapqBoundaryQueue`), a per-vertex ``replica_processes``
  fan-out into tuple lists sent eagerly one message at a time (the
  per-message accounting plane, kept as-is), and a dict-accumulator
  boundary fold.  Kept as executable documentation of Algorithm 4 and
  for the golden equivalence tests.

Both kernels produce identical selections, identical message payloads
byte-for-byte under the accounting model (a ``(k, 2)`` int64 array and
a list of ``k`` int pairs both size to ``16k`` bytes), and identical
boundary/memory accounting — pinned by
``tests/test_kernel_equivalence.py``.
"""

from __future__ import annotations

import heapq
import time
from collections import defaultdict

import numpy as np

from repro.cluster.runtime import Process, pair_array
from repro.core.allocation import TAG_BOUNDARY, TAG_EDGES, TAG_SELECT
from repro.graph.csr import first_occurrence
from repro.kernels import validate_kernel

__all__ = ["ExpansionProcess", "BoundaryQueue", "HeapqBoundaryQueue",
           "DirectSeedSource"]


class DirectSeedSource:
    """Seed lookups against in-process allocation objects.

    The expansion fallback path ("take a seed vertex from the
    co-located machine, then scan the others") needs to *query*
    allocation state; this wrapper is the in-process form used by the
    ``simulated`` and ``threads`` backends — it simply forwards to the
    allocator objects, reproducing the pre-backend direct calls.  The
    ``processes`` backend substitutes a shared-memory implementation
    with the same two-method interface (remaining-degree arrays mapped
    read-only into every worker), so the scan never crosses workers.

    Query-only by contract: seed lookups run during the selection
    superstep, when no allocation step is executing, so reads of
    allocator state race nothing.
    """

    def __init__(self, allocators):
        self._allocators = allocators

    def random_vertex(self, proc_id: int, rng) -> int | None:
        return self._allocators[proc_id].random_unallocated_vertex(rng)

    def min_degree_vertex(self, proc_id: int) -> int | None:
        return self._allocators[proc_id].min_degree_unallocated_vertex()


class HeapqBoundaryQueue:
    """Reference priority queue of ⟨Drest, vertex⟩ (heapq + set).

    ``pop_k_min`` implements ``popK-MinDrestVertices`` from
    Algorithm 4.  A vertex is never queued twice (re-insertions of an
    already-boundary vertex are dropped, set semantics per the paper's
    ``B_p``).  This is the per-pair Python implementation the
    flat-array :class:`BoundaryQueue` is pinned against.
    """

    def __init__(self):
        self._heap: list[tuple[int, int]] = []
        self._members: set[int] = set()

    def __len__(self) -> int:
        return len(self._members)

    def insert(self, vertex: int, drest: int) -> None:
        if vertex not in self._members:
            self._members.add(vertex)
            heapq.heappush(self._heap, (drest, vertex))

    def pop_k_min(self, k: int) -> list[int]:
        out: list[int] = []
        while self._heap and len(out) < k:
            _, v = heapq.heappop(self._heap)
            if v in self._members:
                self._members.discard(v)
                out.append(v)
        return out


class BoundaryQueue:
    """Flat-array priority queue of ⟨Drest, vertex⟩ with membership mask.

    The storage is two parallel int64 arrays (``drest`` and ``vertex``
    entries, grown geometrically) plus a boolean membership mask indexed
    by vertex id.  Because a vertex is a member at most once, every
    stored entry is live — there are no stale heap entries to skip — so
    ``pop_k_min`` can *select* the k smallest ⟨drest, vertex⟩ keys in
    one vectorized partition-select (``np.partition`` on drest, then a
    lexsort over the boundary candidates) instead of popping one node at
    a time.  The observable pop order is exactly the heapq reference's:
    ascending ⟨drest, vertex⟩, ties broken by vertex id, entry-time
    scores kept (pinned by the kernel equivalence tests).

    ``insert_many`` batch-inserts with set semantics: vertices already
    in the queue — or appearing earlier in the same batch — are dropped.
    """

    def __init__(self, num_vertices: int | None = None):
        cap = 16
        self._drest = np.empty(cap, dtype=np.int64)
        self._vertex = np.empty(cap, dtype=np.int64)
        self._size = 0
        self._member = np.zeros(int(num_vertices or 0), dtype=bool)

    def __len__(self) -> int:
        return self._size

    # -- capacity ------------------------------------------------------
    def _grow_member(self, max_vertex: int) -> None:
        if max_vertex >= len(self._member):
            grown = np.zeros(max(2 * len(self._member), max_vertex + 1),
                             dtype=bool)
            grown[:len(self._member)] = self._member
            self._member = grown

    def _grow_heap(self, need: int) -> None:
        if need > len(self._drest):
            cap = max(2 * len(self._drest), need)
            self._drest = np.concatenate(
                [self._drest[:self._size],
                 np.empty(cap - self._size, dtype=np.int64)])
            self._vertex = np.concatenate(
                [self._vertex[:self._size],
                 np.empty(cap - self._size, dtype=np.int64)])

    # -- insertion -----------------------------------------------------
    def insert(self, vertex: int, drest: int) -> None:
        self.insert_many(np.array([vertex], dtype=np.int64),
                         np.array([drest], dtype=np.int64))

    def insert_many(self, vertices: np.ndarray, drests: np.ndarray) -> None:
        """Batch insert; non-fresh vertices (already members, or second
        occurrences within the batch) are dropped, keeping the first
        score — exactly a loop of reference ``insert`` calls."""
        vertices = np.asarray(vertices, dtype=np.int64)
        drests = np.asarray(drests, dtype=np.int64)
        if not len(vertices):
            return
        self._grow_member(int(vertices.max()))
        fresh = np.flatnonzero(~self._member[vertices])
        if not len(fresh):
            return
        vs = vertices[fresh]
        occ = first_occurrence(vs)
        if len(occ) != len(vs):          # intra-batch duplicates
            fresh = fresh[occ]
            vs = vertices[fresh]
        ds = drests[fresh]
        self._member[vs] = True
        need = self._size + len(vs)
        self._grow_heap(need)
        self._drest[self._size:need] = ds
        self._vertex[self._size:need] = vs
        self._size = need

    # -- selection -----------------------------------------------------
    def pop_k_min_array(self, k: int) -> np.ndarray:
        """Pop the ``k`` minimum-⟨drest, vertex⟩ members as an ndarray."""
        size = self._size
        if size == 0 or k <= 0:
            return np.empty(0, dtype=np.int64)
        d = self._drest[:size]
        v = self._vertex[:size]
        if k >= size:
            out = v[np.lexsort((v, d))].copy()
            self._member[v] = False
            self._size = 0
            return out
        # Candidates: every entry with drest <= the k-th smallest drest
        # (a superset covering boundary ties), then an exact lexsort
        # over just the candidates.
        kth = np.partition(d, k - 1)[k - 1]
        cand = np.flatnonzero(d <= kth)
        take = cand[np.lexsort((v[cand], d[cand]))[:k]]
        out = v[take].copy()
        self._member[out] = False
        keep = np.ones(size, dtype=bool)
        keep[take] = False
        nk = size - k
        self._drest[:nk] = d[keep]
        self._vertex[:nk] = v[keep]
        self._size = nk
        return out

    def pop_k_min(self, k: int) -> list[int]:
        """List form of :meth:`pop_k_min_array` (reference-compatible)."""
        return self.pop_k_min_array(k).tolist()


class ExpansionProcess(Process):
    """Drives the expansion of one partition."""

    #: checkpoint/restore excludes: the shared placement and the
    #: injected seed source (backend-specific wiring, not state) —
    #: boundary queue, RNG, collected edges and counters all ride the
    #: snapshot.
    _STATE_EXCLUDE = Process._STATE_EXCLUDE | frozenset({
        "placement", "seed_source"})

    def __init__(self, partition: int, num_partitions: int,
                 limit: int, total_edges: int, lam: float,
                 seed: int, placement, seed_strategy: str = "random",
                 kernel: str = "vectorized", seed_source=None):
        super().__init__(("expansion", partition))
        validate_kernel(kernel)
        self.partition = partition
        self.num_partitions = num_partitions
        self.limit = limit                      # alpha * |E| / |P|
        self.total_edges = total_edges
        self.lam = lam
        self.placement = placement
        self.seed_strategy = seed_strategy
        self.kernel = kernel
        self.rng = np.random.default_rng((seed, partition))

        #: where the empty-boundary fallback takes seed vertices from;
        #: injected by the driver (or worker program) after construction
        #: when not given here.  See :class:`DirectSeedSource`.
        self.seed_source = seed_source
        self.boundary = (BoundaryQueue() if kernel == "vectorized"
                         else HeapqBoundaryQueue())
        self.edge_count = 0                     # |E_p|
        self.edge_ids: list[np.ndarray] = []    # received edge batches
        self.finished = False
        self.random_seed_requests = 0
        self.remote_seed_requests = 0
        self.selection_seconds = 0.0            # Fig 10(j) phase share
        #: modeled selection work: one op per ⟨selected vertex, replica
        #: process⟩ multicast pair — the per-machine quantity whose
        #: O(sqrt |P|) fan-out growth drives §7.4's share trend.
        #: Kernel-independent (both kernels hit identical replica sets).
        self.selection_ops = 0

    # ------------------------------------------------------------------
    # Iteration phase A: select vertices and multicast to allocators.
    # ------------------------------------------------------------------
    def select_and_multicast(self, alloc_processes=None) -> int:
        """Run the selection step.  Returns how many vertices were sent.

        ``alloc_processes`` (a list of allocation objects indexed by
        machine) is the legacy in-process form, wrapped in a
        :class:`DirectSeedSource`; when omitted, the injected
        :attr:`seed_source` serves the empty-boundary fallback — the
        form every execution backend uses.
        """
        if self.finished:
            return 0
        source = (DirectSeedSource(alloc_processes)
                  if alloc_processes is not None else self.seed_source)
        if self.kernel == "python":
            return self._select_and_multicast_python(source)
        return self._select_and_multicast_vectorized(source)

    def _select_and_multicast_python(self, seed_source) -> int:
        """Reference selection: heapq pops, per-vertex replica fan-out
        into per-process tuple lists."""
        start = time.perf_counter()
        selected: list[int] = []
        if len(self.boundary):
            k = max(1, int(np.ceil(self.lam * len(self.boundary))))
            selected = self.boundary.pop_k_min(k)
        else:
            v = self._random_seed(seed_source)
            if v is not None:
                selected = [v]
        self.selection_seconds += time.perf_counter() - start
        if not selected:
            return 0

        fanout: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for v in selected:
            procs = self.placement.replica_processes(v)
            self.selection_ops += len(procs)
            for proc in procs:
                fanout[proc].append((v, self.partition))
        for proc, payload in sorted(fanout.items()):
            self.send(("alloc", proc), TAG_SELECT, payload)
        return len(selected)

    def _select_and_multicast_vectorized(self, seed_source) -> int:
        """Flat-array selection: one partition-select pop, one batched
        ``replica_membership`` call, boolean-mask payload slicing."""
        start = time.perf_counter()
        if len(self.boundary):
            k = max(1, int(np.ceil(self.lam * len(self.boundary))))
            selected = self.boundary.pop_k_min_array(k)
        else:
            v = self._random_seed(seed_source)
            selected = (np.empty(0, dtype=np.int64) if v is None
                        else np.array([v], dtype=np.int64))
        self.selection_seconds += time.perf_counter() - start
        if not len(selected):
            return 0

        # Batched multicast: one membership matrix over every selected
        # vertex; one nonzero pass yields the (process, vertex) hits
        # grouped by ascending process with selection order preserved
        # inside each group — the reference's per-vertex loop output,
        # without touching processes that receive nothing.
        masks = self.placement.replica_membership(selected)
        payload = np.empty((len(selected), 2), dtype=np.int64)
        payload[:, 0] = selected
        payload[:, 1] = self.partition
        pidx, vidx = np.nonzero(masks.T)
        self.selection_ops += len(pidx)
        starts = np.flatnonzero(np.concatenate(
            ([True], pidx[1:] != pidx[:-1])))
        # One bulk gather of every ⟨v, p⟩ row in fan-out order, then
        # zero-copy views per destination (the per-destination fancy
        # index was the last per-message cost in this loop).
        rows = payload[vidx]
        chunks = np.split(rows, starts[1:])
        self.send_fanout(TAG_SELECT, zip(
            [("alloc", p) for p in pidx[starts].tolist()], chunks))
        return len(selected)

    def _random_seed(self, seed_source) -> int | None:
        """Seed lookup: co-located allocator first, then remote scan.

        Remote lookups are accounted as one request/response message
        pair per scanned process (the paper takes the vertex "from the
        other machines only if necessary") through
        :meth:`~repro.cluster.runtime.Process.account_rpc_pair`, which
        parallel backends capture in the outbox instead of letting this
        step touch another process's counters mid-superstep.
        """
        if seed_source is None:
            raise RuntimeError(
                f"expansion process {self.pid!r} hit the empty-boundary "
                "seed fallback but no seed source is available — pass "
                "alloc_processes to select_and_multicast or inject "
                "seed_source (DirectSeedSource / the backend's shared-"
                "memory source) after construction")
        self.random_seed_requests += 1
        order = [self.partition] + [
            p for p in range(self.num_partitions) if p != self.partition]
        # Probe first, account after: the RPC pricing never touches the
        # RNG or the probes, so deferring the per-remote accounting of
        # the scanned prefix to one bulk call leaves the counters (and
        # the outbox entry sequence) identical while the O(|P|) scan
        # loop stays free of per-probe accounting dispatch.
        probed: list = []
        found = None
        min_degree = self.seed_strategy == "min_degree"
        for proc_id in order:
            if proc_id != self.partition:
                probed.append(("alloc", proc_id))
            if min_degree:
                v = seed_source.min_degree_vertex(proc_id)
            else:
                v = seed_source.random_vertex(proc_id, self.rng)
            if v is not None:
                found = v
                break
        self.remote_seed_requests += len(probed)
        # request + response, 8 bytes each way, per scanned remote
        self.account_rpc_pairs(probed, 8)
        return found

    @property
    def boundary_size(self) -> int:
        """Current boundary cardinality (gatherable across backends)."""
        return len(self.boundary)

    # ------------------------------------------------------------------
    # Iteration phase B: fold in allocation results.
    # ------------------------------------------------------------------
    def update_state(self) -> None:
        if self.kernel == "python":
            drest_sums: dict[int, int] = defaultdict(int)
            for _, payload in self.receive(TAG_BOUNDARY):
                for v, local_drest in payload:
                    drest_sums[int(v)] += int(local_drest)
            for v in sorted(drest_sums):
                self.boundary.insert(v, drest_sums[v])
        else:
            # Batched boundary fold: concatenate every ⟨v, drest⟩
            # payload, sum per-process local scores into global Drest
            # with a unique/scatter-add, and batch-insert in ascending
            # vertex order (the reference's sorted-dict iteration).
            chunks = [pair_array(payload)
                      for _, payload in self.receive(TAG_BOUNDARY)]
            if chunks:
                arr = (chunks[0] if len(chunks) == 1
                       else np.concatenate(chunks))
                if len(arr):
                    vs, inverse = np.unique(arr[:, 0], return_inverse=True)
                    sums = np.zeros(len(vs), dtype=np.int64)
                    np.add.at(sums, inverse, arr[:, 1])
                    self.boundary.insert_many(vs, sums)

        for _, payload in self.receive(TAG_EDGES):
            if len(payload):
                self.edge_ids.append(np.asarray(payload, dtype=np.int64))
                self.edge_count += len(payload)

        # Memory model: boundary entries + received partition edges
        # (one 64-bit edge id per collected edge).
        self.set_resident("boundary", len(self.boundary) * 16)
        self.set_resident("partition_edges", self.edge_count * 8)

    def check_termination(self, global_allocated: int) -> None:
        """Algorithm 1 line 15."""
        if self.edge_count > self.limit or global_allocated >= self.total_edges:
            self.finished = True

    # ------------------------------------------------------------------
    def collected_edge_ids(self) -> np.ndarray:
        if not self.edge_ids:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self.edge_ids)
