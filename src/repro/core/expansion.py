"""Expansion process (§3.3 Algorithm 1, §5 Algorithm 4).

One expansion process per partition.  It owns the partition's boundary
— a priority queue of ⟨Drest(v), v⟩ — and per iteration:

* pops the ``k = max(1, ceil(lambda * |B|))`` lowest-scored boundary
  vertices (multi-expansion; ``lambda = 1/|B|``-equivalent single pop
  when ``lambda`` is tiny, full-boundary flush when ``lambda = 1``);
* falls back to one random seed vertex when the boundary is empty —
  preferentially from the co-located allocation process, otherwise
  scanning remote ones (accounted as remote queries);
* multicasts the selected ⟨v, p⟩ pairs to the replica processes of
  each v;
* after the allocation phases, folds the received new boundary pairs
  (summing per-process local Drest scores into global ones) and new
  edges into its state;
* checks termination: it stops expanding once ``|E_p|`` exceeds
  ``alpha |E| / |P|`` or every edge in the graph is allocated.

Boundary scores are *entry-time* scores, exactly as in the paper: a
vertex keeps the Drest it had when it entered the boundary; popping a
since-fully-allocated vertex simply allocates nothing that iteration.
"""

from __future__ import annotations

import heapq
import time
from collections import defaultdict

import numpy as np

from repro.cluster.runtime import Process
from repro.core.allocation import TAG_BOUNDARY, TAG_EDGES, TAG_SELECT

__all__ = ["ExpansionProcess", "BoundaryQueue"]


class BoundaryQueue:
    """Priority queue of ⟨Drest, vertex⟩ with membership tracking.

    ``pop_k_min`` implements ``popK-MinDrestVertices`` from
    Algorithm 4.  A vertex is never queued twice (re-insertions of an
    already-boundary vertex are dropped, set semantics per the paper's
    ``B_p``).
    """

    def __init__(self):
        self._heap: list[tuple[int, int]] = []
        self._members: set[int] = set()

    def __len__(self) -> int:
        return len(self._members)

    def insert(self, vertex: int, drest: int) -> None:
        if vertex not in self._members:
            self._members.add(vertex)
            heapq.heappush(self._heap, (drest, vertex))

    def pop_k_min(self, k: int) -> list[int]:
        out: list[int] = []
        while self._heap and len(out) < k:
            _, v = heapq.heappop(self._heap)
            if v in self._members:
                self._members.discard(v)
                out.append(v)
        return out


class ExpansionProcess(Process):
    """Drives the expansion of one partition."""

    def __init__(self, partition: int, num_partitions: int,
                 limit: int, total_edges: int, lam: float,
                 seed: int, placement, seed_strategy: str = "random"):
        super().__init__(("expansion", partition))
        self.partition = partition
        self.num_partitions = num_partitions
        self.limit = limit                      # alpha * |E| / |P|
        self.total_edges = total_edges
        self.lam = lam
        self.placement = placement
        self.seed_strategy = seed_strategy
        self.rng = np.random.default_rng((seed, partition))

        self.boundary = BoundaryQueue()
        self.edge_count = 0                     # |E_p|
        self.edge_ids: list[np.ndarray] = []    # received edge batches
        self.finished = False
        self.random_seed_requests = 0
        self.remote_seed_requests = 0
        self.selection_seconds = 0.0            # Fig 10(j) phase share

    # ------------------------------------------------------------------
    # Iteration phase A: select vertices and multicast to allocators.
    # ------------------------------------------------------------------
    def select_and_multicast(self, alloc_processes) -> int:
        """Run the selection step.  Returns how many vertices were sent."""
        if self.finished:
            return 0
        start = time.perf_counter()
        selected: list[int] = []
        if len(self.boundary):
            k = max(1, int(np.ceil(self.lam * len(self.boundary))))
            selected = self.boundary.pop_k_min(k)
        else:
            v = self._random_seed(alloc_processes)
            if v is not None:
                selected = [v]
        self.selection_seconds += time.perf_counter() - start
        if not selected:
            return 0

        fanout: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for v in selected:
            for proc in self.placement.replica_processes(v):
                fanout[proc].append((v, self.partition))
        for proc, payload in sorted(fanout.items()):
            self.send(("alloc", proc), TAG_SELECT, payload)
        return len(selected)

    def _random_seed(self, alloc_processes) -> int | None:
        """Seed lookup: co-located allocator first, then remote scan.

        Remote lookups are accounted as one request/response message
        pair per scanned process (the paper takes the vertex "from the
        other machines only if necessary").
        """
        self.random_seed_requests += 1
        order = [self.partition] + [
            p for p in range(self.num_partitions) if p != self.partition]
        for proc_id in order:
            alloc = alloc_processes[proc_id]
            if proc_id != self.partition:
                self.remote_seed_requests += 1
                # request + response, 8 bytes each way
                self.cluster.stats.stats_for(self.pid).record_send(8)
                self.cluster.stats.stats_for(alloc.pid).record_receive(8)
                self.cluster.stats.stats_for(alloc.pid).record_send(8)
                self.cluster.stats.stats_for(self.pid).record_receive(8)
            if self.seed_strategy == "min_degree":
                v = alloc.min_degree_unallocated_vertex()
            else:
                v = alloc.random_unallocated_vertex(self.rng)
            if v is not None:
                return v
        return None

    # ------------------------------------------------------------------
    # Iteration phase B: fold in allocation results.
    # ------------------------------------------------------------------
    def update_state(self) -> None:
        drest_sums: dict[int, int] = defaultdict(int)
        for _, payload in self.receive(TAG_BOUNDARY):
            for v, local_drest in payload:
                drest_sums[int(v)] += int(local_drest)
        for v in sorted(drest_sums):
            self.boundary.insert(v, drest_sums[v])

        for _, payload in self.receive(TAG_EDGES):
            if len(payload):
                self.edge_ids.append(np.asarray(payload, dtype=np.int64))
                self.edge_count += len(payload)

        # Memory model: boundary entries + received partition edges
        # (one 64-bit edge id per collected edge).
        self.set_resident("boundary", len(self.boundary) * 16)
        self.set_resident("partition_edges", self.edge_count * 8)

    def check_termination(self, global_allocated: int) -> None:
        """Algorithm 1 line 15."""
        if self.edge_count > self.limit or global_allocated >= self.total_edges:
            self.finished = True

    # ------------------------------------------------------------------
    def collected_edge_ids(self) -> np.ndarray:
        if not self.edge_ids:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self.edge_ids)
