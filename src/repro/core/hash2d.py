"""2D-hash initial placement (§4, "Data Structure").

The input graph is distributed over the ``|P|`` allocation processes by
2D-hash (grid) partitioning: the processes form an ``r x c`` grid and
edge ``(u, v)`` is placed on the cell addressed by the endpoint hashes.
The property the paper exploits is that a vertex's replica locations
are *computable from its id alone* — vertex ``v`` can only ever appear
on the processes of grid row ``row(v)`` and grid column ``col(v)`` —
so no vertex→process table has to be stored, which matters at
trillion-edge scale.

:class:`Hash2DPlacement` packages the three queries the algorithm
needs: the home process of an edge, the replica candidate set of a
vertex, and vectorised placement of a whole edge array.

A 1D variant (:class:`Hash1DPlacement`) is provided for the ablation
bench: it scatters edges uniformly, which destroys the computable-
replica property (every process may hold any vertex).
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.hashing import grid_shape, splitmix64

__all__ = ["Hash2DPlacement", "Hash1DPlacement", "pack_bool_matrix",
           "unpack_bool_matrix"]


def pack_bool_matrix(mat: np.ndarray) -> np.ndarray:
    """Pack a ``(k, P)`` boolean matrix into ``(k, ceil(P/64))`` uint64
    words, bit ``p`` of word ``p // 64`` holding column ``p``.

    The byte round-trip goes through explicit little-endian words, so
    the bit positions agree with shift/OR arithmetic
    (``word >> (p & 63)``) on any host byte order.  This is the single
    home of the word<->bool layout; :func:`unpack_bool_matrix` and the
    packed membership backend must stay its exact inverse.
    """
    k, width = mat.shape
    words = (width + 63) // 64
    bits = np.packbits(mat, axis=1, bitorder="little")
    padded = np.zeros((k, words * 8), dtype=np.uint8)
    padded[:, :bits.shape[1]] = bits
    return padded.view("<u8").astype(np.uint64, copy=False).reshape(k, words)


def unpack_bool_matrix(words: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_matrix`: ``(k, words)`` uint64 back
    to a ``(k, width)`` boolean matrix."""
    le = np.ascontiguousarray(words).astype("<u8", copy=False)
    bits = np.unpackbits(le.view(np.uint8).reshape(len(words), -1),
                         axis=1, bitorder="little")
    return bits[:, :width].astype(bool)


class Hash2DPlacement:
    """Grid placement of edges over ``num_processes`` allocation procs."""

    kind = "2d"

    def __init__(self, num_processes: int, seed: int = 0):
        self.num_processes = num_processes
        self.rows, self.cols = grid_shape(num_processes)
        self.seed = seed

    # -- vectorised edge placement ---------------------------------------
    def place_edges(self, edges: np.ndarray) -> np.ndarray:
        """Home process id for each canonical edge ``(u, v)``."""
        hu = splitmix64(edges[:, 0], seed=self.seed)
        hv = splitmix64(edges[:, 1], seed=self.seed + 1)
        r = (hu % np.uint64(self.rows)).astype(np.int64)
        c = (hv % np.uint64(self.cols)).astype(np.int64)
        return r * self.cols + c

    # -- metadata computable from the vertex id ---------------------------
    def vertex_row(self, v: int) -> int:
        return int(splitmix64(np.int64(v), seed=self.seed)
                   % np.uint64(self.rows))

    def vertex_col(self, v: int) -> int:
        return int(splitmix64(np.int64(v), seed=self.seed + 1)
                   % np.uint64(self.cols))

    def replica_processes(self, v: int) -> list[int]:
        """All processes that may hold edges of ``v`` (row ∪ column).

        Canonical edges are stored as ``(u, v)`` with ``u < v``; as
        either endpoint, ``v`` contributes its hash-row (as first
        endpoint) and its hash-column (as second), i.e. the processes
        ``{row(v) * cols + j} ∪ {i * cols + col(v)}``.
        """
        row = self.vertex_row(v)
        col = self.vertex_col(v)
        procs = {row * self.cols + j for j in range(self.cols)}
        procs.update(i * self.cols + col for i in range(self.rows))
        return sorted(procs)

    def replica_count(self, v: int) -> int:
        """Size of the replica candidate set (``rows + cols - 1``)."""
        return self.rows + self.cols - 1

    def replica_membership(self, vs: np.ndarray) -> np.ndarray:
        """Batched replica sets: ``(len(vs), num_processes)`` boolean.

        ``out[i, q]`` is True iff process ``q`` is a replica candidate
        of ``vs[i]`` — the vectorised form of
        :meth:`replica_processes`, used by the allocation kernels to
        fan out sync messages without per-vertex set construction.
        """
        vs = np.asarray(vs, dtype=np.int64)
        r = (splitmix64(vs, seed=self.seed)
             % np.uint64(self.rows)).astype(np.int64)
        c = (splitmix64(vs, seed=self.seed + 1)
             % np.uint64(self.cols)).astype(np.int64)
        procs = np.arange(self.num_processes, dtype=np.int64)
        proc_row = procs // self.cols
        proc_col = procs % self.cols
        return (r[:, None] == proc_row[None, :]) | \
               (c[:, None] == proc_col[None, :])

    def replica_membership_words(self, vs: np.ndarray) -> np.ndarray:
        """Packed-bitset form of :meth:`replica_membership`.

        Returns ``(len(vs), ceil(num_processes / 64))`` uint64 words:
        bit ``q % 64`` of word ``q // 64`` of row ``i`` is set iff
        process ``q`` is a replica candidate of ``vs[i]``.  Because a
        vertex's candidate set is ``row(v) ∪ column(v)``, each row is
        just ``row_pattern[row(v)] | col_pattern[col(v)]`` over two
        precomputed pattern tables — no boolean matrix is materialised.

        This is the placement-side query of the |P| ≫ 64 packed
        layout (1 bit per process instead of the boolean form's byte),
        pinned bit-for-bit against :meth:`replica_membership` by the
        packed-membership property tests.  The simulator's fan-out
        loops still consume the boolean form — they must enumerate the
        per-process hits anyway and their masks are transient
        ``k × |P|`` batches — so this query is the deployment-facing
        API, not a hot path of the simulated kernels.
        """
        vs = np.asarray(vs, dtype=np.int64)
        r = (splitmix64(vs, seed=self.seed)
             % np.uint64(self.rows)).astype(np.int64)
        c = (splitmix64(vs, seed=self.seed + 1)
             % np.uint64(self.cols)).astype(np.int64)
        row_pat, col_pat = self._packed_patterns()
        return row_pat[r] | col_pat[c]

    def _packed_patterns(self) -> tuple[np.ndarray, np.ndarray]:
        """Lazily built per-grid-row / per-grid-column packed masks."""
        pats = getattr(self, "_pattern_cache", None)
        if pats is None:
            procs = np.arange(self.num_processes, dtype=np.int64)
            row_pat = pack_bool_matrix(
                np.arange(self.rows)[:, None] == (procs // self.cols)[None, :])
            col_pat = pack_bool_matrix(
                np.arange(self.cols)[:, None] == (procs % self.cols)[None, :])
            pats = self._pattern_cache = (row_pat, col_pat)
        return pats


class Hash1DPlacement:
    """Uniform 1D scatter — the ablation alternative to the grid.

    Every process may hold edges of every vertex, so
    ``replica_processes`` must return all of them: synchronisation
    fan-out becomes ``|P|`` instead of ``rows + cols - 1``.
    """

    kind = "1d"

    def __init__(self, num_processes: int, seed: int = 0):
        self.num_processes = num_processes
        self.seed = seed

    def place_edges(self, edges: np.ndarray) -> np.ndarray:
        h = splitmix64(np.arange(len(edges)), seed=self.seed)
        return (h % np.uint64(self.num_processes)).astype(np.int64)

    def replica_processes(self, v: int) -> list[int]:
        return list(range(self.num_processes))

    def replica_count(self, v: int) -> int:
        return self.num_processes

    def replica_membership(self, vs: np.ndarray) -> np.ndarray:
        """Every process is a candidate for every vertex (1D scatter)."""
        return np.ones((len(vs), self.num_processes), dtype=bool)

    def replica_membership_words(self, vs: np.ndarray) -> np.ndarray:
        """Packed form: every bit ``< num_processes`` set per row."""
        words = (self.num_processes + 63) // 64
        pattern = pack_bool_matrix(
            np.ones((1, self.num_processes), dtype=bool))[0]
        return np.broadcast_to(pattern, (len(vs), words)).copy()
