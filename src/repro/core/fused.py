"""Fused cross-partition phase dispatch for Distributed NE.

At |P| ≫ 64 the vectorized kernels lose end-to-end: per iteration the
driver dispatches one step *per machine* per phase, and each step's
batch is tiny — the per-call NumPy setup floor of ~|P| small kernel
invocations dominates (ROADMAP's |P| ≫ 64 crossover, `dne_p256` at
0.5×).  :class:`FusedDnePlane` removes the dispatch axis: machine id
becomes a *segment axis* of one concatenated state, and each DNE phase
runs as a single batched kernel over per-machine segments
(``searchsorted`` / ``np.add.at`` / segment splits over offset arrays
instead of a Python loop over processes).

Equivalence contract (the hard constraint, pinned by
``tests/test_kernel_equivalence.py`` and ``tests/test_backends.py``):
the plane is *observationally identical* to per-process dispatch —
bit-identical assignments, ops counters, message payloads, payload
order, and memory reports.  The mechanisms:

* **Shared mutable state, fused layout.**  Each allocator's ``alloc``
  array, ``_part_loads`` vector and membership matrix are re-pointed at
  row/segment *views* of one fused array (same dtype and per-machine
  shape, so ``report_memory`` totals are unchanged).  ``rest_degree``
  stays per-process — the processes backend maps it into shared
  memory per machine.  Read-only structures (adjacency, CSR maps) are
  plane-private fused copies; the per-process originals keep serving
  the memory model.
* **Round-synchronous one-hop.**  The per-process kernel walks its
  (partition, vertex) groups in ascending partition order, each group
  observing the writes of earlier groups.  The fused kernel runs
  *rounds*: round j processes the j-th group of every machine in one
  batch.  Machines' states are disjoint, so a round's batched probe of
  pre-round state is exactly each machine's pre-group probe, and
  sequential rounds reproduce each machine's group order.
* **Deterministic emission order.**  Fused payload buffers are sliced
  back into the exact per-``(src, dst, tag)`` batches the accounting
  model prices: one stable sort by (machine, destination) recovers
  each process's per-destination concatenation, and emission loops run
  machines ascending, destinations ascending — the order the simulated
  scheduler's sequential steps would have created the buffers in.  All
  traffic goes through the owning ``Process`` helpers, so outbox
  capture on parallel backends works unchanged.

The plane serves ``select_and_multicast``, ``one_hop_and_sync`` and
``two_hop_and_report``; ``update_state`` / ``check_termination`` stay
per-process (cheap folds of each process's own mailbox).  Vectorized
kernel only — the reference kernel keeps its per-process steps.

Invariants pinned by the tests — where to look when a change here
breaks CI:

* fused == per-process (``fused=False``) == python reference on
  assignments and every accounting total at |P| ∈ {4, 64, 256}:
  ``tests/test_kernel_equivalence.py::TestFusedDispatchEquivalence``;
* the superstep *ledger* is backend-invariant: empty-mailbox
  short-circuits are decided by the driver and submitted as counted
  no-ops (``steps_skipped``), never silently elided, so
  checkpoint/resume and fault-recovery replay see the same step
  sequence on every backend (``tests/test_backends.py``,
  ``tests/test_faults.py``);
* bulk-priced delivery (``SimulatedCluster.deliver_segments``) equals
  the per-buffer pricing path on every message/byte total — integer
  bincount commutativity, pinned by ``tests/test_cluster_batched.py``;
* the ``dne_p256`` end-to-end speedup floor:
  ``benchmarks/perf/test_perf_smoke.py::test_dne_p256_end_to_end_at_least_2x``
  (CI perf-smoke matrix, its own entry).
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro.cluster.runtime import pair_array
from repro.core.allocation import (TAG_SELECT, TAG_SYNC,
                                   AllocationProcess)
from repro.core.expansion import ExpansionProcess
from repro.graph.csr import adjacency_slots, first_occurrence

__all__ = ["FusedDnePlane"]


def _segments(arr: np.ndarray, starts: np.ndarray) -> list:
    """Segment views ``arr[starts[i]:starts[i+1]]`` (the last running to
    the end) — what ``np.split(arr, starts[1:])`` returns, without its
    per-segment ``swapaxes`` machinery (phases emit hundreds of tiny
    segments, so the split overhead shows up in the |P| = 256 profile).
    """
    bounds = starts.tolist()
    bounds.append(len(arr))
    return [arr[a:b] for a, b in zip(bounds, bounds[1:])]


class FusedDnePlane:
    """Single-kernel-call-per-phase dispatch over a set of DNE processes.

    Built from the (subset of) allocation/expansion processes one
    scheduler owns — the whole cluster for the simulated/threads
    backends, one worker's share for the processes backend.  ``run``
    may be called with any subset of the attached pids (empty-mailbox
    steps are short-circuited by the driver before dispatch).
    """

    #: step methods the plane can fuse
    methods = frozenset({"select_and_multicast", "one_hop_and_sync",
                         "two_hop_and_report"})

    def __init__(self, processes, placement):
        allocs = sorted((p for p in processes
                         if isinstance(p, AllocationProcess)),
                        key=lambda a: a.machine)
        self._exp = {p.pid: p for p in processes
                     if isinstance(p, ExpansionProcess)}
        self._placement = placement
        for a in allocs:
            if a.kernel != "vectorized":
                raise ValueError(
                    "FusedDnePlane requires the vectorized kernel")
        self._alloc_procs = allocs
        m = len(allocs)
        self._m = m
        self._machines = np.array([a.machine for a in allocs],
                                  dtype=np.int64)
        self._mindex = {int(a.machine): i for i, a in enumerate(allocs)}
        if not m:
            self._width = placement.num_processes
            self._g = 1
            self._pending_bp: dict = {}
            self._pending_edges: dict = {}
            return
        self._g = max(allocs[0].graph.num_vertices, 1)
        width = len(allocs[0]._part_loads)
        if any(len(a._part_loads) != width for a in allocs):
            raise ValueError("allocators disagree on partition width")
        self._width = width

        # -- fused read-only layout (plane-private copies; the
        # per-process originals keep backing report_memory) ------------
        nv = np.array([len(a.local_vertices) for a in allocs],
                      dtype=np.int64)
        ne = np.array([len(a.eids) for a in allocs], dtype=np.int64)
        ns = np.array([int(a._adj_ptr[-1]) for a in allocs],
                      dtype=np.int64)
        self._voff = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(nv, out=self._voff[1:])
        self._eoff = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(ne, out=self._eoff[1:])
        soff = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(ns, out=soff[1:])
        g = self._g
        #: machine-major presence keys: mi * G + vertex, sorted unique
        self._vkeys = np.concatenate(
            [i * g + a.local_vertices for i, a in enumerate(allocs)])
        self._lv_global = np.concatenate(
            [a.local_vertices for a in allocs])
        self._adj_ptr = np.concatenate(
            [a._adj_ptr[:-1] + soff[i] for i, a in enumerate(allocs)]
            + [soff[-1:]])
        self._adj_eid = np.concatenate(
            [a._adj_eid.astype(np.int64) + self._eoff[i]
             for i, a in enumerate(allocs)])
        self._adj_other = np.concatenate(
            [a._adj_other.astype(np.int64) + self._voff[i]
             for i, a in enumerate(allocs)])
        self._lsrc = np.concatenate(
            [a._lsrc.astype(np.int64) + self._voff[i]
             for i, a in enumerate(allocs)])
        self._ldst = np.concatenate(
            [a._ldst.astype(np.int64) + self._voff[i]
             for i, a in enumerate(allocs)])
        self._eids = np.concatenate([a.eids for a in allocs])

        # -- fused mutable state, re-pointed as per-machine views ------
        alloc_f = np.concatenate([a.alloc for a in allocs])
        for i, a in enumerate(allocs):
            a.alloc = alloc_f[self._eoff[i]:self._eoff[i + 1]]
        self._alloc = alloc_f
        loads = np.vstack([a._part_loads for a in allocs])
        for i, a in enumerate(allocs):
            a._part_loads = loads[i]
        self._loads = loads
        kind = allocs[0]._member.kind
        if any(a._member.kind != kind for a in allocs):
            raise ValueError("allocators disagree on membership layout")
        cls = allocs[0]._member.__class__
        self._member = cls(0, width)
        if kind == "dense":
            mat = np.concatenate([a._member._mat for a in allocs], axis=0)
            for i, a in enumerate(allocs):
                a._member._mat = mat[self._voff[i]:self._voff[i + 1]]
            self._member._mat = mat
        else:
            words = np.concatenate([a._member._words for a in allocs],
                                   axis=0)
            for i, a in enumerate(allocs):
                a._member._words = words[self._voff[i]:self._voff[i + 1]]
            self._member._words = words

        #: one-hop outputs awaiting two_hop_and_report, per machine idx
        self._pending_bp = {}
        self._pending_edges = {}

    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """Snapshot the plane's cross-superstep transients.

        The fused mutable arrays are views over the attached processes'
        state and ride *their* snapshots; the only state the plane owns
        is the one-hop output parked between the one-hop and two-hop
        supersteps.  Worker supervision captures this alongside the
        per-process blobs so a worker respawned between those two
        supersteps replays two-hop on identical inputs.
        """
        return {"pending_bp": copy.deepcopy(self._pending_bp),
                "pending_edges": copy.deepcopy(self._pending_edges)}

    def restore_state(self, state: dict) -> None:
        self._pending_bp = copy.deepcopy(state["pending_bp"])
        self._pending_edges = copy.deepcopy(state["pending_edges"])

    # ------------------------------------------------------------------
    def run(self, method: str, pids) -> dict:
        """Run one fused superstep for ``pids``; returns pid -> value."""
        if method == "select_and_multicast":
            return self._run_select(pids)
        if method == "one_hop_and_sync":
            return self._run_one_hop(pids)
        if method == "two_hop_and_report":
            return self._run_two_hop(pids)
        raise ValueError(f"unsupported fused method {method!r}")

    # ------------------------------------------------------------------
    # Selection: per-process pops (boundary state is per-process), one
    # batched replica_membership over every selected vertex, fused
    # fan-out sliced back per (source, destination).
    # ------------------------------------------------------------------
    def _run_select(self, pids) -> dict:
        values: dict = {}
        sel_chunks: list = []
        srcs: list = []
        for pid in pids:
            proc = self._exp[pid]
            if proc.finished:
                values[pid] = 0
                continue
            start = time.perf_counter()
            if len(proc.boundary):
                k = max(1, int(np.ceil(proc.lam * len(proc.boundary))))
                sel = proc.boundary.pop_k_min_array(k)
            else:
                v = proc._random_seed(proc.seed_source)
                sel = (np.empty(0, dtype=np.int64) if v is None
                       else np.array([v], dtype=np.int64))
            proc.selection_seconds += time.perf_counter() - start
            values[pid] = len(sel)
            if len(sel):
                sel_chunks.append(sel)
                srcs.append(proc)
        if not sel_chunks:
            return values
        counts = np.array([len(c) for c in sel_chunks], dtype=np.int64)
        selected = np.concatenate(sel_chunks)
        src_idx = np.repeat(np.arange(len(srcs), dtype=np.int64), counts)
        rows = np.empty((len(selected), 2), dtype=np.int64)
        rows[:, 0] = selected
        rows[:, 1] = np.repeat(
            np.array([p.partition for p in srcs], dtype=np.int64), counts)

        masks = self._placement.replica_membership(selected)
        width = masks.shape[1]
        vidx, dsts = np.nonzero(masks)
        hit_src = src_idx[vidx]
        ops = np.bincount(hit_src, minlength=len(srcs))
        for i, proc in enumerate(srcs):
            proc.selection_ops += int(ops[i])
        # Stable sort by (source, destination): within a pair, hits stay
        # in selection order — each source's per-destination payload is
        # exactly its per-process `masks.T` fan-out slice.
        key = hit_src * width + dsts
        order = np.argsort(key, kind="stable")
        hit_rows = rows[vidx[order]]
        kord = key[order]
        starts = np.flatnonzero(np.concatenate(
            ([True], kord[1:] != kord[:-1])))
        chunks = _segments(hit_rows, starts)
        seg_key = kord[starts]
        seg_src = (seg_key // width).tolist()
        seg_dst = (seg_key % width).tolist()
        nseg = len(starts)
        if srcs[0]._outbox is None:
            # Simulated scheduler: one bulk-priced delivery for the
            # whole multicast sweep ((src, dst) pairs are distinct by
            # construction — one group per pair).
            bounds = np.append(starts, len(hit_rows))
            nb = (bounds[1:] - bounds[:-1]) * hit_rows.itemsize * 2
            src_parts = np.array([p.partition for p in srcs],
                                 dtype=np.int64)
            src_pids = [p.pid for p in srcs]
            entries = [(("alloc", seg_dst[i]),
                        (src_pids[seg_src[i]], chunks[i]))
                       for i in range(nseg)]
            srcs[0].cluster.deliver_segments(
                TAG_SELECT, entries,
                "expansion", src_parts[seg_key // width],
                "alloc", seg_key % width, nb)
            return values
        si = 0
        for i, proc in enumerate(srcs):
            dest_payloads = []
            while si < nseg and seg_src[si] == i:
                dest_payloads.append((("alloc", int(seg_dst[si])),
                                      chunks[si]))
                si += 1
            if dest_payloads:
                proc.send_fanout(TAG_SELECT, dest_payloads)
        return values

    # ------------------------------------------------------------------
    # One-hop allocation + sync fan-out.
    # ------------------------------------------------------------------
    def _run_one_hop(self, pids) -> dict:
        mis = sorted(self._mindex[pid[1]] for pid in pids)
        out = {("alloc", int(self._machines[mi])): None for mi in mis}
        for mi in mis:
            self._pending_bp.pop(mi, None)
            self._pending_edges.pop(mi, None)
        g, width, m = self._g, self._width, self._m
        chunks: list = []
        chunk_mi: list = []
        for mi in mis:
            for _, payload in self._alloc_procs[mi].receive(TAG_SELECT):
                c = pair_array(payload)
                if len(c):
                    chunks.append(c)
                    chunk_mi.append(mi)
        if not chunks:
            return out
        arr = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        m_row = np.repeat(np.array(chunk_mi, dtype=np.int64),
                          np.array([len(c) for c in chunks]))
        if int(arr[:, 1].max()) >= width:
            raise ValueError(
                "fused dispatch cannot grow partition capacity; "
                "partition id exceeds the deployment width")
        # Dedup per (machine, partition, vertex); np.unique sorts, which
        # is each machine's (p, v)-lexicographic reference walk order.
        keys = np.unique((m_row * width + arr[:, 1]) * g + arr[:, 0])
        mp = keys // g
        mi_r = mp // width
        p_r = mp % width
        # Presence: machine-major searchsorted over the fused vertex keys.
        vk = mi_r * g + keys % g
        nvk = len(self._vkeys)
        pos = np.searchsorted(self._vkeys, vk)
        pos_c = np.minimum(pos, max(nvk - 1, 0))
        present = ((pos < nvk) & (self._vkeys[pos_c] == vk)) if nvk else \
            np.zeros(len(vk), dtype=bool)
        if not present.any():
            return out
        lv = pos[present]
        mi_r, p_r, mp = mi_r[present], p_r[present], mp[present]

        # Round schedule: rank each (machine, partition) group within
        # its machine; round j batches every machine's j-th group.
        grp_change = np.concatenate(([True], mp[1:] != mp[:-1]))
        grp_id = np.cumsum(grp_change) - 1
        m_starts = np.flatnonzero(np.concatenate(
            ([True], mi_r[1:] != mi_r[:-1])))
        m_lens = np.diff(np.concatenate((m_starts, [len(mp)])))
        rank = grp_id - np.repeat(grp_id[m_starts], m_lens)
        order = np.argsort(rank, kind="stable")
        rank_s = rank[order]
        r_starts = np.flatnonzero(np.concatenate(
            ([True], rank_s[1:] != rank_s[:-1])))
        r_ends = np.concatenate((r_starts[1:], [len(order)]))

        alloc_f = self._alloc
        member = self._member
        ops_acc = np.zeros(m, dtype=np.int64)
        ev_mi: list = []     # per allocation event: machine idx
        ev_p: list = []      # ... partition
        ev_les: list = []    # ... fused local edge id
        bp_chunks: list = []     # boundary (u, p) row batches
        bp_mi: list = []         # machine idx per boundary row
        sync_src: list = []      # machine idx per sync hit
        sync_dst: list = []      # destination machine per sync hit
        sync_pos: list = []      # boundary-row buffer position per hit
        buf_off = 0
        for rs, re in zip(r_starts.tolist(), r_ends.tolist()):
            sel = order[rs:re]
            lv_r, p_rr, mi_rr = lv[sel], p_r[sel], mi_r[sel]
            slot_idx, counts = adjacency_slots(self._adj_ptr, lv_r)
            np.add.at(ops_acc, mi_rr, counts)
            new_les = ev_t = p_ev = mi_ev = None
            if len(slot_idx):
                les = self._adj_eid[slot_idx]
                free = alloc_f[les] == -1
                les_f = les[free]
                if len(les_f):
                    occ = first_occurrence(les_f)
                    new_les = les_f[occ]
                    ev_t = self._adj_other[slot_idx][free][occ]
                    p_slot = np.repeat(p_rr, counts)[free][occ]
                    mi_slot = np.repeat(mi_rr, counts)[free][occ]
                    p_ev, mi_ev = p_slot, mi_slot
                    alloc_f[new_les] = p_ev
                    # Probe pre-round membership before any set of this
                    # round (machines are state-disjoint, so this is
                    # each machine's pre-group probe).
                    unknown = ~member.test_pairs(ev_t, p_ev)
            member.set_pairs(lv_r, p_rr)
            if new_les is None:
                continue
            member.set_pairs(ev_t, p_ev)
            ev_mi.append(mi_ev)
            ev_p.append(p_ev)
            ev_les.append(new_les)
            cand = ev_t[unknown]
            if not len(cand):
                continue
            tocc = first_occurrence(cand)
            nt = cand[tocc]
            nt_p = p_ev[unknown][tocc]
            nt_mi = mi_ev[unknown][tocc]
            us = self._lv_global[nt]
            rows = np.empty((len(us), 2), dtype=np.int64)
            rows[:, 0] = us
            rows[:, 1] = nt_p
            bp_chunks.append(rows)
            bp_mi.append(nt_mi)
            # Sync fan-out hits, minus each row's own machine; payload
            # slices are recovered from the row buffer at phase end.
            hmask = self._placement.replica_membership(us)
            hit_v, hit_d = np.nonzero(hmask)
            keep = hit_d != self._machines[nt_mi[hit_v]]
            hit_v, hit_d = hit_v[keep], hit_d[keep]
            if len(hit_v):
                sync_src.append(nt_mi[hit_v])
                sync_dst.append(hit_d)
                sync_pos.append(buf_off + hit_v)
            buf_off += len(rows)

        # Phase-end folds (order-free totals applied once per machine).
        if ev_les:
            nl = np.concatenate(ev_les)
            pv = np.concatenate(ev_p)
            mv = np.concatenate(ev_mi)
            total_nv = self._voff[-1]
            dec = (np.bincount(self._lsrc[nl], minlength=total_nv)
                   + np.bincount(self._ldst[nl], minlength=total_nv))
            np.add.at(self._loads, (mv, pv), 1)
            nalloc = np.bincount(mv, minlength=m)
            # Pending TAG_EDGES events per machine, event order (rounds
            # ascend = each machine's partition groups ascending).
            ordm = np.argsort(mv, kind="stable")
            mv_s = mv[ordm]
            mseg = np.flatnonzero(np.concatenate(
                ([True], mv_s[1:] != mv_s[:-1])))
            mseg_end = np.concatenate((mseg[1:], [len(mv_s)]))
            geids = self._eids[nl[ordm]]
            pv_s = pv[ordm]
            for s, e in zip(mseg.tolist(), mseg_end.tolist()):
                self._pending_edges[int(mv_s[s])] = (pv_s[s:e],
                                                     geids[s:e])
        else:
            dec = None
            nalloc = np.zeros(m, dtype=np.int64)
        for mi in mis:
            proc = self._alloc_procs[mi]
            proc.ops_one_hop += int(ops_acc[mi])
            if dec is not None:
                lo, hi = self._voff[mi], self._voff[mi + 1]
                proc.rest_degree -= dec[lo:hi].astype(
                    proc.rest_degree.dtype)
                proc.unallocated -= int(nalloc[mi])
        if bp_chunks:
            bp_rows = np.concatenate(bp_chunks)
            bpm = np.concatenate(bp_mi)
            ordb = np.argsort(bpm, kind="stable")
            bpm_s = bpm[ordb]
            bseg = np.flatnonzero(np.concatenate(
                ([True], bpm_s[1:] != bpm_s[:-1])))
            bseg_end = np.concatenate((bseg[1:], [len(bpm_s)]))
            rows_s = bp_rows[ordb]
            for s, e in zip(bseg.tolist(), bseg_end.tolist()):
                self._pending_bp[int(bpm_s[s])] = rows_s[s:e]
            if sync_src:
                s_src = np.concatenate(sync_src)
                s_dst = np.concatenate(sync_dst)
                s_pos = np.concatenate(sync_pos)
                # (machine asc, destination asc); hits within a pair
                # stay in group/row order — each pair's gathered slice
                # is the per-process sync_out concatenation.
                key = s_src * (self._width + 1) + s_dst
                order2 = np.argsort(key, kind="stable")
                gathered = bp_rows[s_pos[order2]]
                k2 = key[order2]
                sstarts = np.flatnonzero(np.concatenate(
                    ([True], k2[1:] != k2[:-1])))
                segs = _segments(gathered, sstarts)
                seg_key = k2[sstarts]
                seg_src = (seg_key // (self._width + 1)).tolist()
                seg_dst = (seg_key % (self._width + 1)).tolist()
                nseg = len(seg_src)
                procs = self._alloc_procs
                # Arming is uniform across the pids of one fused call,
                # but NOT across the whole plane (threads chunks) — the
                # probe must use a proc from this call's subset.
                if procs[mis[0]]._outbox is None:
                    bounds = np.append(sstarts, len(gathered))
                    nb = ((bounds[1:] - bounds[:-1])
                          * gathered.itemsize * 2)
                    src_idx = seg_key // (self._width + 1)
                    entries = [(("alloc", seg_dst[i]),
                                (procs[seg_src[i]].pid, segs[i]))
                               for i in range(nseg)]
                    procs[0].cluster.deliver_segments(
                        TAG_SYNC, entries,
                        "alloc", self._machines[src_idx],
                        "alloc", seg_key % (self._width + 1), nb)
                else:
                    si = 0
                    while si < nseg:
                        src_mi = seg_src[si]
                        pairs = []
                        while si < nseg and seg_src[si] == src_mi:
                            pairs.append((("alloc", int(seg_dst[si])),
                                          segs[si]))
                            si += 1
                        procs[src_mi].send_fanout(TAG_SYNC, pairs)
        return out
    # ------------------------------------------------------------------
    # Sync merge + two-hop allocation + Drest/edge reports.
    # ------------------------------------------------------------------
    def _run_two_hop(self, pids) -> dict:
        mis = sorted(self._mindex[pid[1]] for pid in pids)
        out = {("alloc", int(self._machines[mi])): None for mi in mis}
        g, width, m = self._g, self._width, self._m
        member = self._member
        rows_chunks: list = []
        chunk_mi: list = []
        chunk_forced: list = []
        for mi in mis:
            bp = self._pending_bp.pop(mi, None)
            if bp is not None and len(bp):
                rows_chunks.append(bp)
                chunk_mi.append(mi)
                chunk_forced.append(True)
            for _, payload in self._alloc_procs[mi].receive(TAG_SYNC):
                c = pair_array(payload)
                if len(c):
                    rows_chunks.append(c)
                    chunk_mi.append(mi)
                    chunk_forced.append(False)

        merged_rows = np.empty((0, 2), dtype=np.int64)
        merged_lv = merged_m = np.empty(0, dtype=np.int64)
        if rows_chunks:
            arr = (rows_chunks[0] if len(rows_chunks) == 1
                   else np.concatenate(rows_chunks))
            lens = np.array([len(c) for c in rows_chunks])
            m_row = np.repeat(np.array(chunk_mi, dtype=np.int64), lens)
            forced = np.repeat(np.array(chunk_forced, dtype=bool), lens)
            vk = m_row * g + arr[:, 0]
            nvk = len(self._vkeys)
            pos = np.searchsorted(self._vkeys, vk)
            pos_c = np.minimum(pos, max(nvk - 1, 0))
            present = ((pos < nvk) & (self._vkeys[pos_c] == vk)) if nvk \
                else np.zeros(len(vk), dtype=bool)
            if present.any():
                arr, m_row, forced = (arr[present], m_row[present],
                                      forced[present])
                lv = pos[present]
                ps = arr[:, 1]
                if int(ps.max()) >= width:
                    raise ValueError(
                        "fused dispatch cannot grow partition capacity; "
                        "partition id exceeds the deployment width")
                # First-occurrence dedup per fused (vertex, partition)
                # (fused vertex ids are machine-disjoint).
                occ = first_occurrence(lv * width + ps)
                arr, lv, ps, m_row, forced = (arr[occ], lv[occ], ps[occ],
                                              m_row[occ], forced[occ])
                fresh = forced | ~member.test_pairs(lv, ps)
                merged_rows = arr[fresh]
                merged_lv, merged_m = lv[fresh], m_row[fresh]
                member.set_pairs(merged_lv, ps[fresh])

        # Two-hop allocation over the merged batch (Condition 5).
        cand_mi = np.empty(0, dtype=np.int64)
        cand_tgt = cand_geids = cand_mi
        two_hop = self._alloc_procs[0].two_hop if m else False
        ops2 = np.zeros(m, dtype=np.int64)
        if two_hop and len(merged_rows):
            docc = first_occurrence(merged_lv)
            lvs_u, m_u = merged_lv[docc], merged_m[docc]
            slot_idx, counts = adjacency_slots(self._adj_ptr, lvs_u)
            np.add.at(ops2, m_u, counts)
            if len(slot_idx):
                alloc_f = self._alloc
                les = self._adj_eid[slot_idx]
                free = alloc_f[les] == -1
                if free.any():
                    lws = self._adj_other[slot_idx]
                    lv_rep = np.repeat(lvs_u, counts)
                    shared = member.rows_and(lv_rep[free], lws[free])
                    has = member.mask_any(shared)
                    if has.any():
                        les_f = les[free][has]
                        shared_f = shared[has]
                        mi_f = np.repeat(m_u, counts)[free][has]
                        occ3 = first_occurrence(les_f)
                        cand_les = les_f[occ3]
                        cand_shared = shared_f[occ3]
                        cand_mi = mi_f[occ3]
                        nshared = member.mask_count(cand_shared)
                        tgt = np.where(
                            nshared == 1,
                            member.mask_single_partition(cand_shared), -1)
                        bounds = np.searchsorted(
                            cand_mi, np.arange(m + 1, dtype=np.int64))
                        for mi in np.unique(
                                cand_mi[nshared > 1]).tolist():
                            a, b = int(bounds[mi]), int(bounds[mi + 1])
                            multi = np.flatnonzero(nshared[a:b] > 1)
                            self._alloc_procs[mi]._resolve_multi_shared(
                                cand_shared[a:b], tgt[a:b], multi)
                        np.add.at(self._loads, (cand_mi, tgt), 1)
                        alloc_f[cand_les] = tgt.astype(alloc_f.dtype)
                        total_nv = self._voff[-1]
                        dec = (np.bincount(self._lsrc[cand_les],
                                           minlength=total_nv)
                               + np.bincount(self._ldst[cand_les],
                                             minlength=total_nv))
                        nalloc = np.bincount(cand_mi, minlength=m)
                        for mi in np.unique(cand_mi).tolist():
                            proc = self._alloc_procs[mi]
                            lo, hi = self._voff[mi], self._voff[mi + 1]
                            proc.rest_degree -= dec[lo:hi].astype(
                                proc.rest_degree.dtype)
                            proc.unallocated -= int(nalloc[mi])
                        cand_tgt = tgt
                        cand_geids = self._eids[cand_les]
        th_bounds = np.searchsorted(cand_mi,
                                    np.arange(m + 1, dtype=np.int64))

        # Drest rows, unique (machine, vertex, partition) and sorted —
        # each machine's slice is its reference np.unique(merged) walk.
        if len(merged_rows):
            ukeys = np.unique((merged_m * g + merged_rows[:, 0]) * width
                              + merged_rows[:, 1])
            u_mi = ukeys // (g * width)
            u_v = (ukeys // width) % g
            u_p = ukeys % width
            u_bounds = np.searchsorted(u_mi,
                                       np.arange(m + 1, dtype=np.int64))
        else:
            u_bounds = np.zeros(m + 1, dtype=np.int64)

        from repro.core.allocation import TAG_BOUNDARY, TAG_EDGES
        # Bulk inline delivery (simulated scheduler only): report
        # buffers are collected across the machine loop and priced in
        # one sweep per tag — per-(dst, tag) mailbox order (machine
        # ascending, partition ascending within a machine) is exactly
        # the per-process buffer-creation order.
        bulk = self._alloc_procs[mis[0]]._outbox is None if mis else False
        b_entries: list = []
        b_src: list = []
        b_dst: list = []
        b_nb: list = []
        e_entries: list = []
        e_src: list = []
        e_dst: list = []
        e_nb: list = []
        for mi in mis:
            proc = self._alloc_procs[mi]
            proc.ops_two_hop += int(ops2[mi])
            a, b = int(u_bounds[mi]), int(u_bounds[mi + 1])
            if b > a:
                v_m, p_m = u_v[a:b], u_p[a:b]
                local = np.searchsorted(self._vkeys, mi * g + v_m) \
                    - self._voff[mi]
                drest = proc.rest_degree[local]
                keep = drest > 0
                if keep.any():
                    rows_out = np.empty((int(keep.sum()), 2),
                                        dtype=np.int64)
                    rows_out[:, 0] = v_m[keep]
                    rows_out[:, 1] = drest[keep]
                    ps_k = p_m[keep]
                    pord = np.argsort(ps_k, kind="stable")
                    ps_s = ps_k[pord]
                    rows_s = rows_out[pord]
                    pst = np.flatnonzero(np.concatenate(
                        ([True], ps_s[1:] != ps_s[:-1])))
                    if bulk:
                        mslot = int(self._machines[mi])
                        src_pid = proc.pid
                        for p, seg in zip(ps_s[pst].tolist(),
                                          _segments(rows_s, pst)):
                            b_entries.append((("expansion", p),
                                              (src_pid, seg)))
                            b_src.append(mslot)
                            b_dst.append(p)
                            b_nb.append(seg.nbytes)
                    else:
                        proc.send_fanout(TAG_BOUNDARY, [
                            (("expansion", int(p)), seg)
                            for p, seg in zip(ps_s[pst].tolist(),
                                              _segments(rows_s, pst))])
            # Edge reports: one-hop events (already partition-grouped
            # ascending) then two-hop events, stably regrouped per
            # partition — each payload is the reference's _ep_new[p]
            # chunk concatenation.
            oh = self._pending_edges.pop(mi, None)
            ta, tb = int(th_bounds[mi]), int(th_bounds[mi + 1])
            parts = []
            if oh is not None:
                parts.append(oh)
            if tb > ta:
                parts.append((cand_tgt[ta:tb], cand_geids[ta:tb]))
            if parts:
                p_comb = (parts[0][0] if len(parts) == 1
                          else np.concatenate([p for p, _ in parts]))
                e_comb = (parts[0][1] if len(parts) == 1
                          else np.concatenate([e for _, e in parts]))
                eord = np.argsort(p_comb, kind="stable")
                p_s = p_comb[eord]
                e_s = e_comb[eord]
                est = np.flatnonzero(np.concatenate(
                    ([True], p_s[1:] != p_s[:-1])))
                if bulk:
                    mslot = int(self._machines[mi])
                    src_pid = proc.pid
                    for p, seg in zip(p_s[est].tolist(),
                                      _segments(e_s, est)):
                        e_entries.append((("expansion", p),
                                          (src_pid, seg)))
                        e_src.append(mslot)
                        e_dst.append(p)
                        e_nb.append(seg.nbytes)
                else:
                    proc.send_fanout(TAG_EDGES, [
                        (("expansion", int(p)), seg)
                        for p, seg in zip(p_s[est].tolist(),
                                          _segments(e_s, est))])
            proc.report_memory()
        if b_entries:
            cl = self._alloc_procs[mis[0]].cluster
            cl.deliver_segments(
                TAG_BOUNDARY, b_entries,
                "alloc", np.array(b_src, dtype=np.int64),
                "expansion", np.array(b_dst, dtype=np.int64),
                np.array(b_nb, dtype=np.int64))
        if e_entries:
            cl = self._alloc_procs[mis[0]].cluster
            cl.deliver_segments(
                TAG_EDGES, e_entries,
                "alloc", np.array(e_src, dtype=np.int64),
                "expansion", np.array(e_dst, dtype=np.int64),
                np.array(e_nb, dtype=np.int64))
        return out
