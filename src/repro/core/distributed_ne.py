"""Distributed NE — the paper's primary contribution, end to end.

:class:`DistributedNE` wires ``|P|`` expansion processes and ``|P|``
allocation processes into a :class:`~repro.cluster.runtime.SimulatedCluster`
and drives the iteration loop of Figure 4:

=====  ==================================================================
Step   Action
=====  ==================================================================
1      every live expansion process selects its ``k = ceil(λ|B|)``
       minimum-Drest boundary vertices (or one random seed) and
       multicasts ⟨v, p⟩ to v's replica allocation processes
2      barrier — allocators receive the selections
3      allocators run one-hop allocation and send replica syncs
4      barrier — allocators merge syncs, run two-hop allocation,
       compute local Drest, send new boundary + new edges to expanders
5      barrier — expanders fold results in; AllGatherSum of |E_p|
       decides termination (size limit or all edges allocated)
=====  ==================================================================

One outer pass of steps 1–5 is one *iteration* (the unit Figure 6
counts; it costs three global barriers).  Defaults follow §7.1:
``alpha = 1.1``, ``lam = 0.1``.

The run never leaves edges behind: the loop exits only when every edge
is allocated (partitions at their size cap keep receiving two-hop
edges, and as proved in §3 at least one partition stays below cap until
the graph drains; a final safety sweep covers the pathological case of
a partition-capped tail, assigning leftovers to the least-loaded
partitions).

Execution backends
------------------
The phase loop is expressed as *supersteps* against an execution
backend (:mod:`repro.cluster.backends`): per phase, the driver submits
one step per process and the backend decides who runs them —
``backend="simulated"`` (default) executes inline in deterministic
order, ``"threads"`` on a thread pool over the GIL-releasing NumPy
kernels, ``"processes"`` on worker processes with the CSR graph and
the flat per-partition state mapped in via shared memory (only the
barrier-batched message buffers cross the parent boundary).  All three
produce bit-identical assignments and accounting totals — the backend
only changes *where* the arithmetic happens, pinned by
``tests/test_backends.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.backends import (ProcessesBackend, WorkerProgram,
                                    create_backend, graph_to_arrays,
                                    validate_backend)
from repro.cluster.backends.shm import ShmArena, graph_from_views
from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.runtime import Process, SimulatedCluster
from repro.core.allocation import (TAG_BOUNDARY, TAG_EDGES, TAG_SELECT,
                                   TAG_SYNC, AllocationProcess,
                                   seed_vertex_min_degree,
                                   seed_vertex_random)
from repro.core.expansion import DirectSeedSource, ExpansionProcess
from repro.core.fused import FusedDnePlane
from repro.core.hash2d import Hash1DPlacement, Hash2DPlacement
from repro.graph.csr import CSRGraph
from repro.kernels import validate_kernel
from repro.observability.metrics import get_registry
from repro.observability.trace import NULL_TRACER
from repro.partitioners.base import EdgePartition, Partitioner

__all__ = ["DistributedNE", "DneWorkerProgram", "SharedSeedSource"]


class SharedSeedSource:
    """Seed lookups over shared-memory per-partition state.

    The processes backend's counterpart of
    :class:`~repro.core.expansion.DirectSeedSource`: every worker holds
    read-only views of *all* allocation processes' remaining-degree and
    local-vertex arrays, so the empty-boundary seed scan — including
    its remote legs — is a local array probe instead of a cross-worker
    round trip.  The lookups go through the same
    :func:`~repro.core.allocation.seed_vertex_random` /
    :func:`~repro.core.allocation.seed_vertex_min_degree` helpers as
    ``AllocationProcess`` itself (same candidate set, same single RNG
    draw; the allocator's ``unallocated == 0`` early-out is equivalent
    to an empty candidate set), so selections are bit-identical to the
    in-process backends by construction.

    Safe by phase disjointness: remaining degrees are written only by
    the owning worker during allocation supersteps, and seed scans run
    only during selection supersteps.
    """

    def __init__(self, local_vertices: list, rest_degrees: list):
        self._lv = local_vertices
        self._rest = rest_degrees

    def random_vertex(self, proc_id: int, rng) -> int | None:
        return seed_vertex_random(self._lv[proc_id], self._rest[proc_id],
                                  rng)

    def min_degree_vertex(self, proc_id: int) -> int | None:
        return seed_vertex_min_degree(self._lv[proc_id],
                                      self._rest[proc_id])


class DneWorkerProgram(WorkerProgram):
    """Builds one worker's share of the DNE cluster from shared memory.

    Each worker reconstructs the graph as zero-copy CSR views,
    constructs its owned allocation/expansion processes (recomputing
    the local adjacency in parallel across workers), re-points every
    allocator's remaining-degree array at the shared flat-state arena
    so sibling workers' seed scans can read it, and injects a
    :class:`SharedSeedSource` into its expanders.
    """

    def __init__(self, num_partitions: int, placement, two_hop: bool,
                 kernel: str, lam: float, seed: int, seed_strategy: str,
                 limit: int, total_edges: int, fused: bool = True):
        self.num_partitions = num_partitions
        self.placement = placement
        self.two_hop = two_hop
        self.kernel = kernel
        self.lam = lam
        self.seed = seed
        self.seed_strategy = seed_strategy
        self.limit = limit
        self.total_edges = total_edges
        self.fused = fused

    def build(self, owned_pids, views: dict) -> dict:
        garena = views["graph"]
        sarena = views["state"]
        graph = graph_from_views(garena)
        eids_by_home = garena.array("eids_by_home")
        eids_ptr = garena.array("eids_ptr")
        p = self.num_partitions
        seed_source = SharedSeedSource(
            [sarena.array(f"lv{k}") for k in range(p)],
            [sarena.array(f"rd{k}") for k in range(p)])
        procs = {}
        for pid in owned_pids:
            role, k = pid
            if role == "alloc":
                alloc = AllocationProcess(
                    k, graph, eids_by_home[eids_ptr[k]:eids_ptr[k + 1]],
                    self.placement,
                    two_hop=self.two_hop, kernel=self.kernel)
                shared_rd = sarena.array(f"rd{k}")
                shared_rd[:] = alloc.rest_degree
                alloc.rest_degree = shared_rd
                procs[pid] = alloc
            else:
                procs[pid] = ExpansionProcess(
                    k, p, self.limit, self.total_edges, self.lam,
                    self.seed, self.placement,
                    seed_strategy=self.seed_strategy, kernel=self.kernel,
                    seed_source=seed_source)
        return procs

    def build_plane(self, procs: dict):
        if not self.fused or self.kernel != "vectorized":
            return None
        return FusedDnePlane(list(procs.values()), self.placement)


class DistributedNE(Partitioner):
    """Parallel-expansion edge partitioner (Hanai et al., VLDB 2019).

    Parameters
    ----------
    num_partitions:
        ``|P|`` — also the number of simulated machines (the paper
        deploys one expansion + one allocation process per machine).
    seed:
        Seed for seed-vertex selection and hash placement.
    alpha:
        Imbalance factor of Equation 2 (paper default 1.1).
    lam:
        Multi-expansion factor λ of Algorithm 4 (paper default 0.1).
        ``lam -> 0`` degenerates to single-vertex expansion
        (Algorithm 1); ``lam = 1`` flushes the whole boundary each
        iteration.
    two_hop:
        Enable the two-hop (Condition 5) allocation phase.  Disabling
        it is the ablation for the greedy's "free edges" rule.
    placement:
        ``"2d"`` (paper) or ``"1d"`` initial edge distribution.
    seed_strategy:
        ``"random"`` (paper) or ``"min_degree"`` seed-vertex choice.
    max_iterations:
        Safety valve for pathological inputs; ``None`` = unbounded.
    collect_history:
        When True, record a per-iteration trace (allocated edges,
        boundary sizes, live partitions, vertices selected) into
        ``extra["history"]`` — the raw series behind Figure 6-style
        plots.
    kernel:
        ``"vectorized"`` (default) runs the allocation *and* selection
        phases as flat-array NumPy kernels — batched one/two-hop
        allocation (loads-delta batching for the two-hop tie-break),
        the array-backed boundary queue, batched multicast fan-out,
        and structured ndarray payloads shipped on the simulator's
        barrier-batched message plane (bulk per-(src, dst, tag)
        pricing at each barrier); ``"python"`` runs the
        per-slot/per-pair reference loops with tuple-list payloads
        over eager per-message sends.  Both produce bit-identical assignments,
        counters, and message traffic (pinned by the kernel
        equivalence tests).  At ``num_partitions > 64`` the vectorized
        replica membership switches to the packed uint64-bitset
        backend (``extra["membership"]``), still bit-identical.
    backend:
        Execution backend for the per-partition supersteps:
        ``"simulated"`` (default, inline deterministic scheduler),
        ``"threads"`` (thread pool) or ``"processes"``
        (shared-memory worker processes).  Orthogonal to ``kernel``;
        all three backends are bit-identical on assignments and
        accounting totals.
    workers:
        Worker count for the parallel backends (default 4; ignored by
        ``"simulated"``).
    fused:
        Fused cross-partition phase dispatch (default on for the
        vectorized kernel; no-op under ``kernel="python"``).  Each
        scheduler builds a :class:`~repro.core.fused.FusedDnePlane`
        over its processes, so every selection/one-hop/two-hop
        superstep is one segmented kernel call (machine id as a data
        axis) instead of ``|P|`` small ones — this is what breaks the
        |P| ≫ 64 dispatch-overhead crossover.  Bit-identical to
        per-process dispatch on assignments, counters, message
        traffic, and memory totals (pinned by the kernel-equivalence
        and backend tests); ``fused=False`` forces per-process steps.
    checkpoint_dir:
        Directory for superstep-granular checkpoints (any backend).
        At every ``checkpoint_every``-th iteration boundary — a point
        where all mailboxes are provably empty — the driver snapshots
        every process's mutable state, the accounting totals, the
        superstep ledger, and its own loop variables to an atomic
        on-disk store (:class:`~repro.cluster.checkpoint.CheckpointStore`).
    checkpoint_every:
        Checkpoint cadence in iterations (default 1).
    resume:
        Restart from the newest snapshot in ``checkpoint_dir`` (fresh
        start when the store is empty).  The snapshot's ``meta`` must
        match this run's configuration (graph shape, seed, kernel,
        |P|, ...) or the resume fails loudly; a resumed run is
        bit-identical to the uninterrupted one (pinned by
        ``tests/test_faults.py``).  Resuming on a *different backend*
        than the one that wrote the snapshot is supported — state
        blobs are backend-neutral.
    step_timeout:
        (``backend="processes"`` only) seconds to wait for any worker
        reply before surfacing a
        :class:`~repro.cluster.backends.base.WorkerStepError`; ``None``
        waits forever.
    max_retries:
        (``backend="processes"`` only) respawn-and-retry budget per
        superstep: failed/hung workers are rebuilt from their last
        snapshot and the step re-run, recovering bit-identically.
    fault_plan:
        (``backend="processes"`` only) a
        :class:`~repro.cluster.backends.faults.FaultPlan` injecting
        deterministic worker faults — the test harness for the above.
    tracer:
        A :class:`~repro.observability.trace.Tracer` collecting
        per-phase and per-superstep spans (``None``, the default, is
        the shared no-op).  Strictly observational: tracing on vs off
        is bit-identical on assignments and every accounting total,
        and span *structure* is identical across backends — both
        pinned by ``tests/test_observability.py``.
    """

    name = "distributed_ne"

    def __init__(self, num_partitions: int, seed: int = 0,
                 alpha: float = 1.1, lam: float = 0.1,
                 two_hop: bool = True, placement: str = "2d",
                 seed_strategy: str = "random",
                 max_iterations: int | None = None,
                 collect_history: bool = False,
                 kernel: str = "vectorized",
                 backend: str = "simulated",
                 workers: int | None = None,
                 fused: bool | None = None,
                 checkpoint_dir: str | None = None,
                 checkpoint_every: int = 1,
                 resume: bool = False,
                 step_timeout: float | None = None,
                 max_retries: int = 0,
                 fault_plan=None,
                 tracer=None):
        super().__init__(num_partitions, seed)
        if alpha < 1.0:
            raise ValueError("imbalance factor alpha must be >= 1.0")
        if not 0.0 < lam <= 1.0:
            raise ValueError("expansion factor lam must be in (0, 1]")
        if placement not in ("2d", "1d"):
            raise ValueError("placement must be '2d' or '1d'")
        if seed_strategy not in ("random", "min_degree"):
            raise ValueError("seed_strategy must be 'random' or 'min_degree'")
        self.alpha = alpha
        self.lam = lam
        self.two_hop = two_hop
        self.placement_kind = placement
        self.seed_strategy = seed_strategy
        self.max_iterations = max_iterations
        self.collect_history = collect_history
        validate_kernel(kernel)
        self.kernel = kernel
        validate_backend(backend)
        self.backend = backend
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.fused = fused
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if resume and checkpoint_dir is None:
            raise ValueError("resume requires checkpoint_dir")
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        if backend != "processes" and (step_timeout is not None or max_retries
                                       or fault_plan is not None):
            raise ValueError("step_timeout/max_retries/fault_plan require "
                             "backend='processes'")
        self.step_timeout = step_timeout
        self.max_retries = max_retries
        self.fault_plan = fault_plan
        self.tracer = tracer

    def _use_fused(self) -> bool:
        """Fused dispatch applies only to the vectorized kernel."""
        if self.kernel != "vectorized":
            return False
        return True if self.fused is None else bool(self.fused)

    # ------------------------------------------------------------------
    def _partition(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        cluster = SimulatedCluster()

        if self.placement_kind == "2d":
            placement = Hash2DPlacement(p, seed=self.seed)
        else:
            placement = Hash1DPlacement(p, seed=self.seed)

        alloc_pids = [("alloc", k) for k in range(p)]
        exp_pids = [("expansion", k) for k in range(p)]
        limit = max(1, int(np.ceil(self.alpha * graph.num_edges / p)))

        # Initial distribution + process construction (excluded from
        # the paper's elapsed time; we time it separately).
        t0 = time.perf_counter()
        homes = placement.place_edges(graph.edges) if graph.num_edges else \
            np.empty(0, dtype=np.int64)
        # One stable grouping pass instead of |P| O(E) flatnonzero
        # scans: slice k of eids_by_home is exactly
        # np.flatnonzero(homes == k) (stable sort keeps edge ids
        # ascending within a home).  Shared by every backend path.
        eids_by_home = np.argsort(homes, kind="stable").astype(np.int64)
        eids_ptr = np.zeros(p + 1, dtype=np.int64)
        np.cumsum(np.bincount(homes, minlength=p), out=eids_ptr[1:])
        # Checkpoint identity: everything that must agree before a
        # snapshot's state blobs can be poured back into this run.
        # The backend is deliberately absent — blobs are backend-
        # neutral, so a processes-backend run may resume simulated.
        meta = {"partitioner": self.name, "p": p, "seed": self.seed,
                "kernel": self.kernel, "placement": self.placement_kind,
                "alpha": self.alpha, "lam": self.lam,
                "two_hop": self.two_hop,
                "seed_strategy": self.seed_strategy,
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges}
        store = (CheckpointStore(self.checkpoint_dir)
                 if self.checkpoint_dir is not None else None)
        resume_snapshot = store.load_latest() if self.resume else None
        backend = create_backend(
            self.backend, self.workers,
            step_timeout=self.step_timeout,
            max_retries=self.max_retries or None,
            fault_plan=self.fault_plan)
        tracer = self.tracer if self.tracer is not None else NULL_TRACER
        backend.tracer = tracer
        if tracer.enabled:
            # Backend identity travels as a metadata event, never as a
            # span arg — span structure must be backend-independent.
            tracer.metadata("backend", {"name": self.backend})
        t_run = time.perf_counter()

        def traced_superstep(phase, steps, gather=()):
            """One driver phase: the superstep plus a phase span.

            Tracing never changes what is submitted — the phase span
            is derived from the same step list the backend receives,
            so executed/skipped counts reconcile with the ledger.
            """
            if not tracer.enabled:
                return backend.run_superstep(steps, gather)
            tp = time.perf_counter()
            out = backend.run_superstep(steps, gather)
            executed = sum(1 for _, m, _ in steps if m is not None)
            tracer.span(f"phase:{phase}", cat="phase",
                        seconds=time.perf_counter() - tp,
                        args={"phase": phase, "iteration": iterations,
                              "executed": executed,
                              "skipped": len(steps) - executed})
            return out

        try:
            if isinstance(backend, ProcessesBackend):
                self._start_processes(backend, cluster, graph, placement,
                                      eids_by_home, eids_ptr, limit)
            else:
                allocators = []
                for k in range(p):
                    eids = eids_by_home[eids_ptr[k]:eids_ptr[k + 1]]
                    allocators.append(cluster.add_process(
                        AllocationProcess(k, graph, eids, placement,
                                          two_hop=self.two_hop,
                                          kernel=self.kernel)))
                expanders = [
                    cluster.add_process(ExpansionProcess(
                        k, p, limit, graph.num_edges, self.lam, self.seed,
                        placement, seed_strategy=self.seed_strategy,
                        kernel=self.kernel))
                    for k in range(p)
                ]
                seed_source = DirectSeedSource(allocators)
                for expander in expanders:
                    expander.seed_source = seed_source
                plane = None
                if self._use_fused():
                    plane = FusedDnePlane(allocators + expanders, placement)
                backend.attach(cluster, allocators + expanders, plane=plane)
            load_seconds = time.perf_counter() - t0

            iterations = 0
            allocation_seconds = 0.0
            history: list[dict] = []
            # Simulated *parallel* phase times: per iteration, the
            # slowest process defines the phase cost (the cluster's
            # wall clock).
            parallel_selection = 0.0
            parallel_allocation = 0.0
            # Modeled phase costs (deterministic, kernel-independent):
            # per iteration the slowest process's op count defines the
            # phase — selection ops are multicast ⟨vertex, replica⟩
            # pairs, allocation ops are adjacency slots touched (the
            # Theorem 3 units).
            model_selection = 0
            model_allocation = 0
            prev_sel_ops = dict.fromkeys(exp_pids, 0)
            prev_alloc_ops = dict.fromkeys(alloc_pids, 0)
            # Empty-mailbox short-circuit: a step whose entire input —
            # the mail delivered at the last barrier — is absent is
            # submitted with ``method=None`` (gather-only) on every
            # backend.  The reference step would be a no-op: send sites
            # never emit empty payloads, so key presence in the parent
            # mailboxes is exactly "this step has work"; skipped steps
            # emit nothing and report nothing, keeping totals identical.
            delivered = cluster._delivered
            finished_prev = dict.fromkeys(exp_pids, False)
            if resume_snapshot is not None:
                CheckpointStore.check_meta(resume_snapshot, meta)
                # Pour the saved per-process state back through the
                # backend (in-place for shm-backed arrays), swap in the
                # saved accounting, and re-enter the loop exactly where
                # the snapshot left it.  Checkpoints are cut at
                # iteration boundaries, so every mailbox is empty.
                backend.apply_all(
                    "restore_state",
                    {pid: (state,)
                     for pid, state in resume_snapshot["procs"].items()})
                cluster.stats = resume_snapshot["stats"]
                backend.steps_executed, backend.steps_skipped = \
                    resume_snapshot["ledger"]
                loop = resume_snapshot["loop"]
                iterations = resume_snapshot["iteration"]
                prev_sel_ops = loop["prev_sel_ops"]
                prev_alloc_ops = loop["prev_alloc_ops"]
                finished_prev = loop["finished_prev"]
                allocation_seconds = loop["allocation_seconds"]
                parallel_selection = loop["parallel_selection"]
                parallel_allocation = loop["parallel_allocation"]
                model_selection = loop["model_selection"]
                model_allocation = loop["model_allocation"]
                history = list(loop["history"])
            while True:
                iterations += 1
                # Step 1: selection + multicast (a finished process's
                # step is `return 0`; skip it).
                sel = traced_superstep(
                    "selection",
                    [(pid, None if finished_prev[pid]
                      else "select_and_multicast", ())
                     for pid in exp_pids],
                    gather=("selection_ops",))
                sent = sum(r.value or 0 for r in sel.values())
                parallel_selection += max(r.seconds for r in sel.values())
                sel_ops = {pid: sel[pid].gathered["selection_ops"]
                           for pid in exp_pids}
                model_selection += max(sel_ops[pid] - prev_sel_ops[pid]
                                       for pid in exp_pids)
                prev_sel_ops = sel_ops
                cluster.barrier()  # Step 2

                ta = time.perf_counter()
                one_ran = {pid: (pid, TAG_SELECT) in delivered
                           for pid in alloc_pids}
                one = traced_superstep(  # Step 3
                    "one_hop",
                    [(pid, "one_hop_and_sync" if one_ran[pid] else None, ())
                     for pid in alloc_pids])
                slowest = max(r.seconds for r in one.values())
                cluster.barrier()
                # Two-hop must run whenever one-hop did (it flushes the
                # one-hop outboxes and reports memory) or sync mail
                # arrived; with neither it would only re-report
                # unchanged residents.
                two = traced_superstep(  # Step 4
                    "two_hop",
                    [(pid, "two_hop_and_report"
                      if one_ran[pid] or (pid, TAG_SYNC) in delivered
                      else None, ())
                     for pid in alloc_pids],
                    gather=("ops_one_hop", "ops_two_hop"))
                slowest = max(slowest,
                              max(r.seconds for r in two.values()))
                parallel_allocation += slowest
                alloc_ops = {
                    pid: (two[pid].gathered["ops_one_hop"]
                          + two[pid].gathered["ops_two_hop"])
                    for pid in alloc_pids}
                model_allocation += max(alloc_ops[pid] - prev_alloc_ops[pid]
                                        for pid in alloc_pids)
                prev_alloc_ops = alloc_ops
                allocation_seconds += time.perf_counter() - ta
                cluster.barrier()          # Step 5

                upd = traced_superstep(
                    "update_state",
                    [(pid, "update_state"
                      if (pid, TAG_BOUNDARY) in delivered
                      or (pid, TAG_EDGES) in delivered else None, ())
                     for pid in exp_pids],
                    gather=("edge_count",))
                global_allocated = int(cluster.all_gather_sum(
                    {pid: upd[pid].gathered["edge_count"]
                     for pid in exp_pids}))
                term_gather = (("finished", "boundary_size")
                               if self.collect_history else ("finished",))
                term = traced_superstep(
                    "check_termination",
                    [(pid, "check_termination", (global_allocated,))
                     for pid in exp_pids],
                    gather=term_gather)
                finished_prev = {pid: term[pid].gathered["finished"]
                                 for pid in exp_pids}

                if self.collect_history:
                    history.append({
                        "iteration": iterations,
                        "allocated_edges": global_allocated,
                        "vertices_selected": sent,
                        "boundary_total": sum(
                            term[pid].gathered["boundary_size"]
                            for pid in exp_pids),
                        "live_partitions": sum(
                            not term[pid].gathered["finished"]
                            for pid in exp_pids),
                    })

                if global_allocated >= graph.num_edges:
                    break
                if sent == 0 and all(term[pid].gathered["finished"]
                                     for pid in exp_pids):
                    break  # capped tail: leftovers handled by the sweep
                hit_valve = bool(self.max_iterations
                                 and iterations >= self.max_iterations)
                if store is not None and (
                        hit_valve
                        or iterations % self.checkpoint_every == 0):
                    # Iteration boundary: mailboxes empty, fused-plane
                    # transients drained — the whole run is exactly the
                    # per-process state plus these loop variables.
                    store.save(iterations, {
                        "meta": meta,
                        "iteration": iterations,
                        "procs": backend.call_all(alloc_pids + exp_pids,
                                                  "checkpoint_state"),
                        "stats": cluster.stats,
                        "ledger": (backend.steps_executed,
                                   backend.steps_skipped),
                        "loop": {
                            "prev_sel_ops": prev_sel_ops,
                            "prev_alloc_ops": prev_alloc_ops,
                            "finished_prev": finished_prev,
                            "allocation_seconds": allocation_seconds,
                            "parallel_selection": parallel_selection,
                            "parallel_allocation": parallel_allocation,
                            "model_selection": model_selection,
                            "model_allocation": model_allocation,
                            "history": history,
                        },
                    })
                if hit_valve:
                    break

            collected = backend.call_all(exp_pids, "collected_edge_ids")
            assignment = self._collect_assignment(graph, collected)

            exp_stats = backend.gather(
                exp_pids, ("selection_seconds", "random_seed_requests",
                           "remote_seed_requests"))
            alloc_stats = backend.gather(
                alloc_pids, ("ops_one_hop", "ops_two_hop",
                             "membership_kind"))
            steps_executed = backend.steps_executed
            steps_skipped = backend.steps_skipped
        finally:
            backend.close()

        if tracer.enabled:
            tracer.span("run:distributed_ne", cat="run",
                        seconds=time.perf_counter() - t_run,
                        args={"method": self.name, "kernel": self.kernel,
                              "partitions": p, "iterations": iterations,
                              "executed": steps_executed,
                              "skipped": steps_skipped})
        registry = get_registry()
        if registry.enabled:
            cluster.stats.record_metrics(registry)

        stats = cluster.stats.summary()
        extra = {
            "alpha": self.alpha,
            "kernel": self.kernel,
            "backend": self.backend,
            "membership": alloc_stats[alloc_pids[0]]["membership_kind"],
            "lambda": self.lam,
            "two_hop": self.two_hop,
            "placement": self.placement_kind,
            "load_seconds": load_seconds,
            "allocation_seconds": allocation_seconds,
            "selection_seconds": sum(
                exp_stats[pid]["selection_seconds"] for pid in exp_pids),
            # Share of the simulated parallel wall clock spent in the
            # vertex-selection phase (the quantity §7.4 reports growing
            # from <1% at 4 machines to 30.3% at 256): per iteration the
            # slowest process defines each phase's cost.
            "parallel_selection_seconds": parallel_selection,
            "parallel_allocation_seconds": parallel_allocation,
            "selection_share": (
                parallel_selection / (parallel_selection + parallel_allocation)
                if parallel_selection + parallel_allocation > 0 else 0.0),
            # Deterministic cost-model share (per-iteration maxima of
            # multicast pairs vs adjacency slots): the noise-free form
            # of the §7.4 trend, identical under both kernels.
            "model_selection_ops": model_selection,
            "model_allocation_ops": model_allocation,
            "selection_share_model": (
                model_selection / (model_selection + model_allocation)
                if model_selection + model_allocation > 0 else 0.0),
            "random_seed_requests": sum(
                exp_stats[pid]["random_seed_requests"] for pid in exp_pids),
            "remote_seed_requests": sum(
                exp_stats[pid]["remote_seed_requests"] for pid in exp_pids),
            # Theorem 3 inputs: adjacency slots touched per phase,
            # summed over allocation processes.
            "ops_one_hop": sum(alloc_stats[pid]["ops_one_hop"]
                               for pid in alloc_pids),
            "ops_two_hop": sum(alloc_stats[pid]["ops_two_hop"]
                               for pid in alloc_pids),
            # Superstep dispatch bookkeeping: driver-side skip decisions
            # are backend-independent, so these match across backends.
            "steps_executed": steps_executed,
            "steps_skipped": steps_skipped,
            "cluster": stats,
            "mem_score": (cluster.stats.mem_score(graph.num_edges)
                          if graph.num_edges else float("nan")),
        }
        if self.collect_history:
            extra["history"] = history
        return EdgePartition(graph, p, assignment, method=self.name,
                             iterations=iterations, extra=extra)

    # ------------------------------------------------------------------
    def _start_processes(self, backend: ProcessesBackend,
                         cluster: SimulatedCluster, graph: CSRGraph,
                         placement, eids_by_home: np.ndarray,
                         eids_ptr: np.ndarray, limit: int) -> None:
        """Wire the shared-memory worker ensemble.

        The parent maps two arenas: the read-only graph (CSR arrays +
        the home-grouped edge ids) and the flat per-partition state
        (each allocator's local-vertex ids and remaining degrees —
        written by the owning worker, read by every worker's seed
        scans).  The parent-side cluster keeps lightweight stubs so
        message replay can resolve destinations and per-process
        accounting.
        """
        p = self.num_partitions
        arenas: dict = {}
        # Ownership of the arenas passes to the backend only once
        # start() returns; until then a failure (e.g. /dev/shm
        # exhaustion midway) must not leak the created segments.
        try:
            arrays = graph_to_arrays(graph)
            arrays["eids_by_home"] = eids_by_home
            arrays["eids_ptr"] = eids_ptr
            arenas["graph"] = ShmArena.create(arrays)
            state_arrays: dict = {}
            for k in range(p):
                eids = eids_by_home[eids_ptr[k]:eids_ptr[k + 1]]
                lv = (np.unique(graph.edges[eids]) if len(eids)
                      else np.empty(0, dtype=np.int64))
                state_arrays[f"lv{k}"] = lv
                # Filled by the owning worker at build time (before the
                # first superstep runs).
                state_arrays[f"rd{k}"] = np.zeros(len(lv), dtype=np.int32)
            arenas["state"] = ShmArena.create(state_arrays)

            # Same registration order as the in-process path:
            # allocators, then expanders.
            pid_to_worker = {}
            for k in range(p):
                cluster.add_process(Process(("alloc", k)))
                pid_to_worker[("alloc", k)] = k % backend.workers
            for k in range(p):
                cluster.add_process(Process(("expansion", k)))
                pid_to_worker[("expansion", k)] = k % backend.workers

            program = DneWorkerProgram(
                p, placement, self.two_hop, self.kernel, self.lam,
                self.seed, self.seed_strategy, limit, graph.num_edges,
                fused=self._use_fused())
            backend.start(cluster, program, pid_to_worker, arenas)
        except BaseException:
            for arena in arenas.values():
                arena.close()
                arena.unlink()
            raise

    # ------------------------------------------------------------------
    def _collect_assignment(self, graph, collected: dict) -> np.ndarray:
        """Merge the per-expander collected edge ids into one assignment.

        Every allocated edge was shipped to exactly one expansion
        process; any unallocated leftovers (only possible via the
        max_iterations valve or an all-capped tail) are swept to the
        least-loaded partitions to keep the result a true partition.
        """
        assignment = np.full(graph.num_edges, -1, dtype=np.int64)
        for k in range(self.num_partitions):
            assignment[collected[("expansion", k)]] = k
        left = np.flatnonzero(assignment == -1)
        if len(left):
            loads = np.bincount(assignment[assignment >= 0],
                                minlength=self.num_partitions)
            assignment[left] = _water_fill_targets(loads, len(left))
        return assignment


def _water_fill_targets(loads: np.ndarray, count: int) -> np.ndarray:
    """Batch form of the sequential least-loaded sweep.

    The reference loop repeatedly takes ``argmin(loads)`` (ties to the
    lowest partition id) and increments it; that sequence is exactly
    all (level, partition) slots with ``level >= loads[partition]``
    enumerated in ascending (level, partition) order.  Every level at
    or above ``loads.min()`` fills at least one slot, so enumerating
    the band in bounded chunks terminates after ~``count`` levels
    total while keeping the transient mask O(chunk * |P|) — the
    replaced loop's O(|P|) memory class, at C speed.
    """
    num = len(loads)
    out = np.empty(count, dtype=np.int64)
    parts = np.arange(num)
    level = int(loads.min())
    band = max(1, (1 << 20) // max(num, 1))
    filled = 0
    while filled < count:
        levels = np.arange(level, level + band)
        mask = levels[:, None] >= loads[None, :]
        targets = np.broadcast_to(parts, mask.shape)[mask]
        take = min(len(targets), count - filled)
        out[filled:filled + take] = targets[:take]
        filled += take
        level += band
    return out
