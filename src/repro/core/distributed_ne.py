"""Distributed NE — the paper's primary contribution, end to end.

:class:`DistributedNE` wires ``|P|`` expansion processes and ``|P|``
allocation processes into a :class:`~repro.cluster.runtime.SimulatedCluster`
and drives the iteration loop of Figure 4:

=====  ==================================================================
Step   Action
=====  ==================================================================
1      every live expansion process selects its ``k = ceil(λ|B|)``
       minimum-Drest boundary vertices (or one random seed) and
       multicasts ⟨v, p⟩ to v's replica allocation processes
2      barrier — allocators receive the selections
3      allocators run one-hop allocation and send replica syncs
4      barrier — allocators merge syncs, run two-hop allocation,
       compute local Drest, send new boundary + new edges to expanders
5      barrier — expanders fold results in; AllGatherSum of |E_p|
       decides termination (size limit or all edges allocated)
=====  ==================================================================

One outer pass of steps 1–5 is one *iteration* (the unit Figure 6
counts; it costs three global barriers).  Defaults follow §7.1:
``alpha = 1.1``, ``lam = 0.1``.

The run never leaves edges behind: the loop exits only when every edge
is allocated (partitions at their size cap keep receiving two-hop
edges, and as proved in §3 at least one partition stays below cap until
the graph drains; a final safety sweep covers the pathological case of
a partition-capped tail, assigning leftovers to the least-loaded
partitions).
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.runtime import SimulatedCluster
from repro.core.allocation import AllocationProcess
from repro.core.expansion import ExpansionProcess
from repro.core.hash2d import Hash1DPlacement, Hash2DPlacement
from repro.graph.csr import CSRGraph
from repro.kernels import validate_kernel
from repro.partitioners.base import EdgePartition, Partitioner

__all__ = ["DistributedNE"]


class DistributedNE(Partitioner):
    """Parallel-expansion edge partitioner (Hanai et al., VLDB 2019).

    Parameters
    ----------
    num_partitions:
        ``|P|`` — also the number of simulated machines (the paper
        deploys one expansion + one allocation process per machine).
    seed:
        Seed for seed-vertex selection and hash placement.
    alpha:
        Imbalance factor of Equation 2 (paper default 1.1).
    lam:
        Multi-expansion factor λ of Algorithm 4 (paper default 0.1).
        ``lam -> 0`` degenerates to single-vertex expansion
        (Algorithm 1); ``lam = 1`` flushes the whole boundary each
        iteration.
    two_hop:
        Enable the two-hop (Condition 5) allocation phase.  Disabling
        it is the ablation for the greedy's "free edges" rule.
    placement:
        ``"2d"`` (paper) or ``"1d"`` initial edge distribution.
    seed_strategy:
        ``"random"`` (paper) or ``"min_degree"`` seed-vertex choice.
    max_iterations:
        Safety valve for pathological inputs; ``None`` = unbounded.
    collect_history:
        When True, record a per-iteration trace (allocated edges,
        boundary sizes, live partitions, vertices selected) into
        ``extra["history"]`` — the raw series behind Figure 6-style
        plots.
    kernel:
        ``"vectorized"`` (default) runs the allocation *and* selection
        phases as flat-array NumPy kernels — batched one/two-hop
        allocation (loads-delta batching for the two-hop tie-break),
        the array-backed boundary queue, batched multicast fan-out,
        and structured ndarray payloads shipped on the simulator's
        barrier-batched message plane (bulk per-(src, dst, tag)
        pricing at each barrier); ``"python"`` runs the
        per-slot/per-pair reference loops with tuple-list payloads
        over eager per-message sends.  Both produce bit-identical assignments,
        counters, and message traffic (pinned by the kernel
        equivalence tests).  At ``num_partitions > 64`` the vectorized
        replica membership switches to the packed uint64-bitset
        backend (``extra["membership"]``), still bit-identical.
    """

    name = "distributed_ne"

    def __init__(self, num_partitions: int, seed: int = 0,
                 alpha: float = 1.1, lam: float = 0.1,
                 two_hop: bool = True, placement: str = "2d",
                 seed_strategy: str = "random",
                 max_iterations: int | None = None,
                 collect_history: bool = False,
                 kernel: str = "vectorized"):
        super().__init__(num_partitions, seed)
        if alpha < 1.0:
            raise ValueError("imbalance factor alpha must be >= 1.0")
        if not 0.0 < lam <= 1.0:
            raise ValueError("expansion factor lam must be in (0, 1]")
        if placement not in ("2d", "1d"):
            raise ValueError("placement must be '2d' or '1d'")
        if seed_strategy not in ("random", "min_degree"):
            raise ValueError("seed_strategy must be 'random' or 'min_degree'")
        self.alpha = alpha
        self.lam = lam
        self.two_hop = two_hop
        self.placement_kind = placement
        self.seed_strategy = seed_strategy
        self.max_iterations = max_iterations
        self.collect_history = collect_history
        validate_kernel(kernel)
        self.kernel = kernel

    # ------------------------------------------------------------------
    def _partition(self, graph: CSRGraph) -> EdgePartition:
        p = self.num_partitions
        cluster = SimulatedCluster()

        if self.placement_kind == "2d":
            placement = Hash2DPlacement(p, seed=self.seed)
        else:
            placement = Hash1DPlacement(p, seed=self.seed)

        # Initial distribution (excluded from the paper's elapsed time;
        # we time it separately).
        t0 = time.perf_counter()
        homes = placement.place_edges(graph.edges) if graph.num_edges else \
            np.empty(0, dtype=np.int64)
        allocators = []
        for k in range(p):
            eids = np.flatnonzero(homes == k)
            allocators.append(cluster.add_process(
                AllocationProcess(k, graph, eids, placement,
                                  two_hop=self.two_hop,
                                  kernel=self.kernel)))
        limit = max(1, int(np.ceil(self.alpha * graph.num_edges / p)))
        expanders = [
            cluster.add_process(ExpansionProcess(
                k, p, limit, graph.num_edges, self.lam, self.seed,
                placement, seed_strategy=self.seed_strategy,
                kernel=self.kernel))
            for k in range(p)
        ]
        load_seconds = time.perf_counter() - t0

        iterations = 0
        allocation_seconds = 0.0
        history: list[dict] = []
        # Simulated *parallel* phase times: per iteration, the slowest
        # process defines the phase cost (the cluster's wall clock).
        parallel_selection = 0.0
        parallel_allocation = 0.0
        # Modeled phase costs (deterministic, kernel-independent): per
        # iteration the slowest process's op count defines the phase —
        # selection ops are multicast ⟨vertex, replica⟩ pairs, allocation
        # ops are adjacency slots touched (the Theorem 3 units).
        model_selection = 0
        model_allocation = 0
        prev_sel_ops = [0] * p
        prev_alloc_ops = [0] * p
        while True:
            iterations += 1
            # Step 1: selection + multicast.
            sent = 0
            slowest = 0.0
            for e in expanders:
                ts = time.perf_counter()
                sent += e.select_and_multicast(allocators)
                slowest = max(slowest, time.perf_counter() - ts)
            parallel_selection += slowest
            model_selection += max(
                e.selection_ops - prev_sel_ops[i]
                for i, e in enumerate(expanders))
            prev_sel_ops = [e.selection_ops for e in expanders]
            cluster.barrier()  # Step 2

            ta = time.perf_counter()
            slowest = 0.0
            for a in allocators:       # Step 3
                ts = time.perf_counter()
                a.one_hop_and_sync()
                slowest = max(slowest, time.perf_counter() - ts)
            cluster.barrier()
            for a in allocators:       # Step 4
                ts = time.perf_counter()
                a.two_hop_and_report()
                slowest = max(slowest, time.perf_counter() - ts)
            parallel_allocation += slowest
            model_allocation += max(
                a.ops_one_hop + a.ops_two_hop - prev_alloc_ops[i]
                for i, a in enumerate(allocators))
            prev_alloc_ops = [a.ops_one_hop + a.ops_two_hop
                              for a in allocators]
            allocation_seconds += time.perf_counter() - ta
            cluster.barrier()          # Step 5

            for e in expanders:
                e.update_state()
            global_allocated = int(cluster.all_gather_sum(
                {e.pid: e.edge_count for e in expanders}))
            for e in expanders:
                e.check_termination(global_allocated)

            if self.collect_history:
                history.append({
                    "iteration": iterations,
                    "allocated_edges": global_allocated,
                    "vertices_selected": sent,
                    "boundary_total": sum(len(e.boundary)
                                          for e in expanders),
                    "live_partitions": sum(not e.finished
                                           for e in expanders),
                })

            if global_allocated >= graph.num_edges:
                break
            if sent == 0 and all(e.finished for e in expanders):
                break  # capped tail: leftovers handled by the sweep
            if self.max_iterations and iterations >= self.max_iterations:
                break

        assignment = self._collect_assignment(graph, expanders, allocators)

        stats = cluster.stats.summary()
        extra = {
            "alpha": self.alpha,
            "kernel": self.kernel,
            "membership": allocators[0].membership_kind,
            "lambda": self.lam,
            "two_hop": self.two_hop,
            "placement": self.placement_kind,
            "load_seconds": load_seconds,
            "allocation_seconds": allocation_seconds,
            "selection_seconds": sum(e.selection_seconds for e in expanders),
            # Share of the simulated parallel wall clock spent in the
            # vertex-selection phase (the quantity §7.4 reports growing
            # from <1% at 4 machines to 30.3% at 256): per iteration the
            # slowest process defines each phase's cost.
            "parallel_selection_seconds": parallel_selection,
            "parallel_allocation_seconds": parallel_allocation,
            "selection_share": (
                parallel_selection / (parallel_selection + parallel_allocation)
                if parallel_selection + parallel_allocation > 0 else 0.0),
            # Deterministic cost-model share (per-iteration maxima of
            # multicast pairs vs adjacency slots): the noise-free form
            # of the §7.4 trend, identical under both kernels.
            "model_selection_ops": model_selection,
            "model_allocation_ops": model_allocation,
            "selection_share_model": (
                model_selection / (model_selection + model_allocation)
                if model_selection + model_allocation > 0 else 0.0),
            "random_seed_requests": sum(e.random_seed_requests
                                        for e in expanders),
            "remote_seed_requests": sum(e.remote_seed_requests
                                        for e in expanders),
            # Theorem 3 inputs: adjacency slots touched per phase,
            # summed over allocation processes.
            "ops_one_hop": sum(a.ops_one_hop for a in allocators),
            "ops_two_hop": sum(a.ops_two_hop for a in allocators),
            "cluster": stats,
            "mem_score": (cluster.stats.mem_score(graph.num_edges)
                          if graph.num_edges else float("nan")),
        }
        if self.collect_history:
            extra["history"] = history
        return EdgePartition(graph, p, assignment, method=self.name,
                             iterations=iterations, extra=extra)

    # ------------------------------------------------------------------
    def _collect_assignment(self, graph, expanders, allocators) -> np.ndarray:
        """Gather the per-edge assignment from the expansion processes.

        Every allocated edge was shipped to exactly one expansion
        process; any unallocated leftovers (only possible via the
        max_iterations valve or an all-capped tail) are swept to the
        least-loaded partitions to keep the result a true partition.
        """
        assignment = np.full(graph.num_edges, -1, dtype=np.int64)
        for e in expanders:
            eids = e.collected_edge_ids()
            assignment[eids] = e.partition
        left = np.flatnonzero(assignment == -1)
        if len(left):
            loads = np.bincount(assignment[assignment >= 0],
                                minlength=self.num_partitions)
            assignment[left] = _water_fill_targets(loads, len(left))
        return assignment


def _water_fill_targets(loads: np.ndarray, count: int) -> np.ndarray:
    """Batch form of the sequential least-loaded sweep.

    The reference loop repeatedly takes ``argmin(loads)`` (ties to the
    lowest partition id) and increments it; that sequence is exactly
    all (level, partition) slots with ``level >= loads[partition]``
    enumerated in ascending (level, partition) order.  Every level at
    or above ``loads.min()`` fills at least one slot, so enumerating
    the band in bounded chunks terminates after ~``count`` levels
    total while keeping the transient mask O(chunk * |P|) — the
    replaced loop's O(|P|) memory class, at C speed.
    """
    num = len(loads)
    out = np.empty(count, dtype=np.int64)
    parts = np.arange(num)
    level = int(loads.min())
    band = max(1, (1 << 20) // max(num, 1))
    filled = 0
    while filled < count:
        levels = np.arange(level, level + band)
        mask = levels[:, None] >= loads[None, :]
        targets = np.broadcast_to(parts, mask.shape)[mask]
        take = min(len(targets), count - filled)
        out[filled:filled + take] = targets[:take]
        filled += take
        level += band
    return out
