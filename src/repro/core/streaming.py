"""Shared streaming-partitioner substrate (the baseline zoo's hot path).

The paper's §7.1 comparisons score every streamed edge of HDRF / FENNEL
/ Oblivious (and every re-homed vertex group of Hybrid Ginger) against
all ``|P|`` partitions with state that mutates per item: per-partition
*loads* and per-vertex *replica membership*.  The reference
implementations walk the stream one item at a time, rebuilding every
membership-dependent term per edge; this module is the flat-array
substrate their ``kernel="vectorized"`` twins share.

:class:`StreamingState`
    Flat int64 ``loads`` plus replica membership backed by the same
    dense/packed-bitset backends the allocation plane uses
    (:class:`~repro.core.allocation.DenseMembership` /
    :class:`~repro.core.allocation.PackedMembership`, auto-packed at
    |P| > 64 under the PR-2 contract).

:func:`run_chunked_stream` (edge streams)
    The conflict-aware chunked scoring driver.  Per window it

    1. hoists the membership-dependent score terms of the whole window
       in one vectorized pass (:meth:`EdgeStreamScorer.window_static`)
       — the expensive part of the reference's per-edge work;
    2. attempts a bulk commit of an adaptive leading slice, clipped to
       the window's collision-free prefix (positions whose endpoints
       were already touched inside the window see stale hoisted rows;
       a single pre-computed previous-occurrence array finds them in
       O(1) per window): a tentative pass against the current flat
       loads, then a second pass against the *exact* per-position
       running loads the tentative targets imply (an exclusive
       cumulative one-hot sum — the same loads-delta idea as the
       two-hop ``_resolve_multi_shared`` batching).  The agreement
       prefix of the two passes is self-consistent, hence
       bit-identical to the sequential walk by induction, and commits
       in bulk;
    3. replays the loads-sensitive remainder through
       :meth:`EdgeStreamScorer.tail_walk` — an exact, self-committing
       sequential stepper over the hoisted rows that touches only the
       balance term per edge (a handful of NumPy ops on ``|P|``-length
       arrays instead of the reference's full rebuild), re-deriving a
       hoisted row on the fly only when an earlier placement actually
       changed one of its endpoints' score inputs (membership-bit
       flips and the scorers' extra staleness rules).

    The balance terms of HDRF/FENNEL (and Oblivious's least-loaded
    rule) make long drift-stable prefixes rare in steady state — each
    placement can flip the next near-tie — so the bulk slice adapts
    down to a cheap probe when it stops paying and back up when the
    stream enters a replication-dominated stretch.

:func:`run_chunked_fixpoint` (weighted group streams)
    The pure prefix-commit loop for scorers whose staleness rule needs
    the tentative targets themselves (Ginger's re-homing rounds: a
    histogram goes stale only when an earlier in-window *mover* is a
    neighbour).  Windows here commit wholesale once a round's movers
    thin out, so no sequential tail is needed.

:class:`EdgeStreamScorer`
    The scorer protocol plus shared machinery for unit-load edge
    streams: collision scan, loads reconstruction, generic tail
    walker, and the bulk commit (loads bincount + membership
    ``set_pairs``).

Both kernels of every partitioner built on this substrate are pinned
bit-identical — assignments, replication factors, and final loads — by
``tests/test_streaming_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StreamingState", "EdgeStreamScorer", "run_chunked_stream",
           "run_chunked_fixpoint", "block_tail_hints", "DEFAULT_CHUNK",
           "TAIL_BLOCK"]

#: default scoring-window width of the chunked drivers
DEFAULT_CHUNK = 1024

#: smallest bulk-commit probe / fixpoint window
_MIN_WINDOW = 16

#: tail-walker hint-block width (rows per batched tie-break)
TAIL_BLOCK = 64


def block_tail_hints(static_block: np.ndarray, balance: np.ndarray,
                     subtract: bool = False) -> np.ndarray:
    """Batched argmax hints for the sequential tail walkers.

    One ``(block, |P|)`` broadcast plus a rowwise argmax replaces the
    per-edge ``|P|``-vector combine + argmax of the tail steppers.  A
    hint row is *exact* — bit-identical to the per-edge computation at
    the row's turn — whenever (a) the row's hoisted static terms are
    still fresh and (b) the hinted partition's balance entry has not
    changed since the block snapshot, **provided** every balance update
    between snapshot and turn only worsened the updated entry's score
    (the walkers' invariant: a placement raises fennel's marginal
    penalty and lowers hdrf's ``lam_cbal`` entry, and whole-vector
    rebalances invalidate the rest of the block).  Then every other
    partition's score is at most its snapshot value while the hinted
    one is unchanged, so the snapshot argmax — lowest index among
    maxima — still wins its strict-below/ties-above relations.

    Elementwise ``+``/``-`` are correctly rounded float64 regardless of
    array shape, so the broadcast rows equal the per-edge vectors
    bit-for-bit (this would *not* hold for ``**``, which is why the
    penalty tables are built through whole-array ufuncs).
    """
    if subtract:
        return (static_block - balance[None, :]).argmax(axis=1)
    return (static_block + balance[None, :]).argmax(axis=1)


class StreamingState:
    """Flat streaming-partitioner state: loads + replica membership.

    ``loads`` is the per-partition edge (or item) count as a flat int64
    array — the layout every scorer's balance term reads directly.
    Replica membership rides the allocation plane's backends: a boolean
    matrix up to |P| = 64, uint64-packed words beyond (8× smaller,
    ``membership="dense"|"packed"`` forces a backend, same contract as
    :class:`~repro.core.allocation.AllocationProcess`).
    """

    def __init__(self, num_vertices: int, num_partitions: int,
                 membership: str = "auto"):
        # Imported here, not at module scope: the partitioner package
        # pulls this module in while core.allocation's own import chain
        # (hash2d -> partitioners.hashing) is still resolving.
        from repro.core.allocation import (
            DENSE_MEMBERSHIP_MAX_PARTITIONS,
            DenseMembership,
            PackedMembership,
        )
        if membership not in ("auto", "dense", "packed"):
            raise ValueError("membership must be 'auto', 'dense' or 'packed'")
        self.num_partitions = num_partitions
        self.loads = np.zeros(num_partitions, dtype=np.int64)
        if membership == "packed" or (
                membership == "auto"
                and num_partitions > DENSE_MEMBERSHIP_MAX_PARTITIONS):
            self.member = PackedMembership(num_vertices, num_partitions)
        else:
            self.member = DenseMembership(num_vertices, num_partitions)

    def member_rows(self, vs: np.ndarray) -> np.ndarray:
        """Boolean ``(len(vs), |P|)`` membership rows of vertices ``vs``."""
        return self.member.rows_bool(vs)

    def add_replicas(self, vs: np.ndarray, ps: np.ndarray) -> None:
        """Set membership bit ``(v, p)`` for every parallel pair."""
        self.member.set_pairs(vs, ps)


class EdgeStreamScorer:
    """Chunked-scorer base for unit-load edge streams.

    Subclasses implement

    * :meth:`window_static` — hoist every membership/degree-dependent
      score term of a window into one aux object, exactly reproducing
      the reference kernel's per-edge arithmetic rowwise against the
      window-start state;
    * :meth:`pick` — select targets for a row range of the window
      against a broadcastable loads matrix, using only the aux terms
      plus the loads-dependent part of the score (rows are only picked
      while their hoisted terms are provably fresh);
    * :meth:`tail_walk` — the exact sequential stepper for the
      loads-sensitive remainder of a window.  It commits its own
      per-edge state (live ``state.loads``, membership bits via
      ``get_bit``/``set_bit`` flip tracking, scorer extras) and
      re-derives a hoisted row exactly when the *changed* set — seeded
      by :meth:`commit` with the bulk prefix's membership flips and
      extended per step — touches one of its endpoints;

    and may override :meth:`apply` with extra bulk-commit state
    (degrees, remaining-degree counters; endpoints are pairwise
    distinct across a committed prefix, so plain fancy updates are
    exact there).

    ``u`` / ``v`` are the stream-ordered endpoint arrays: position ``i``
    of the stream is the edge ``(u[i], v[i])``.
    """

    def __init__(self, state: StreamingState, u: np.ndarray, v: np.ndarray):
        self.state = state
        self.u = np.ascontiguousarray(u, dtype=np.int64)
        self.v = np.ascontiguousarray(v, dtype=np.int64)
        #: per position, the previous stream position sharing one of its
        #: endpoints (-1 if none) — the driver's collision oracle
        self.prev_occ = self._previous_occurrence()
        #: vertices whose score inputs changed since the current
        #: window's static pass (seeded by commit, grown by tail_walk)
        self._changed: set = set()

    def __len__(self) -> int:
        return len(self.u)

    def _previous_occurrence(self) -> np.ndarray:
        n = len(self.u)
        ends = np.empty(2 * n, dtype=np.int64)
        ends[0::2] = self.u
        ends[1::2] = self.v
        order = np.argsort(ends, kind="stable")
        se = ends[order]
        prev_slot = np.full(2 * n, -1, dtype=np.int64)
        same = se[1:] == se[:-1]
        prev_slot[order[1:][same]] = order[:-1][same]
        pos = prev_slot >> 1           # slot -> stream position (-1 kept)
        return np.maximum(pos[0::2], pos[1::2])

    # -- subclass hooks -------------------------------------------------
    def window_static(self, sl: slice):
        raise NotImplementedError

    def pick(self, aux, rows, loads_mat: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def tail_walk(self, sl: slice, aux, start: int, stop: int) -> np.ndarray:
        raise NotImplementedError

    def apply(self, u: np.ndarray, v: np.ndarray,
              targets: np.ndarray) -> None:
        """Extra bulk-commit state updates."""

    # -- shared machinery ----------------------------------------------
    def reconstruct(self, t0: np.ndarray) -> np.ndarray:
        """Exact running loads per position if the tentative targets
        ``t0`` were committed in order: row ``i`` is the flat loads plus
        one increment per earlier tentative placement (an exclusive
        cumulative sum of one-hot rows)."""
        w = len(t0)
        p = self.state.num_partitions
        hot = np.zeros((w, p), dtype=np.int64)
        if w > 1:
            hot[np.arange(1, w), t0[:-1]] = 1
            np.cumsum(hot, axis=0, out=hot)
        return self.state.loads[None, :] + hot

    def commit(self, sl: slice, targets: np.ndarray) -> None:
        """Apply a proven prefix in bulk: loads scatter-add, membership
        bits for both endpoints (recording actual flips as the tail
        walker's staleness seed), then the subclass's extra state."""
        u, v = self.u[sl], self.v[sl]
        state = self.state
        both = np.concatenate([u, v])
        ts = np.concatenate([targets, targets])
        flipped = ~state.member.test_pairs(both, ts)
        state.add_replicas(both, ts)
        self._changed = set(both[flipped].tolist())
        state.loads += np.bincount(targets, minlength=state.num_partitions)
        self.apply(u, v, targets)


def run_chunked_stream(scorer: EdgeStreamScorer,
                       chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Drive an edge-stream scorer over its whole stream.

    Window loop: hoist the static score terms once, bulk-commit the
    drift-stable leading slice (tentative pass + exact
    reconstructed-loads pass over the collision-free prefix, commit
    the agreement prefix), and replay the remainder with the scorer's
    self-committing sequential tail stepper.  The bulk-slice width
    adapts to its recent success so the two vectorized passes degrade
    to a cheap probe wherever the balance term dominates.
    """
    n = len(scorer)
    targets = np.empty(n, dtype=np.int64)
    prev = scorer.prev_occ
    i0 = 0
    vcap = chunk
    while i0 < n:
        w = min(chunk, n - i0)
        sl = slice(i0, i0 + w)
        aux = scorer.window_static(sl)

        # Bulk attempt, clipped to the collision-free window prefix.
        stale = np.flatnonzero(prev[i0:i0 + w] >= i0)
        vw = min(vcap, int(stale[0]) if len(stale) else w)
        base = scorer.state.loads[None, :]
        t0 = scorer.pick(aux, slice(0, vw), base)
        t1 = scorer.pick(aux, slice(0, vw), scorer.reconstruct(t0))
        neq = np.flatnonzero(t1 != t0)
        r = max(1, int(neq[0])) if len(neq) else vw
        scorer.commit(slice(i0, i0 + r), t1[:r])
        targets[i0:i0 + r] = t1[:r]
        vcap = min(chunk, 2 * vcap) if r == vw else max(_MIN_WINDOW, 2 * r)

        if r < w:
            targets[i0 + r:i0 + w] = scorer.tail_walk(sl, aux, r, w)
        i0 += w
    return targets


def run_chunked_fixpoint(scorer, chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Prefix-commit loop for weighted/group stream scorers.

    Protocol: ``len(scorer)``, ``select(sl, loads_view_or_None)``,
    ``reconstruct(sl, t0)`` (returns the opaque loads view ``select``
    consumes), ``run_length(sl, t0, t1)`` (longest proven prefix, >= 1)
    and ``commit(sl, targets)``.  Each window scores tentatively, then
    against the reconstructed running loads, and commits the proven
    prefix; the window width adapts to the recent run length.
    """
    n = len(scorer)
    targets = np.empty(n, dtype=np.int64)
    i0 = 0
    cap = chunk
    while i0 < n:
        w = min(cap, n - i0)
        sl = slice(i0, i0 + w)
        t0 = scorer.select(sl, None)
        t1 = scorer.select(sl, scorer.reconstruct(sl, t0))
        r = scorer.run_length(sl, t0, t1)
        run = slice(i0, i0 + r)
        scorer.commit(run, t1[:r])
        targets[run] = t1[:r]
        i0 += r
        cap = min(chunk, max(_MIN_WINDOW, 4 * r))
    return targets
