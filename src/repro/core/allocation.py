"""Allocation process (§4, Algorithms 2 and 3).

Each allocation process owns a unique slice of the input edges (placed
by 2D hash) in a local CSR, plus the partition-id sets of the vertices
it has seen.  Per outer iteration it runs the four phases of
``EdgeAllocation``:

1. **One-hop allocation** — for every received ⟨v, p⟩, allocate v's
   non-allocated local edges to p.  Conflicts (two partitions selecting
   endpoints of the same local edge in one iteration) are resolved
   locally, first-writer-wins, mirroring the CAS in the paper.
2. **Synchronisation** — newly appended (vertex, partition) pairs are
   sent to the vertex's replica processes (computable from the id, §4)
   so all replicas agree on allocation ids.
3. **Two-hop allocation** — any local non-allocated edge whose both
   endpoints now share a partition is allocated to the sharing
   partition with the fewest edges (Condition 5: these edges never add
   replicas).
4. **Local Drest** — for each new boundary pair ⟨u, p⟩, the local count
   of u's non-allocated edges is reported to expansion process p, which
   sums the local scores into the global ``Drest(u)``.

Message tags: ``select`` (expansion→alloc), ``sync`` (alloc→alloc),
``boundary`` and ``edges`` (alloc→expansion).

Kernel architecture
-------------------
The paper's §4 data-structure argument is that everything the
allocation phases touch lives in *flat arrays* (CSR ``indptr`` /
``indices`` parallels), never in pointer-chasing maps — that is where
the order-of-magnitude speed and memory win over ParMETIS-style code
comes from.  This module mirrors the argument with two interchangeable
kernels:

* ``kernel="vectorized"`` (default) — replica membership is a
  per-local-vertex partition-set matrix (see *Membership backends*
  below), one-hop allocation is a batched gather of whole adjacency
  slices via ``indptr`` fancy-indexing followed by first-occurrence
  dedup, ``rest_degree`` / per-partition load updates are
  ``np.bincount`` scatter-adds, and every message payload is a
  structured int64 ndarray under the payload contract of
  :mod:`repro.cluster.runtime` — tuple lists never materialise.
  Payloads ride the barrier-batched message plane (``send_batched``):
  they are priced and delivered in one bulk pass per (src, dst, tag)
  at the next barrier instead of per message.  Per iteration the work
  is O(slots touched), with no per-slot Python dispatch.
* ``kernel="python"`` — the slow reference: dict-of-set replica state
  walked one adjacency slot at a time, exchanging tuple-list payloads
  over eager per-message ``send`` (the per-message accounting plane,
  kept as-is), kept for golden equivalence tests
  (``tests/test_kernel_equivalence.py`` pins vectorized == reference
  bit-for-bit) and as executable documentation of Algorithms 2–3.

Both kernels produce identical ``alloc`` arrays, identical message
payloads (byte size *and* order under the accounting model), and
identical ``ops_*`` counters.

Membership backends
-------------------
The vectorized replica state is ``(num_local_vertices, |P|)`` bits with
two layouts behind one interface:

* :class:`DenseMembership` — a boolean matrix, one byte per bit; the
  default for |P| ≤ 64 where the footprint is small and direct boolean
  indexing is fastest.
* :class:`PackedMembership` — uint64 words, 64 partitions per word
  (``ceil(|P|/64)`` words per vertex), selected automatically for
  |P| > 64.  Row combination becomes word-wise ``&``/``|``, cardinality
  ``np.bitwise_count``, cutting the membership footprint 8× — the
  layout the Fig-9 memory model reports at |P| > 64 (the
  ``membership_words`` resident entry, identical under both kernels).

Both backends produce bit-identical allocation behaviour (pinned by the
packed-vs-dense property tests).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.cluster.runtime import Process, pair_array
from repro.core.hash2d import unpack_bool_matrix
from repro.graph.csr import CSRGraph, adjacency_slots, first_occurrence
from repro.kernels import validate_kernel

__all__ = ["AllocationProcess", "DenseMembership", "PackedMembership",
           "seed_vertex_random", "seed_vertex_min_degree",
           "TAG_SELECT", "TAG_SYNC", "TAG_BOUNDARY", "TAG_EDGES"]

TAG_SELECT = "select"
TAG_SYNC = "sync"
TAG_BOUNDARY = "boundary"
TAG_EDGES = "edges"

#: widest |P| served by the dense boolean backend; beyond it the packed
#: uint64 backend takes over (``membership="auto"``)
DENSE_MEMBERSHIP_MAX_PARTITIONS = 64

_U64_ONE = np.uint64(1)


def seed_vertex_random(local_vertices: np.ndarray,
                       rest_degree: np.ndarray,
                       rng: np.random.Generator) -> int | None:
    """A vertex with non-allocated local edges, or None.

    The single home of the random seed-lookup rule — one uniform draw
    over the candidate set, no draw when it is empty — shared by
    :meth:`AllocationProcess.random_unallocated_vertex` and the
    processes backend's shared-memory seed source, so the two can
    never diverge on the RNG sequence.
    """
    candidates = np.flatnonzero(rest_degree > 0)
    if not len(candidates):
        return None
    return int(local_vertices[candidates[rng.integers(len(candidates))]])


def seed_vertex_min_degree(local_vertices: np.ndarray,
                           rest_degree: np.ndarray) -> int | None:
    """Lowest-remaining-degree seed (the seeding ablation), or None.

    Ties break to the lowest local index (``np.argmin``); shared for
    the same never-diverge reason as :func:`seed_vertex_random`.
    """
    candidates = np.flatnonzero(rest_degree > 0)
    if not len(candidates):
        return None
    best = candidates[np.argmin(rest_degree[candidates])]
    return int(local_vertices[best])


class DenseMembership:
    """Boolean ``(num_vertices, width)`` replica-membership matrix."""

    kind = "dense"

    def __init__(self, num_vertices: int, width: int):
        self._mat = np.zeros((num_vertices, width), dtype=bool)

    @property
    def width(self) -> int:
        return self._mat.shape[1]

    def grow(self, width: int) -> None:
        if width > self.width:
            self._mat = np.concatenate(
                [self._mat,
                 np.zeros((self._mat.shape[0], width - self.width),
                          dtype=bool)], axis=1)

    def entries(self) -> int:
        """Number of set (vertex, partition) bits."""
        return int(self._mat.sum())

    def nonzero(self) -> tuple[np.ndarray, np.ndarray]:
        """(vertex idx, partition) coordinates of every set bit."""
        return np.nonzero(self._mat)

    def rows_bool(self, idx: np.ndarray) -> np.ndarray:
        """Boolean ``(len(idx), width)`` membership rows (always a copy)."""
        return self._mat[idx]

    # -- scalar bit ops (streaming tail walkers) -----------------------
    def get_bit(self, v: int, p: int) -> bool:
        return bool(self._mat[v, p])

    def set_bit(self, v: int, p: int) -> None:
        self._mat[v, p] = True

    # -- single-partition column ops (one-hop) -------------------------
    def test_col(self, idx: np.ndarray, p: int) -> np.ndarray:
        return self._mat[idx, p]

    def set_col(self, idx: np.ndarray, p: int) -> None:
        self._mat[idx, p] = True

    # -- (vertex, partition) pair ops (sync merge) ---------------------
    def test_pairs(self, idx: np.ndarray, ps: np.ndarray) -> np.ndarray:
        return self._mat[idx, ps]

    def set_pairs(self, idx: np.ndarray, ps: np.ndarray) -> None:
        self._mat[idx, ps] = True

    # -- row-mask algebra (two-hop shared-partition tests) -------------
    def rows_and(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-row partition-set intersection masks (backend layout)."""
        return self._mat[a] & self._mat[b]

    @staticmethod
    def mask_any(masks: np.ndarray) -> np.ndarray:
        return masks.any(axis=1)

    @staticmethod
    def mask_count(masks: np.ndarray) -> np.ndarray:
        return masks.sum(axis=1)

    @staticmethod
    def mask_single_partition(masks: np.ndarray) -> np.ndarray:
        """Partition id per row, valid only for single-bit rows."""
        return masks.argmax(axis=1)

    @staticmethod
    def mask_nonzero(masks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return np.nonzero(masks)

    def nbytes(self) -> int:
        return self._mat.nbytes


class PackedMembership:
    """Packed replica membership: ``ceil(width/64)`` uint64 words per
    vertex, bit ``p % 64`` of word ``p // 64`` = partition ``p``.

    Same interface as :class:`DenseMembership` at 1/8 the footprint;
    row-mask algebra works on word matrices (``&`` for intersection,
    ``np.bitwise_count`` for cardinality)."""

    kind = "packed"

    def __init__(self, num_vertices: int, width: int):
        self._width = width
        self._words = np.zeros((num_vertices, (width + 63) // 64),
                               dtype=np.uint64)

    @property
    def width(self) -> int:
        return self._width

    def grow(self, width: int) -> None:
        if width <= self._width:
            return
        need = (width + 63) // 64
        if need > self._words.shape[1]:
            self._words = np.concatenate(
                [self._words,
                 np.zeros((self._words.shape[0], need - self._words.shape[1]),
                          dtype=np.uint64)], axis=1)
        self._width = width

    def entries(self) -> int:
        return int(np.bitwise_count(self._words).sum())

    def nonzero(self) -> tuple[np.ndarray, np.ndarray]:
        return self.mask_nonzero(self._words)

    def rows_bool(self, idx: np.ndarray) -> np.ndarray:
        """Boolean ``(len(idx), width)`` membership rows (unpacked copy)."""
        return unpack_bool_matrix(self._words[idx], self._width)

    def get_bit(self, v: int, p: int) -> bool:
        return bool((self._words[v, p >> 6] >> np.uint64(p & 63)) & _U64_ONE)

    def set_bit(self, v: int, p: int) -> None:
        self._words[v, p >> 6] |= _U64_ONE << np.uint64(p & 63)

    def test_col(self, idx: np.ndarray, p: int) -> np.ndarray:
        word, bit = p >> 6, np.uint64(p & 63)
        return (self._words[idx, word] >> bit) & _U64_ONE != 0

    def set_col(self, idx: np.ndarray, p: int) -> None:
        # All updates OR the same bit, so buffered fancy |= is exact
        # even with duplicate indices.
        self._words[idx, p >> 6] |= _U64_ONE << np.uint64(p & 63)

    def test_pairs(self, idx: np.ndarray, ps: np.ndarray) -> np.ndarray:
        bits = (ps & 63).astype(np.uint64)
        return (self._words[idx, ps >> 6] >> bits) & _U64_ONE != 0

    def set_pairs(self, idx: np.ndarray, ps: np.ndarray) -> None:
        # Distinct pairs can share a (vertex, word) slot with different
        # bits; bitwise_or.at applies every duplicate.
        np.bitwise_or.at(self._words, (idx, ps >> 6),
                         _U64_ONE << (ps & 63).astype(np.uint64))

    def rows_and(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._words[a] & self._words[b]

    @staticmethod
    def mask_any(masks: np.ndarray) -> np.ndarray:
        return masks.any(axis=1)

    @staticmethod
    def mask_count(masks: np.ndarray) -> np.ndarray:
        return np.bitwise_count(masks).sum(axis=1).astype(np.int64)

    @staticmethod
    def mask_single_partition(masks: np.ndarray) -> np.ndarray:
        word = (masks != 0).argmax(axis=1)
        vals = masks[np.arange(len(masks)), word]
        # Bit position by vectorized binary search (exact for any
        # single-bit word; garbage-in-garbage-out for multi-bit rows,
        # which callers mask away).
        pos = np.zeros(len(masks), dtype=np.int64)
        for shift in (32, 16, 8, 4, 2, 1):
            high = vals >= (_U64_ONE << np.uint64(shift))
            pos[high] += shift
            vals = vals >> np.where(high, np.uint64(shift), np.uint64(0))
        return word * 64 + pos

    def mask_nonzero(self, masks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # One home for the word->bool layout (endian-safe): hash2d's
        # unpacker, the exact inverse of pack_bool_matrix.
        return np.nonzero(unpack_bool_matrix(masks, self._width))

    def nbytes(self) -> int:
        return self._words.nbytes


class AllocationProcess(Process):
    """One allocation process holding a 2D-hash slice of the graph."""

    #: checkpoint/restore excludes: the shared CSR graph and placement,
    #: plus the local index structures derived once in the constructor
    #: (immutable for the life of the process, rebuilt identically by a
    #: respawned worker) — everything else is mutable allocation state.
    _STATE_EXCLUDE = Process._STATE_EXCLUDE | frozenset({
        "graph", "placement", "eids", "local_vertices", "_lsrc", "_ldst",
        "_vindex", "_adj_ptr", "_adj_eid", "_adj_other"})

    def __init__(self, machine: int, graph: CSRGraph, edge_ids: np.ndarray,
                 placement, two_hop: bool = True,
                 kernel: str = "vectorized", membership: str = "auto"):
        super().__init__(("alloc", machine))
        validate_kernel(kernel)
        if membership not in ("auto", "dense", "packed"):
            raise ValueError("membership must be 'auto', 'dense' or 'packed'")
        self.machine = machine
        self.graph = graph
        self.placement = placement
        self.two_hop = two_hop
        self.kernel = kernel
        self.num_partitions = placement.num_processes

        # Local CSR over the owned edges.  ``self.eids`` maps local edge
        # index -> global canonical edge id.  Local arrays use 32-bit
        # ids, mirroring the paper's space-conscious layout (local edge
        # and vertex counts fit comfortably in 32 bits at any per-
        # machine scale the paper runs).
        self.eids = np.asarray(edge_ids, dtype=np.int64)
        src = graph.edges[self.eids, 0]
        dst = graph.edges[self.eids, 1]
        self.local_vertices, inverse = np.unique(
            np.concatenate([src, dst]), return_inverse=True)
        k = len(self.eids)
        self._lsrc = inverse[:k].astype(np.int32)
        self._ldst = inverse[k:].astype(np.int32)
        self._vindex = {int(v): i for i, v in enumerate(self.local_vertices)}

        # Adjacency over local edges: for each local vertex, the list of
        # (local edge idx, other endpoint's local vertex idx), ordered
        # by local edge index within each row.  Built with one
        # counting-sort-style pass (lexsort keyed by vertex, then local
        # edge id) instead of a per-edge Python loop.
        nv = len(self.local_vertices)
        counts = np.bincount(self._lsrc, minlength=nv) + np.bincount(
            self._ldst, minlength=nv)
        self._adj_ptr = np.zeros(nv + 1, dtype=np.int64)
        np.cumsum(counts, out=self._adj_ptr[1:])
        ids = np.arange(k, dtype=np.int32)
        vert = np.concatenate([self._lsrc, self._ldst])
        order = np.lexsort((np.concatenate([ids, ids]), vert))
        self._adj_eid = np.concatenate([ids, ids])[order]
        self._adj_other = np.concatenate([self._ldst, self._lsrc])[order]

        # Mutable allocation state.
        self.alloc = np.full(k, -1, dtype=np.int32)     # partition per local edge
        self.rest_degree = counts.astype(np.int32).copy()  # unallocated local degree
        self.unallocated = k
        #: local view of |E_p| — flat array in both kernels (exact ints)
        self._part_loads = np.zeros(self.num_partitions, dtype=np.int64)
        if kernel == "python":
            #: reference replica state: local vid -> set of partitions
            self._parts: dict[int, set] | None = defaultdict(set)
            self._member = None
        else:
            self._parts = None
            if membership == "packed" or (
                    membership == "auto"
                    and self.num_partitions > DENSE_MEMBERSHIP_MAX_PARTITIONS):
                #: vectorized replica state, uint64-packed (|P| ≫ 64)
                self._member = PackedMembership(nv, self.num_partitions)
            else:
                #: vectorized replica state, boolean matrix
                self._member = DenseMembership(nv, self.num_partitions)

        # Operation counters for the Theorem 3 cost model: adjacency
        # slots touched in each allocation phase.
        self.ops_one_hop = 0
        self.ops_two_hop = 0

        # Per-iteration outboxes of the allocation phases, reset by
        # two_hop_and_report.  Initialised here (not lazily in
        # one_hop_and_sync) so a superstep scheduler may skip an
        # empty-mailbox one-hop step and still run the two-hop step.
        self._ep_new: dict[int, list] = defaultdict(list)
        self._bp_new: list = []

        self.report_memory()

    # ------------------------------------------------------------------
    # Replica-state views (kernel-independent API)
    # ------------------------------------------------------------------
    @property
    def membership_kind(self) -> str:
        """Replica-state layout: ``dict`` (reference), ``dense`` or
        ``packed`` (vectorized backends)."""
        return "dict" if self._parts is not None else self._member.kind

    @property
    def vertex_parts(self) -> dict:
        """Replica state as ``{local vid: set of partition ids}``.

        Always a materialised *snapshot* (under both kernels): mutating
        the returned dict never changes allocation state.  Kernels
        update their own private state (``_parts`` / ``_member``).
        """
        out: dict[int, set] = defaultdict(set)
        if self._parts is not None:
            for lv, ps in self._parts.items():
                out[lv] = set(ps)
            return out
        lv_idx, p_idx = self._member.nonzero()
        for lv, p in zip(lv_idx.tolist(), p_idx.tolist()):
            out[lv].add(p)
        return out

    @property
    def edges_per_partition(self) -> dict:
        """Local per-partition edge counts (dict view of the flat array)."""
        return {p: int(c) for p, c in enumerate(self._part_loads.tolist()) if c}

    def _ensure_partition_capacity(self, p: int) -> None:
        """Grow the flat per-partition state to cover partition id ``p``.

        In a DNE deployment partitions and allocation processes are
        1:1, so the initial ``num_processes`` width already covers every
        id; unit harnesses may drive more partitions than processes.
        """
        width = len(self._part_loads)
        if p < width:
            return
        grow = p + 1 - width
        self._part_loads = np.concatenate(
            [self._part_loads, np.zeros(grow, dtype=np.int64)])
        if self._member is not None:
            self._member.grow(p + 1)

    def _replica_entries(self) -> int:
        """Number of real (vertex, partition) replica pairs held locally."""
        if self._parts is not None:
            return sum(len(s) for s in self._parts.values())
        return self._member.entries()

    # ------------------------------------------------------------------
    # Memory model (Figure 9): CSR arrays + allocation state + replica sets.
    # ------------------------------------------------------------------
    def report_memory(self) -> None:
        csr = (self.eids.nbytes + self._lsrc.nbytes + self._ldst.nbytes
               + self._adj_ptr.nbytes + self._adj_eid.nbytes
               + self._adj_other.nbytes + self.local_vertices.nbytes)
        state = self.alloc.nbytes + self.rest_degree.nbytes
        self.set_resident("graph_csr", csr)
        self.set_resident("alloc_state", state)
        # Replica metadata, one layout at a time (never both): up to 64
        # partitions the model is one byte-scale entry per real
        # (vertex, partition) pair (probed-but-absent vertices
        # contribute nothing — the reference kernel uses non-mutating
        # lookups, so no phantom entries exist); past 64 partitions the
        # deployed layout is the packed uint64-word bitset, and the
        # model reports its footprint *instead* — identically under
        # both kernels, the reference dict standing in for the same
        # deployed structure.
        width = len(self._part_loads)
        if width > DENSE_MEMBERSHIP_MAX_PARTITIONS:
            words = (width + 63) // 64
            self.set_resident("replica_sets", 0)
            self.set_resident("membership_words",
                              len(self.local_vertices) * words * 8)
        else:
            self.set_resident("replica_sets", self._replica_entries() * 8)

    # ------------------------------------------------------------------
    # Seed lookup (expansion fallback when the boundary is empty).
    # ------------------------------------------------------------------
    def random_unallocated_vertex(self, rng: np.random.Generator) -> int | None:
        """A vertex with non-allocated local edges, or None."""
        if self.unallocated == 0:
            return None  # cheap early-out; the scan would find nothing
        return seed_vertex_random(self.local_vertices, self.rest_degree, rng)

    def min_degree_unallocated_vertex(self) -> int | None:
        """Lowest-remaining-degree seed (the seeding ablation)."""
        if self.unallocated == 0:
            return None
        return seed_vertex_min_degree(self.local_vertices, self.rest_degree)

    # ------------------------------------------------------------------
    # Phase 1+2: one-hop allocation, then send syncs.
    # ------------------------------------------------------------------
    def one_hop_and_sync(self) -> None:
        received = self.receive(TAG_SELECT)
        self._ep_new: dict[int, list] = defaultdict(list)  # p -> global eids
        if self.kernel == "python":
            #: (global vid, p) new pairs, tuple list (reference)
            self._bp_new: list = []
            # Deterministic order: by (partition, vertex) over all messages.
            pairs = sorted({(int(p), int(v)) for _, payload in received
                            for (v, p) in payload})
            sync_out: dict[int, list] = defaultdict(list)
            if pairs:
                self._ensure_partition_capacity(max(p for p, _ in pairs))
            self._one_hop_python(pairs, sync_out)
            for proc, payload in sorted(sync_out.items()):
                self.send(("alloc", proc), TAG_SYNC, payload)
            return

        #: (global vid, p) new pairs, list of (k, 2) array chunks
        self._bp_new = []
        sync_out = defaultdict(list)               # proc -> array chunks
        chunks = [pair_array(payload) for _, payload in received]
        chunks = [c for c in chunks if len(c)]
        if chunks:
            arr = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            # Deterministic dedup: unique (p, v) rows come out of
            # np.unique lexicographically sorted — the reference's
            # sorted-set iteration order.
            pv = np.unique(arr[:, ::-1], axis=0)
            self._ensure_partition_capacity(int(pv[-1, 0]))
            self._one_hop_vectorized(pv[:, 0], pv[:, 1], sync_out)
        for proc, parts in sorted(sync_out.items()):
            self.send_batched(
                ("alloc", proc), TAG_SYNC,
                parts[0] if len(parts) == 1 else np.concatenate(parts))

    def _one_hop_python(self, pairs, sync_out) -> None:
        """Reference one-hop: one adjacency slot at a time."""
        for p, v in pairs:
            lv = self._vindex.get(v)
            if lv is None:
                continue  # replica candidate process holding no v-edges
            # The selected vertex itself joins V(E_p) on every process
            # that received the multicast; no sync needed for it.
            self._parts[lv].add(p)
            self.ops_one_hop += int(self._adj_ptr[lv + 1]
                                    - self._adj_ptr[lv])
            for slot in range(self._adj_ptr[lv], self._adj_ptr[lv + 1]):
                le = self._adj_eid[slot]
                if self.alloc[le] != -1:
                    continue
                self._allocate_local(le, p)
                self._ep_new[p].append(int(self.eids[le]))
                lu = int(self._adj_other[slot])
                # Non-mutating membership probe: a defaultdict lookup
                # here would materialise an empty set per probed vertex.
                parts_lu = self._parts.get(lu)
                if parts_lu is None or p not in parts_lu:
                    self._parts[lu].add(p)
                    u = int(self.local_vertices[lu])
                    self._bp_new.append((u, p))
                    for proc in self.placement.replica_processes(u):
                        if proc != self.machine:
                            sync_out[proc].append((u, p))

    def _one_hop_vectorized(self, parr, varr, sync_out) -> None:
        """Flat-array one-hop: per partition, gather every selected
        vertex's adjacency slice at once, allocate the first-occurrence
        free edges, and batch the boundary/sync bookkeeping.

        ``parr`` / ``varr`` are the deduped selection pairs as parallel
        arrays, sorted by (partition, vertex).

        Equivalence with the sequential reference (which walks pairs in
        (p, v) order):

        * within one partition group every free edge incident to a
          selected vertex ends up allocated to p regardless of walk
          order, so keeping the *first-occurrence* slot per edge
          reproduces the reference's allocation set and its append
          order;
        * a boundary pair (x, p) is emitted exactly when x's first
          "other endpoint" event fires while p is not yet in x's
          replica set.  Selected vertices only receive such events from
          *smaller* selected vertices (a larger one's shared edge is
          already taken), i.e. always before their own membership
          update — so probing the membership matrix before applying
          this group's updates is exact.
        """
        if not len(parr):
            return
        # Map global -> local vertex ids; drop vertices not held here.
        pos = np.searchsorted(self.local_vertices, varr)
        nv = len(self.local_vertices)
        pos_c = np.minimum(pos, max(nv - 1, 0))
        present = (pos < nv) & (self.local_vertices[pos_c] == varr) \
            if nv else np.zeros(len(varr), dtype=bool)
        if not present.any():
            return
        parr, lvs_all = parr[present], pos[present]
        # Partition groups are contiguous (pairs sorted by p first) and
        # lvs ascend within each group (local ids are order-isomorphic
        # to global ids).  Groups run in ascending p: first-writer-wins
        # across partitions, as in the reference.
        group_starts = np.flatnonzero(np.concatenate(
            ([True], parr[1:] != parr[:-1])))
        group_ends = np.concatenate((group_starts[1:], [len(parr)]))
        for gs, ge in zip(group_starts.tolist(), group_ends.tolist()):
            self._one_hop_group(int(parr[gs]), lvs_all[gs:ge], sync_out)

    def _one_hop_group(self, p: int, lvs: np.ndarray, sync_out) -> None:
        """One-hop allocation of every selected vertex of one partition."""
        # Concatenated adjacency slices of all selected vertices, in
        # (selected vertex, slot) order — the reference's walk order.
        slot_idx, _ = adjacency_slots(self._adj_ptr, lvs)
        total = len(slot_idx)
        self.ops_one_hop += total
        member = self._member
        if total == 0:
            member.set_col(lvs, p)
            return
        les = self._adj_eid[slot_idx]
        others = self._adj_other[slot_idx]
        free = self.alloc[les] == -1
        les_f = les[free]
        if len(les_f) == 0:
            member.set_col(lvs, p)
            return
        # First-occurrence slot per free edge = the slot that allocates
        # it in the sequential walk (a second occurrence means both
        # endpoints were selected; the edge is already taken by then).
        occ = first_occurrence(les_f)
        new_les = les_f[occ]                       # allocation order
        ev_targets = others[free][occ]             # other endpoint per event

        self.alloc[new_les] = p
        self._ep_new[p].append(self.eids[new_les])
        nv = len(self.local_vertices)
        dec = (np.bincount(self._lsrc[new_les], minlength=nv)
               + np.bincount(self._ldst[new_les], minlength=nv))
        self.rest_degree -= dec.astype(self.rest_degree.dtype)
        self._part_loads[p] += len(new_les)
        self.unallocated -= len(new_les)

        # Boundary events: first event per target vertex, and only for
        # targets not already replicated on p (pre-group state — see
        # docstring for why selected vertices cannot race this probe).
        unknown = ~member.test_col(ev_targets, p)
        cand = ev_targets[unknown]
        new_targets = cand[first_occurrence(cand)] if len(cand) else cand
        member.set_col(lvs, p)
        member.set_col(ev_targets, p)

        if len(new_targets):
            us = self.local_vertices[new_targets]
            rows = np.empty((len(us), 2), dtype=np.int64)
            rows[:, 0] = us
            rows[:, 1] = p
            self._bp_new.append(rows)
            # Batched sync fan-out: one replica-membership mask per
            # destination process instead of per-vertex set algebra.
            masks = self.placement.replica_membership(us)
            for proc in range(masks.shape[1]):
                if proc == self.machine:
                    continue
                hit = masks[:, proc]
                if hit.any():
                    sync_out[proc].append(rows[hit])

    # ------------------------------------------------------------------
    # Phase 2(recv)+3+4: merge syncs, two-hop allocation, local Drest.
    # ------------------------------------------------------------------
    def two_hop_and_report(self) -> None:
        received = self.receive(TAG_SYNC)
        if self.kernel == "python":
            self._two_hop_and_report_python(received)
        else:
            self._two_hop_and_report_vectorized(received)
        self._bp_new = []
        self._ep_new = defaultdict(list)
        self.report_memory()

    def _two_hop_and_report_python(self, received) -> None:
        merged: list[tuple[int, int]] = list(self._bp_new)
        for _, payload in received:
            for v, p in payload:
                lv = self._vindex.get(int(v))
                if lv is None:
                    continue
                self._ensure_partition_capacity(int(p))
                parts_lv = self._parts.get(lv)
                if parts_lv is None or p not in parts_lv:
                    self._parts[lv].add(p)
                    merged.append((int(v), int(p)))

        if self.two_hop:
            self._allocate_two_hop(merged)

        # Local Drest for each new boundary pair, reported to the
        # expansion process of that partition.
        boundary_out: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for v, p in sorted(set(merged)):
            lv = self._vindex[v]
            drest = int(self.rest_degree[lv])
            if drest > 0:
                boundary_out[p].append((v, drest))
        for p, payload in sorted(boundary_out.items()):
            self.send(("expansion", p), TAG_BOUNDARY, payload)

        for p, eids in sorted(self._ep_new.items()):
            self.send(("expansion", p), TAG_EDGES,
                      np.asarray(eids, dtype=np.int64))

    def _two_hop_and_report_vectorized(self, received) -> None:
        merged = self._merge_sync_vectorized(received)

        if self.two_hop:
            self._allocate_two_hop_vectorized(merged)

        # Batched Drest report: unique (v, p) rows come out of
        # np.unique lexicographically sorted — the exact iteration
        # order of the reference loop — so per-partition payloads keep
        # v ascending.
        if len(merged):
            arr = np.unique(merged, axis=0)
            lvs = np.searchsorted(self.local_vertices, arr[:, 0])
            drest = self.rest_degree[lvs]
            keep = drest > 0
            rows = np.empty((int(keep.sum()), 2), dtype=np.int64)
            rows[:, 0] = arr[keep, 0]
            rows[:, 1] = drest[keep]
            ps = arr[keep, 1]
            for p in np.unique(ps).tolist():
                self.send_batched(("expansion", p), TAG_BOUNDARY,
                                  rows[ps == p])

        for p, chunks in sorted(self._ep_new.items()):
            self.send_batched(("expansion", p), TAG_EDGES,
                              np.asarray(chunks[0], dtype=np.int64)
                              if len(chunks) == 1
                              else np.concatenate(chunks))

    def _merge_sync_vectorized(self, received) -> np.ndarray:
        """Merge sync payloads into the membership state; returns the
        merged new-pair rows ``(v, p)`` in the reference walk order.

        Local ``_bp_new`` rows come first and are merged
        unconditionally (their membership bits were set during
        one-hop); received rows are kept when the (vertex, partition)
        bit is still unset, with first-occurrence dedup standing in for
        the reference's set-as-you-go sequential filter (membership
        only ever turns on, so probing pre-state plus intra-batch dedup
        is exact).
        """
        chunks = list(self._bp_new)
        nbp = sum(len(c) for c in chunks)
        chunks.extend(pair_array(payload) for _, payload in received)
        chunks = [c for c in chunks if len(c)]
        if not chunks:
            return np.empty((0, 2), dtype=np.int64)
        arr = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        forced = np.arange(len(arr)) < nbp

        # Presence filter (sync rows may name vertices not held here).
        vs = arr[:, 0]
        pos = np.searchsorted(self.local_vertices, vs)
        nv = len(self.local_vertices)
        pos_c = np.minimum(pos, max(nv - 1, 0))
        present = (pos < nv) & (self.local_vertices[pos_c] == vs) \
            if nv else np.zeros(len(vs), dtype=bool)
        if not present.any():
            return np.empty((0, 2), dtype=np.int64)
        arr, lvs, forced = arr[present], pos[present], forced[present]

        ps = arr[:, 1]
        self._ensure_partition_capacity(int(ps.max()))
        width = len(self._part_loads)
        occ = first_occurrence(lvs * width + ps)
        arr, lvs, ps, forced = arr[occ], lvs[occ], ps[occ], forced[occ]

        fresh = forced | ~self._member.test_pairs(lvs, ps)
        arr, lvs, ps = arr[fresh], lvs[fresh], ps[fresh]
        self._member.set_pairs(lvs, ps)
        return arr

    def _allocate_two_hop(self, merged: list[tuple[int, int]]) -> None:
        """Condition 5 (reference): allocate local edges whose endpoints
        share partitions, one adjacency slot at a time."""
        seen: set[int] = set()
        for v, _ in merged:
            lv = self._vindex[v]
            if lv in seen:
                continue
            seen.add(lv)
            parts_lv = self._parts.get(lv) or set()
            self.ops_two_hop += int(self._adj_ptr[lv + 1]
                                    - self._adj_ptr[lv])
            for slot in range(self._adj_ptr[lv], self._adj_ptr[lv + 1]):
                le = self._adj_eid[slot]
                if self.alloc[le] != -1:
                    continue
                lw = int(self._adj_other[slot])
                # Non-mutating probe: the defaultdict lookup used to
                # materialise an empty set for every neighbour checked
                # here, bloating the replica dict with phantom entries.
                parts_lw = self._parts.get(lw)
                if not parts_lw:
                    continue
                shared = parts_lv & parts_lw
                if not shared:
                    continue
                pnew = min(shared,
                           key=lambda q: (self._part_loads[q], q))
                self._allocate_local(le, pnew)
                self._ep_new[pnew].append(int(self.eids[le]))

    def _allocate_two_hop_vectorized(self, merged: np.ndarray) -> None:
        """Condition 5, flat-array form.

        Gathers the adjacency slices of every merged vertex in one
        batch, computes shared-partition masks as membership row ANDs
        (boolean or packed-word, backend-dependent), and assigns
        single-shared edges — the overwhelmingly common case — in
        bulk.  Multi-shared (contested) edges resolve through the
        loads-delta batching of :meth:`_resolve_multi_shared`:
        position-dependent running loads are reconstructed with sorted
        segment reductions and only genuinely order-dependent
        collisions replay sequentially, matching the reference's
        running least-loaded walk bit-for-bit.
        """
        if not len(merged):
            return
        lvs_all = np.searchsorted(self.local_vertices, merged[:, 0])
        # Dedup vertices, keeping first-occurrence order (the walk order).
        lvs = lvs_all[first_occurrence(lvs_all)]

        slot_idx, counts = adjacency_slots(self._adj_ptr, lvs)
        self.ops_two_hop += len(slot_idx)
        if len(slot_idx) == 0:
            return
        les = self._adj_eid[slot_idx]
        lws = self._adj_other[slot_idx]
        lv_rep = np.repeat(lvs, counts)

        free = self.alloc[les] == -1
        if not free.any():
            return
        member = self._member
        shared = member.rows_and(lv_rep[free], lws[free])
        has = member.mask_any(shared)
        if not has.any():
            return
        les_f = les[free][has]
        shared_f = shared[has]
        # First visit allocates; later visits (other endpoint also
        # merged) see the edge taken.
        occ = first_occurrence(les_f)
        cand_les = les_f[occ]
        cand_shared = shared_f[occ]

        nshared = member.mask_count(cand_shared)
        tgt = np.where(nshared == 1,
                       member.mask_single_partition(cand_shared), -1)
        multi = np.flatnonzero(nshared > 1)
        loads = self._part_loads
        if len(multi):
            self._resolve_multi_shared(cand_shared, tgt, multi)
        if len(tgt):
            loads += np.bincount(tgt, minlength=len(loads))

        self.alloc[cand_les] = tgt.astype(self.alloc.dtype)
        nv = len(self.local_vertices)
        dec = (np.bincount(self._lsrc[cand_les], minlength=nv)
               + np.bincount(self._ldst[cand_les], minlength=nv))
        self.rest_degree -= dec.astype(self.rest_degree.dtype)
        self.unallocated -= len(cand_les)
        geids = self.eids[cand_les]
        for p in np.unique(tgt).tolist():
            self._ep_new[p].append(geids[tgt == p])

    def _resolve_multi_shared(self, cand_shared: np.ndarray,
                              tgt: np.ndarray, multi: np.ndarray) -> None:
        """Loads-delta batching for the multi-shared tie-break.

        The reference walks the candidate edges in order, allocating
        each contested edge to the least-loaded shared partition under
        the *running* loads.  The running load of partition q at walk
        position i decomposes as::

            base[q] + #{single-shared edges before i targeting q}
                    + #{contested edges before i that chose q}

        The first two terms are position-dependent but order-free: the
        single-shared prefix counts come out of one sorted-segment
        ``searchsorted`` over (partition, position) keys for every
        (contested edge, candidate) pair at once.  Only the third term
        is genuinely order-dependent, and it is nonzero only for
        contested edges whose candidate set overlaps another contested
        edge's — an edge whose candidates appear in no other contested
        edge can never receive a delta from one (a contested edge only
        ever bumps its own candidates).  Those *collisions* replay
        sequentially in walk order; isolated contested edges resolve in
        one vectorized segment-min.

        In real DNE runs the colliding edges dominate the contested set
        (hub partitions recur across candidate sets), so the speedup
        comes from the batched prefix-count base — the reference's
        inner loop over every intervening single-shared edge is gone —
        and from a replay that touches only contested edges, not from
        the isolated fast path.

        Fills ``tgt[multi]`` in place; the caller applies the load
        increments for the whole candidate batch in one bincount.
        """
        member = self._member
        rows, cols = member.mask_nonzero(cand_shared[multi])
        row_starts = np.searchsorted(rows, np.arange(len(multi) + 1))
        width = len(self._part_loads)
        cols64 = cols.astype(np.int64)

        # Single-shared prefix counts per (contested edge, candidate):
        # sort the single-shared events by (partition, walk position),
        # then each pair's count is one segment searchsorted.
        num_cand = len(tgt)
        single_pos = np.flatnonzero(tgt >= 0)
        single_keys = (tgt[single_pos].astype(np.int64) * (num_cand + 1)
                       + single_pos)
        single_keys.sort()
        seg_lo = cols64 * (num_cand + 1)
        abs_pos = multi[rows]
        prefix = (np.searchsorted(single_keys, seg_lo + abs_pos)
                  - np.searchsorted(single_keys, seg_lo))
        run_loads = self._part_loads[cols] + prefix

        # Collision detection: candidates appearing in >1 contested edge.
        col_multiplicity = np.bincount(cols, minlength=width)
        pair_shared = (col_multiplicity[cols] > 1).astype(np.int8)
        row_shared = np.maximum.reduceat(pair_shared, row_starts[:-1])

        # Isolated contested edges: vectorized min over (load, id) keys
        # per row segment.
        min_key = np.minimum.reduceat(run_loads * width + cols64,
                                      row_starts[:-1])
        iso = np.flatnonzero(row_shared == 0)
        tgt[multi[iso]] = min_key[iso] % width

        colliding = np.flatnonzero(row_shared > 0)
        if len(colliding):
            # Sequential replay of the genuinely order-dependent tail:
            # running deltas restricted to the colliding edges' own
            # candidates (isolated decisions never touch them).
            cols_l = cols.tolist()
            base_l = run_loads.tolist()
            starts_l = row_starts.tolist()
            delta = [0] * width
            for j in colliding.tolist():
                lo, hi = starts_l[j], starts_l[j + 1]
                best_q = cols_l[lo]
                best_v = base_l[lo] + delta[best_q]
                for k in range(lo + 1, hi):
                    q = cols_l[k]
                    v = base_l[k] + delta[q]
                    if v < best_v:
                        best_v, best_q = v, q
                tgt[multi[j]] = best_q
                delta[best_q] += 1

    def _allocate_local(self, le: int, p: int) -> None:
        self.alloc[le] = p
        self.rest_degree[self._lsrc[le]] -= 1
        self.rest_degree[self._ldst[le]] -= 1
        self._part_loads[p] += 1
        self.unallocated -= 1
