"""Allocation process (§4, Algorithms 2 and 3).

Each allocation process owns a unique slice of the input edges (placed
by 2D hash) in a local CSR, plus the partition-id sets of the vertices
it has seen.  Per outer iteration it runs the four phases of
``EdgeAllocation``:

1. **One-hop allocation** — for every received ⟨v, p⟩, allocate v's
   non-allocated local edges to p.  Conflicts (two partitions selecting
   endpoints of the same local edge in one iteration) are resolved
   locally, first-writer-wins, mirroring the CAS in the paper.
2. **Synchronisation** — newly appended (vertex, partition) pairs are
   sent to the vertex's replica processes (computable from the id, §4)
   so all replicas agree on allocation ids.
3. **Two-hop allocation** — any local non-allocated edge whose both
   endpoints now share a partition is allocated to the sharing
   partition with the fewest edges (Condition 5: these edges never add
   replicas).
4. **Local Drest** — for each new boundary pair ⟨u, p⟩, the local count
   of u's non-allocated edges is reported to expansion process p, which
   sums the local scores into the global ``Drest(u)``.

Message tags: ``select`` (expansion→alloc), ``sync`` (alloc→alloc),
``boundary`` and ``edges`` (alloc→expansion).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.cluster.runtime import Process
from repro.graph.csr import CSRGraph

__all__ = ["AllocationProcess", "TAG_SELECT", "TAG_SYNC", "TAG_BOUNDARY",
           "TAG_EDGES"]

TAG_SELECT = "select"
TAG_SYNC = "sync"
TAG_BOUNDARY = "boundary"
TAG_EDGES = "edges"


class AllocationProcess(Process):
    """One allocation process holding a 2D-hash slice of the graph."""

    def __init__(self, machine: int, graph: CSRGraph, edge_ids: np.ndarray,
                 placement, two_hop: bool = True):
        super().__init__(("alloc", machine))
        self.machine = machine
        self.graph = graph
        self.placement = placement
        self.two_hop = two_hop

        # Local CSR over the owned edges.  ``self.eids`` maps local edge
        # index -> global canonical edge id.  Local arrays use 32-bit
        # ids, mirroring the paper's space-conscious layout (local edge
        # and vertex counts fit comfortably in 32 bits at any per-
        # machine scale the paper runs).
        self.eids = np.asarray(edge_ids, dtype=np.int64)
        src = graph.edges[self.eids, 0]
        dst = graph.edges[self.eids, 1]
        self.local_vertices, inverse = np.unique(
            np.concatenate([src, dst]), return_inverse=True)
        k = len(self.eids)
        self._lsrc = inverse[:k].astype(np.int32)
        self._ldst = inverse[k:].astype(np.int32)
        self._vindex = {int(v): i for i, v in enumerate(self.local_vertices)}

        # Adjacency over local edges: for each local vertex, the list of
        # (local edge idx, other endpoint's local vertex idx).
        nv = len(self.local_vertices)
        counts = np.bincount(self._lsrc, minlength=nv) + np.bincount(
            self._ldst, minlength=nv)
        self._adj_ptr = np.zeros(nv + 1, dtype=np.int64)
        np.cumsum(counts, out=self._adj_ptr[1:])
        self._adj_eid = np.empty(self._adj_ptr[-1], dtype=np.int32)
        self._adj_other = np.empty(self._adj_ptr[-1], dtype=np.int32)
        cursor = self._adj_ptr[:-1].copy()
        for le in range(k):
            a, b = self._lsrc[le], self._ldst[le]
            self._adj_eid[cursor[a]] = le
            self._adj_other[cursor[a]] = b
            cursor[a] += 1
            self._adj_eid[cursor[b]] = le
            self._adj_other[cursor[b]] = a
            cursor[b] += 1

        # Mutable allocation state.
        self.alloc = np.full(k, -1, dtype=np.int32)     # partition per local edge
        self.rest_degree = counts.astype(np.int32).copy()  # unallocated local degree
        self.vertex_parts: dict[int, set] = defaultdict(set)  # local vid -> {p}
        self.edges_per_partition = defaultdict(int)     # local view of |E_p|
        self.unallocated = k

        # Operation counters for the Theorem 3 cost model: adjacency
        # slots touched in each allocation phase.
        self.ops_one_hop = 0
        self.ops_two_hop = 0

        self.report_memory()

    # ------------------------------------------------------------------
    # Memory model (Figure 9): CSR arrays + allocation state + replica sets.
    # ------------------------------------------------------------------
    def report_memory(self) -> None:
        csr = (self.eids.nbytes + self._lsrc.nbytes + self._ldst.nbytes
               + self._adj_ptr.nbytes + self._adj_eid.nbytes
               + self._adj_other.nbytes + self.local_vertices.nbytes)
        state = self.alloc.nbytes + self.rest_degree.nbytes
        # Replica metadata: one byte-scale entry per (vertex, partition).
        replica = sum(len(s) for s in self.vertex_parts.values()) * 8
        self.set_resident("graph_csr", csr)
        self.set_resident("alloc_state", state)
        self.set_resident("replica_sets", replica)

    # ------------------------------------------------------------------
    # Seed lookup (expansion fallback when the boundary is empty).
    # ------------------------------------------------------------------
    def random_unallocated_vertex(self, rng: np.random.Generator) -> int | None:
        """A vertex with non-allocated local edges, or None."""
        if self.unallocated == 0:
            return None
        candidates = np.flatnonzero(self.rest_degree > 0)
        return int(self.local_vertices[candidates[rng.integers(len(candidates))]])

    def min_degree_unallocated_vertex(self) -> int | None:
        """Lowest-remaining-degree seed (the seeding ablation)."""
        if self.unallocated == 0:
            return None
        candidates = np.flatnonzero(self.rest_degree > 0)
        best = candidates[np.argmin(self.rest_degree[candidates])]
        return int(self.local_vertices[best])

    # ------------------------------------------------------------------
    # Phase 1+2: one-hop allocation, then send syncs.
    # ------------------------------------------------------------------
    def one_hop_and_sync(self) -> None:
        received = self.receive(TAG_SELECT)
        # Deterministic order: by (partition, vertex) over all messages.
        pairs = sorted({(int(p), int(v)) for _, payload in received
                        for (v, p) in payload})

        self._bp_new: list[tuple[int, int]] = []   # (global vid, p) new pairs
        self._ep_new: dict[int, list[int]] = defaultdict(list)  # p -> global eids

        sync_out: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for p, v in pairs:
            lv = self._vindex.get(v)
            if lv is None:
                continue  # replica candidate process holding no v-edges
            # The selected vertex itself joins V(E_p) on every process
            # that received the multicast; no sync needed for it.
            self.vertex_parts[lv].add(p)
            self.ops_one_hop += int(self._adj_ptr[lv + 1]
                                    - self._adj_ptr[lv])
            for slot in range(self._adj_ptr[lv], self._adj_ptr[lv + 1]):
                le = self._adj_eid[slot]
                if self.alloc[le] != -1:
                    continue
                self._allocate_local(le, p)
                self._ep_new[p].append(int(self.eids[le]))
                lu = int(self._adj_other[slot])
                if p not in self.vertex_parts[lu]:
                    self.vertex_parts[lu].add(p)
                    u = int(self.local_vertices[lu])
                    self._bp_new.append((u, p))
                    for proc in self.placement.replica_processes(u):
                        if proc != self.machine:
                            sync_out[proc].append((u, p))

        for proc, payload in sorted(sync_out.items()):
            self.send(("alloc", proc), TAG_SYNC, payload)

    # ------------------------------------------------------------------
    # Phase 2(recv)+3+4: merge syncs, two-hop allocation, local Drest.
    # ------------------------------------------------------------------
    def two_hop_and_report(self) -> None:
        received = self.receive(TAG_SYNC)
        merged: list[tuple[int, int]] = list(self._bp_new)
        for _, payload in received:
            for v, p in payload:
                lv = self._vindex.get(int(v))
                if lv is None:
                    continue
                if p not in self.vertex_parts[lv]:
                    self.vertex_parts[lv].add(p)
                    merged.append((int(v), int(p)))

        if self.two_hop:
            self._allocate_two_hop(merged)

        # Local Drest for each new boundary pair, reported to the
        # expansion process of that partition.
        boundary_out: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for v, p in sorted(set(merged)):
            lv = self._vindex[v]
            drest = int(self.rest_degree[lv])
            if drest > 0:
                boundary_out[p].append((v, drest))
        for p, payload in sorted(boundary_out.items()):
            self.send(("expansion", p), TAG_BOUNDARY, payload)

        for p, eids in sorted(self._ep_new.items()):
            self.send(("expansion", p), TAG_EDGES,
                      np.asarray(eids, dtype=np.int64))
        self._bp_new = []
        self._ep_new = defaultdict(list)
        self.report_memory()

    def _allocate_two_hop(self, merged: list[tuple[int, int]]) -> None:
        """Condition 5: allocate local edges whose endpoints share parts."""
        seen: set[int] = set()
        for v, _ in merged:
            lv = self._vindex[v]
            if lv in seen:
                continue
            seen.add(lv)
            self.ops_two_hop += int(self._adj_ptr[lv + 1]
                                    - self._adj_ptr[lv])
            for slot in range(self._adj_ptr[lv], self._adj_ptr[lv + 1]):
                le = self._adj_eid[slot]
                if self.alloc[le] != -1:
                    continue
                lw = int(self._adj_other[slot])
                shared = self.vertex_parts[lv] & self.vertex_parts[lw]
                if not shared:
                    continue
                pnew = min(shared,
                           key=lambda q: (self.edges_per_partition[q], q))
                self._allocate_local(le, pnew)
                self._ep_new[pnew].append(int(self.eids[le]))

    def _allocate_local(self, le: int, p: int) -> None:
        self.alloc[le] = p
        self.rest_degree[self._lsrc[le]] -= 1
        self.rest_degree[self._ldst[le]] -= 1
        self.edges_per_partition[p] += 1
        self.unallocated -= 1
