"""Allocation process (§4, Algorithms 2 and 3).

Each allocation process owns a unique slice of the input edges (placed
by 2D hash) in a local CSR, plus the partition-id sets of the vertices
it has seen.  Per outer iteration it runs the four phases of
``EdgeAllocation``:

1. **One-hop allocation** — for every received ⟨v, p⟩, allocate v's
   non-allocated local edges to p.  Conflicts (two partitions selecting
   endpoints of the same local edge in one iteration) are resolved
   locally, first-writer-wins, mirroring the CAS in the paper.
2. **Synchronisation** — newly appended (vertex, partition) pairs are
   sent to the vertex's replica processes (computable from the id, §4)
   so all replicas agree on allocation ids.
3. **Two-hop allocation** — any local non-allocated edge whose both
   endpoints now share a partition is allocated to the sharing
   partition with the fewest edges (Condition 5: these edges never add
   replicas).
4. **Local Drest** — for each new boundary pair ⟨u, p⟩, the local count
   of u's non-allocated edges is reported to expansion process p, which
   sums the local scores into the global ``Drest(u)``.

Message tags: ``select`` (expansion→alloc), ``sync`` (alloc→alloc),
``boundary`` and ``edges`` (alloc→expansion).

Kernel architecture
-------------------
The paper's §4 data-structure argument is that everything the
allocation phases touch lives in *flat arrays* (CSR ``indptr`` /
``indices`` parallels), never in pointer-chasing maps — that is where
the order-of-magnitude speed and memory win over ParMETIS-style code
comes from.  This module mirrors the argument with two interchangeable
kernels:

* ``kernel="vectorized"`` (default) — replica membership is a
  ``(num_local_vertices, |P|)`` boolean matrix, one-hop allocation is a
  batched gather of whole adjacency slices via ``indptr``
  fancy-indexing followed by first-occurrence dedup, and
  ``rest_degree`` / per-partition load updates are ``np.bincount``
  scatter-adds.  Per iteration the work is O(slots touched), with no
  per-slot Python dispatch.
* ``kernel="python"`` — the slow reference: dict-of-set replica state
  walked one adjacency slot at a time, kept for golden equivalence
  tests (``tests/test_kernel_equivalence.py`` pins vectorized ==
  reference bit-for-bit) and as executable documentation of
  Algorithms 2–3.

Both kernels produce identical ``alloc`` arrays, identical message
payloads (content *and* order), and identical ``ops_*`` counters.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.cluster.runtime import Process
from repro.graph.csr import CSRGraph, adjacency_slots, first_occurrence
from repro.kernels import validate_kernel

__all__ = ["AllocationProcess", "TAG_SELECT", "TAG_SYNC", "TAG_BOUNDARY",
           "TAG_EDGES"]

TAG_SELECT = "select"
TAG_SYNC = "sync"
TAG_BOUNDARY = "boundary"
TAG_EDGES = "edges"


class AllocationProcess(Process):
    """One allocation process holding a 2D-hash slice of the graph."""

    def __init__(self, machine: int, graph: CSRGraph, edge_ids: np.ndarray,
                 placement, two_hop: bool = True,
                 kernel: str = "vectorized"):
        super().__init__(("alloc", machine))
        validate_kernel(kernel)
        self.machine = machine
        self.graph = graph
        self.placement = placement
        self.two_hop = two_hop
        self.kernel = kernel
        self.num_partitions = placement.num_processes

        # Local CSR over the owned edges.  ``self.eids`` maps local edge
        # index -> global canonical edge id.  Local arrays use 32-bit
        # ids, mirroring the paper's space-conscious layout (local edge
        # and vertex counts fit comfortably in 32 bits at any per-
        # machine scale the paper runs).
        self.eids = np.asarray(edge_ids, dtype=np.int64)
        src = graph.edges[self.eids, 0]
        dst = graph.edges[self.eids, 1]
        self.local_vertices, inverse = np.unique(
            np.concatenate([src, dst]), return_inverse=True)
        k = len(self.eids)
        self._lsrc = inverse[:k].astype(np.int32)
        self._ldst = inverse[k:].astype(np.int32)
        self._vindex = {int(v): i for i, v in enumerate(self.local_vertices)}

        # Adjacency over local edges: for each local vertex, the list of
        # (local edge idx, other endpoint's local vertex idx), ordered
        # by local edge index within each row.  Built with one
        # counting-sort-style pass (lexsort keyed by vertex, then local
        # edge id) instead of a per-edge Python loop.
        nv = len(self.local_vertices)
        counts = np.bincount(self._lsrc, minlength=nv) + np.bincount(
            self._ldst, minlength=nv)
        self._adj_ptr = np.zeros(nv + 1, dtype=np.int64)
        np.cumsum(counts, out=self._adj_ptr[1:])
        ids = np.arange(k, dtype=np.int32)
        vert = np.concatenate([self._lsrc, self._ldst])
        order = np.lexsort((np.concatenate([ids, ids]), vert))
        self._adj_eid = np.concatenate([ids, ids])[order]
        self._adj_other = np.concatenate([self._ldst, self._lsrc])[order]

        # Mutable allocation state.
        self.alloc = np.full(k, -1, dtype=np.int32)     # partition per local edge
        self.rest_degree = counts.astype(np.int32).copy()  # unallocated local degree
        self.unallocated = k
        #: local view of |E_p| — flat array in both kernels (exact ints)
        self._part_loads = np.zeros(self.num_partitions, dtype=np.int64)
        if kernel == "python":
            #: reference replica state: local vid -> set of partitions
            self._parts: dict[int, set] | None = defaultdict(set)
            self._member = None
        else:
            self._parts = None
            #: vectorized replica state: (local vid, partition) matrix
            self._member = np.zeros((nv, self.num_partitions), dtype=bool)

        # Operation counters for the Theorem 3 cost model: adjacency
        # slots touched in each allocation phase.
        self.ops_one_hop = 0
        self.ops_two_hop = 0

        self.report_memory()

    # ------------------------------------------------------------------
    # Replica-state views (kernel-independent API)
    # ------------------------------------------------------------------
    @property
    def vertex_parts(self) -> dict:
        """Replica state as ``{local vid: set of partition ids}``.

        Always a materialised *snapshot* (under both kernels): mutating
        the returned dict never changes allocation state.  Kernels
        update their own private state (``_parts`` / ``_member``).
        """
        out: dict[int, set] = defaultdict(set)
        if self._parts is not None:
            for lv, ps in self._parts.items():
                out[lv] = set(ps)
            return out
        lv_idx, p_idx = np.nonzero(self._member)
        for lv, p in zip(lv_idx.tolist(), p_idx.tolist()):
            out[lv].add(p)
        return out

    @property
    def edges_per_partition(self) -> dict:
        """Local per-partition edge counts (dict view of the flat array)."""
        return {p: int(c) for p, c in enumerate(self._part_loads.tolist()) if c}

    def _ensure_partition_capacity(self, p: int) -> None:
        """Grow the flat per-partition state to cover partition id ``p``.

        In a DNE deployment partitions and allocation processes are
        1:1, so the initial ``num_processes`` width already covers every
        id; unit harnesses may drive more partitions than processes.
        """
        width = len(self._part_loads)
        if p < width:
            return
        grow = p + 1 - width
        self._part_loads = np.concatenate(
            [self._part_loads, np.zeros(grow, dtype=np.int64)])
        if self._member is not None:
            self._member = np.concatenate(
                [self._member,
                 np.zeros((self._member.shape[0], grow), dtype=bool)],
                axis=1)

    def _replica_entries(self) -> int:
        """Number of real (vertex, partition) replica pairs held locally."""
        if self._parts is not None:
            return sum(len(s) for s in self._parts.values())
        return int(self._member.sum())

    # ------------------------------------------------------------------
    # Memory model (Figure 9): CSR arrays + allocation state + replica sets.
    # ------------------------------------------------------------------
    def report_memory(self) -> None:
        csr = (self.eids.nbytes + self._lsrc.nbytes + self._ldst.nbytes
               + self._adj_ptr.nbytes + self._adj_eid.nbytes
               + self._adj_other.nbytes + self.local_vertices.nbytes)
        state = self.alloc.nbytes + self.rest_degree.nbytes
        # Replica metadata: one byte-scale entry per real (vertex,
        # partition) pair.  Probed-but-absent vertices contribute
        # nothing (the reference kernel uses non-mutating lookups, so
        # no phantom entries exist to begin with).
        replica = self._replica_entries() * 8
        self.set_resident("graph_csr", csr)
        self.set_resident("alloc_state", state)
        self.set_resident("replica_sets", replica)

    # ------------------------------------------------------------------
    # Seed lookup (expansion fallback when the boundary is empty).
    # ------------------------------------------------------------------
    def random_unallocated_vertex(self, rng: np.random.Generator) -> int | None:
        """A vertex with non-allocated local edges, or None."""
        if self.unallocated == 0:
            return None
        candidates = np.flatnonzero(self.rest_degree > 0)
        return int(self.local_vertices[candidates[rng.integers(len(candidates))]])

    def min_degree_unallocated_vertex(self) -> int | None:
        """Lowest-remaining-degree seed (the seeding ablation)."""
        if self.unallocated == 0:
            return None
        candidates = np.flatnonzero(self.rest_degree > 0)
        best = candidates[np.argmin(self.rest_degree[candidates])]
        return int(self.local_vertices[best])

    # ------------------------------------------------------------------
    # Phase 1+2: one-hop allocation, then send syncs.
    # ------------------------------------------------------------------
    def one_hop_and_sync(self) -> None:
        received = self.receive(TAG_SELECT)
        # Deterministic order: by (partition, vertex) over all messages.
        pairs = sorted({(int(p), int(v)) for _, payload in received
                        for (v, p) in payload})

        self._bp_new: list[tuple[int, int]] = []   # (global vid, p) new pairs
        self._ep_new: dict[int, list[int]] = defaultdict(list)  # p -> global eids

        sync_out: dict[int, list[tuple[int, int]]] = defaultdict(list)
        if pairs:
            self._ensure_partition_capacity(max(p for p, _ in pairs))
        if self.kernel == "python":
            self._one_hop_python(pairs, sync_out)
        else:
            self._one_hop_vectorized(pairs, sync_out)

        for proc, payload in sorted(sync_out.items()):
            self.send(("alloc", proc), TAG_SYNC, payload)

    def _one_hop_python(self, pairs, sync_out) -> None:
        """Reference one-hop: one adjacency slot at a time."""
        for p, v in pairs:
            lv = self._vindex.get(v)
            if lv is None:
                continue  # replica candidate process holding no v-edges
            # The selected vertex itself joins V(E_p) on every process
            # that received the multicast; no sync needed for it.
            self._parts[lv].add(p)
            self.ops_one_hop += int(self._adj_ptr[lv + 1]
                                    - self._adj_ptr[lv])
            for slot in range(self._adj_ptr[lv], self._adj_ptr[lv + 1]):
                le = self._adj_eid[slot]
                if self.alloc[le] != -1:
                    continue
                self._allocate_local(le, p)
                self._ep_new[p].append(int(self.eids[le]))
                lu = int(self._adj_other[slot])
                # Non-mutating membership probe: a defaultdict lookup
                # here would materialise an empty set per probed vertex.
                parts_lu = self._parts.get(lu)
                if parts_lu is None or p not in parts_lu:
                    self._parts[lu].add(p)
                    u = int(self.local_vertices[lu])
                    self._bp_new.append((u, p))
                    for proc in self.placement.replica_processes(u):
                        if proc != self.machine:
                            sync_out[proc].append((u, p))

    def _one_hop_vectorized(self, pairs, sync_out) -> None:
        """Flat-array one-hop: per partition, gather every selected
        vertex's adjacency slice at once, allocate the first-occurrence
        free edges, and batch the boundary/sync bookkeeping.

        Equivalence with the sequential reference (which walks pairs in
        (p, v) order):

        * within one partition group every free edge incident to a
          selected vertex ends up allocated to p regardless of walk
          order, so keeping the *first-occurrence* slot per edge
          reproduces the reference's allocation set and its append
          order;
        * a boundary pair (x, p) is emitted exactly when x's first
          "other endpoint" event fires while p is not yet in x's
          replica set.  Selected vertices only receive such events from
          *smaller* selected vertices (a larger one's shared edge is
          already taken), i.e. always before their own membership
          update — so probing the membership matrix before applying
          this group's updates is exact.
        """
        if not pairs:
            return
        parr = np.fromiter((pq[0] for pq in pairs), dtype=np.int64,
                           count=len(pairs))
        varr = np.fromiter((pq[1] for pq in pairs), dtype=np.int64,
                           count=len(pairs))
        # Map global -> local vertex ids; drop vertices not held here.
        pos = np.searchsorted(self.local_vertices, varr)
        nv = len(self.local_vertices)
        pos_c = np.minimum(pos, max(nv - 1, 0))
        present = (pos < nv) & (self.local_vertices[pos_c] == varr) \
            if nv else np.zeros(len(varr), dtype=bool)
        if not present.any():
            return
        parr, lvs_all = parr[present], pos[present]
        # Partition groups are contiguous (pairs sorted by p first) and
        # lvs ascend within each group (local ids are order-isomorphic
        # to global ids).  Groups run in ascending p: first-writer-wins
        # across partitions, as in the reference.
        group_starts = np.flatnonzero(np.concatenate(
            ([True], parr[1:] != parr[:-1])))
        group_ends = np.concatenate((group_starts[1:], [len(parr)]))
        for gs, ge in zip(group_starts.tolist(), group_ends.tolist()):
            self._one_hop_group(int(parr[gs]), lvs_all[gs:ge], sync_out)

    def _one_hop_group(self, p: int, lvs: np.ndarray, sync_out) -> None:
        """One-hop allocation of every selected vertex of one partition."""
        # Concatenated adjacency slices of all selected vertices, in
        # (selected vertex, slot) order — the reference's walk order.
        slot_idx, _ = adjacency_slots(self._adj_ptr, lvs)
        total = len(slot_idx)
        self.ops_one_hop += total
        col = self._member[:, p]
        if total == 0:
            col[lvs] = True
            return
        les = self._adj_eid[slot_idx]
        others = self._adj_other[slot_idx]
        free = self.alloc[les] == -1
        les_f = les[free]
        if len(les_f) == 0:
            col[lvs] = True
            return
        # First-occurrence slot per free edge = the slot that allocates
        # it in the sequential walk (a second occurrence means both
        # endpoints were selected; the edge is already taken by then).
        occ = first_occurrence(les_f)
        new_les = les_f[occ]                       # allocation order
        ev_targets = others[free][occ]             # other endpoint per event

        self.alloc[new_les] = p
        self._ep_new[p].extend(self.eids[new_les].tolist())
        dec = (np.bincount(self._lsrc[new_les], minlength=len(col))
               + np.bincount(self._ldst[new_les], minlength=len(col)))
        self.rest_degree -= dec.astype(self.rest_degree.dtype)
        self._part_loads[p] += len(new_les)
        self.unallocated -= len(new_les)

        # Boundary events: first event per target vertex, and only for
        # targets not already replicated on p (pre-group state — see
        # docstring for why selected vertices cannot race this probe).
        unknown = ~col[ev_targets]
        cand = ev_targets[unknown]
        new_targets = cand[first_occurrence(cand)] if len(cand) else cand
        col[lvs] = True
        col[ev_targets] = True

        if len(new_targets):
            us = self.local_vertices[new_targets]
            self._bp_new.extend((int(u), p) for u in us)
            # Batched sync fan-out: one replica-membership mask per
            # destination process instead of per-vertex set algebra.
            masks = self.placement.replica_membership(us)
            for proc in range(self.num_partitions):
                if proc == self.machine:
                    continue
                hit = masks[:, proc]
                if hit.any():
                    sync_out[proc].extend(
                        (int(u), p) for u in us[hit])

    # ------------------------------------------------------------------
    # Phase 2(recv)+3+4: merge syncs, two-hop allocation, local Drest.
    # ------------------------------------------------------------------
    def two_hop_and_report(self) -> None:
        received = self.receive(TAG_SYNC)
        merged: list[tuple[int, int]] = list(self._bp_new)
        for _, payload in received:
            for v, p in payload:
                lv = self._vindex.get(int(v))
                if lv is None:
                    continue
                self._ensure_partition_capacity(int(p))
                if self._parts is not None:
                    parts_lv = self._parts.get(lv)
                    if parts_lv is None or p not in parts_lv:
                        self._parts[lv].add(p)
                        merged.append((int(v), int(p)))
                elif not self._member[lv, p]:
                    self._member[lv, p] = True
                    merged.append((int(v), int(p)))

        if self.two_hop:
            if self.kernel == "python":
                self._allocate_two_hop(merged)
            else:
                self._allocate_two_hop_vectorized(merged)

        # Local Drest for each new boundary pair, reported to the
        # expansion process of that partition.
        boundary_out: dict[int, list[tuple[int, int]]] = defaultdict(list)
        if self.kernel == "python":
            for v, p in sorted(set(merged)):
                lv = self._vindex[v]
                drest = int(self.rest_degree[lv])
                if drest > 0:
                    boundary_out[p].append((v, drest))
        elif merged:
            # Batched form of the same report: unique (v, p) rows come
            # out of np.unique lexicographically sorted — the exact
            # iteration order of the reference loop — so per-partition
            # payloads keep v ascending.
            arr = np.unique(np.array(merged, dtype=np.int64), axis=0)
            lvs = np.searchsorted(self.local_vertices, arr[:, 0])
            drest = self.rest_degree[lvs]
            keep = drest > 0
            vs, ps, ds = arr[keep, 0], arr[keep, 1], drest[keep]
            for p in np.unique(ps).tolist():
                sel = ps == p
                boundary_out[p] = list(zip(vs[sel].tolist(),
                                           ds[sel].tolist()))
        for p, payload in sorted(boundary_out.items()):
            self.send(("expansion", p), TAG_BOUNDARY, payload)

        for p, eids in sorted(self._ep_new.items()):
            self.send(("expansion", p), TAG_EDGES,
                      np.asarray(eids, dtype=np.int64))
        self._bp_new = []
        self._ep_new = defaultdict(list)
        self.report_memory()

    def _allocate_two_hop(self, merged: list[tuple[int, int]]) -> None:
        """Condition 5 (reference): allocate local edges whose endpoints
        share partitions, one adjacency slot at a time."""
        seen: set[int] = set()
        for v, _ in merged:
            lv = self._vindex[v]
            if lv in seen:
                continue
            seen.add(lv)
            parts_lv = self._parts.get(lv) or set()
            self.ops_two_hop += int(self._adj_ptr[lv + 1]
                                    - self._adj_ptr[lv])
            for slot in range(self._adj_ptr[lv], self._adj_ptr[lv + 1]):
                le = self._adj_eid[slot]
                if self.alloc[le] != -1:
                    continue
                lw = int(self._adj_other[slot])
                # Non-mutating probe: the defaultdict lookup used to
                # materialise an empty set for every neighbour checked
                # here, bloating the replica dict with phantom entries.
                parts_lw = self._parts.get(lw)
                if not parts_lw:
                    continue
                shared = parts_lv & parts_lw
                if not shared:
                    continue
                pnew = min(shared,
                           key=lambda q: (self._part_loads[q], q))
                self._allocate_local(le, pnew)
                self._ep_new[pnew].append(int(self.eids[le]))

    def _allocate_two_hop_vectorized(self, merged) -> None:
        """Condition 5, flat-array form.

        Gathers the adjacency slices of every merged vertex in one
        batch, computes shared-partition masks as boolean-matrix row
        ANDs, and resolves the (rare) multi-shared edges sequentially so
        the running least-loaded tie-break matches the reference walk
        exactly; single-shared edges — the overwhelmingly common case —
        are assigned in bulk.
        """
        if not merged:
            return
        vs = np.fromiter((m[0] for m in merged), dtype=np.int64,
                         count=len(merged))
        lvs_all = np.searchsorted(self.local_vertices, vs)
        # Dedup vertices, keeping first-occurrence order (the walk order).
        lvs = lvs_all[first_occurrence(lvs_all)]

        slot_idx, counts = adjacency_slots(self._adj_ptr, lvs)
        self.ops_two_hop += len(slot_idx)
        if len(slot_idx) == 0:
            return
        les = self._adj_eid[slot_idx]
        lws = self._adj_other[slot_idx]
        lv_rep = np.repeat(lvs, counts)

        free = self.alloc[les] == -1
        if not free.any():
            return
        shared = self._member[lv_rep[free]] & self._member[lws[free]]
        has = shared.any(axis=1)
        if not has.any():
            return
        les_f = les[free][has]
        shared_f = shared[has]
        # First visit allocates; later visits (other endpoint also
        # merged) see the edge taken.
        occ = first_occurrence(les_f)
        cand_les = les_f[occ]
        cand_shared = shared_f[occ]

        nshared = cand_shared.sum(axis=1)
        tgt = np.where(nshared == 1, cand_shared.argmax(axis=1), -1)
        multi = np.flatnonzero(nshared > 1)
        loads = self._part_loads
        if len(multi):
            # Replay the least-loaded tie-break in walk order: bump the
            # running loads for each single-shared edge passed, pick
            # min (load, id) for each contested one.  Plain-int
            # bookkeeping — per-edge numpy dispatch costs more than the
            # whole replay.
            rows, cols = np.nonzero(cand_shared[multi])
            row_starts = np.searchsorted(rows, np.arange(len(multi) + 1))
            cols_l = cols.tolist()
            loads_l = loads.tolist()
            tgt_l = tgt.tolist()
            prev = 0
            for j, i in enumerate(multi.tolist()):
                for t in tgt_l[prev:i]:
                    loads_l[t] += 1
                qs = cols_l[row_starts[j]:row_starts[j + 1]]
                q = min(qs, key=lambda x: (loads_l[x], x))
                tgt_l[i] = q
                loads_l[q] += 1
                prev = i + 1
            for t in tgt_l[prev:]:
                loads_l[t] += 1
            tgt = np.asarray(tgt_l, dtype=np.int64)
            loads[:] = loads_l
        elif len(tgt):
            loads += np.bincount(tgt, minlength=len(loads))

        self.alloc[cand_les] = tgt.astype(self.alloc.dtype)
        dec = (np.bincount(self._lsrc[cand_les], minlength=len(self._member))
               + np.bincount(self._ldst[cand_les], minlength=len(self._member)))
        self.rest_degree -= dec.astype(self.rest_degree.dtype)
        self.unallocated -= len(cand_les)
        geids = self.eids[cand_les]
        for p in np.unique(tgt).tolist():
            self._ep_new[p].extend(geids[tgt == p].tolist())

    def _allocate_local(self, le: int, p: int) -> None:
        self.alloc[le] = p
        self.rest_degree[self._lsrc[le]] -= 1
        self.rest_degree[self._ldst[le]] -= 1
        self._part_loads[p] += 1
        self.unallocated -= 1
