"""On-disk run store — partitioner results as durable, queryable artifacts.

A :class:`RunStore` is a WAL-mode SQLite database holding every
partitioner run worth serving: the run metadata, its quality metrics,
the flat per-edge assignment array (as a checksummed blob plus an
mmap-able sidecar), and the row-wise vertex→partition replica relation
the HTTP layer paginates over.  ``repro partition --store`` writes into
it, :func:`import_results` backfills it from the committed
``benchmarks/results/*.json`` experiment rows, and
:class:`~repro.serving.api.ServingAPI` reads from it.

Schema discipline
-----------------
The schema is created exclusively through the explicit, versioned
migration list ``MIGRATIONS`` — every connection applies any pending
migrations inside one transaction and records them in
``schema_migrations``, so a store written by an older build upgrades in
place and a store written by a *newer* build fails loudly instead of
misbehaving.  Pragmas on every connection: ``journal_mode=WAL``
(concurrent readers while a writer appends — the serving workload),
``foreign_keys=ON``, ``synchronous=NORMAL``, ``busy_timeout=30s``.
Timestamps are TEXT in UTC ISO-8601.

Tables
------
``runs``
    One row per partitioner run: method, |P|, graph shape, elapsed
    seconds, iterations, provenance (``source``), status
    (``complete`` = assignment arrays present, ``imported`` = metrics
    only), JSON ``extra``.
``assignments``
    Checksummed array blobs, keyed ``(run_id, kind)``.  Kinds:
    ``edge_assignment`` (the flat int64 per-edge partition array),
    ``replica_indptr`` / ``replica_parts`` (the vertex→replica-set CSR
    the bulk vertex-lookup kernels gather from).  Each blob records its
    dtype, element count, and SHA-256; reads verify the checksum before
    trusting the bytes.
``replicas``
    The same replica relation row-wise — ``(run_id, vertex,
    partition)`` — indexed for the two keyset-paginated listings:
    boundary vertices (replica degree ≥ 2) by vertex id, and members of
    one partition by vertex id.
``metrics``
    ``(run_id, name, value)`` quality numbers (replication factor,
    balances, vertex cuts, plus whatever an importer finds).

The mmap read path
------------------
:meth:`RunStore.mmap_array` materialises a blob once into a sidecar
``<db>.arrays/<run_id>.<kind>.npy`` file (atomic ``os.replace`` write,
checksum verified from the database blob) and returns it via
``np.load(..., mmap_mode="r")`` — the hot lookup path never holds
assignment arrays on the SQLite page cache and never copies them per
request.  See :mod:`repro.serving.lookup` for the cache and kernels on
top.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import sqlite3
import threading
from datetime import datetime, timezone

import numpy as np

from repro.metrics.quality import (
    edge_balance,
    replication_factor,
    vertex_balance,
    vertex_cut_count,
)

__all__ = ["RunStore", "vertex_replica_csr", "import_results",
           "StoreError", "ChecksumError"]


class StoreError(RuntimeError):
    """A run store invariant failed (unknown run, missing blob, ...)."""


class ChecksumError(StoreError):
    """A stored array blob does not match its recorded SHA-256."""


#: array kinds persisted per run in the ``assignments`` table
ASSIGNMENT_KINDS = ("edge_assignment", "replica_indptr", "replica_parts")

#: explicit, append-only schema history — never edit a shipped entry
MIGRATIONS: tuple[tuple[int, str], ...] = (
    (1, """
CREATE TABLE runs (
    run_id          INTEGER PRIMARY KEY AUTOINCREMENT,
    label           TEXT,
    method          TEXT NOT NULL,
    num_partitions  INTEGER NOT NULL,
    num_vertices    INTEGER NOT NULL,
    num_edges       INTEGER NOT NULL,
    seed            INTEGER,
    elapsed_seconds REAL,
    iterations      INTEGER NOT NULL DEFAULT 0,
    status          TEXT NOT NULL DEFAULT 'complete'
                    CHECK (status IN ('complete', 'imported')),
    source          TEXT NOT NULL DEFAULT 'partition',
    created_utc     TEXT NOT NULL,
    extra           TEXT NOT NULL DEFAULT '{}'
);

CREATE TABLE assignments (
    run_id    INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    kind      TEXT NOT NULL,
    dtype     TEXT NOT NULL,
    length    INTEGER NOT NULL,
    sha256    TEXT NOT NULL,
    data      BLOB NOT NULL,
    PRIMARY KEY (run_id, kind)
);

CREATE TABLE replicas (
    run_id    INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    vertex    INTEGER NOT NULL,
    partition INTEGER NOT NULL,
    PRIMARY KEY (run_id, vertex, partition)
) WITHOUT ROWID;
CREATE INDEX replicas_by_partition
    ON replicas (run_id, partition, vertex);

CREATE TABLE metrics (
    run_id    INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    name      TEXT NOT NULL,
    value     REAL NOT NULL,
    PRIMARY KEY (run_id, name)
) WITHOUT ROWID;
"""),
)

SCHEMA_VERSION = MIGRATIONS[-1][0]


def _utc_now() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def vertex_replica_csr(edges: np.ndarray, assignment: np.ndarray,
                       num_vertices: int, num_partitions: int
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Vertex→replica-set CSR ``(indptr, parts)`` of an edge partition.

    ``parts[indptr[v]:indptr[v+1]]`` is the ascending list of
    partitions holding a replica of vertex ``v`` (empty for isolated
    vertices).  This is the flat-array form of Equation 1's covered
    sets — the structure the bulk vertex-lookup kernels gather from.
    """
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    if len(assignment) == 0:
        return indptr, np.empty(0, dtype=np.int64)
    verts = np.concatenate([edges[:, 0], edges[:, 1]])
    parts = np.concatenate([assignment, assignment])
    keys = np.unique(verts.astype(np.int64) * num_partitions + parts)
    vertices = keys // num_partitions
    np.cumsum(np.bincount(vertices, minlength=num_vertices),
              out=indptr[1:])
    return indptr, (keys % num_partitions).astype(np.int64)


class RunStore:
    """Durable store of partitioner runs (see the module docstring).

    Thread-safe: each thread gets its own SQLite connection (WAL mode
    makes concurrent readers + one writer safe), so the async API's
    executor threads and a background partitioning job can share one
    instance.
    """

    def __init__(self, path: str):
        if path == ":memory:":
            raise ValueError("RunStore needs a file path (per-thread "
                             "connections cannot share ':memory:')")
        self.path = os.fspath(path)
        self.arrays_dir = self.path + ".arrays"
        self._local = threading.local()
        self._all_conns: list[sqlite3.Connection] = []
        self._conn_lock = threading.Lock()
        self._migrate(self._conn)

    # -- connections ---------------------------------------------------
    @property
    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA foreign_keys=ON")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            self._local.conn = conn
            with self._conn_lock:
                self._all_conns.append(conn)
        return conn

    def close(self) -> None:
        """Close every thread's connection opened so far."""
        with self._conn_lock:
            conns, self._all_conns = self._all_conns, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - best effort
                pass
        self._local = threading.local()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- migrations ----------------------------------------------------
    def _migrate(self, conn: sqlite3.Connection) -> None:
        conn.execute("""
            CREATE TABLE IF NOT EXISTS schema_migrations (
                version     INTEGER PRIMARY KEY,
                applied_utc TEXT NOT NULL
            )""")
        row = conn.execute(
            "SELECT MAX(version) AS v FROM schema_migrations").fetchone()
        current = row["v"] or 0
        if current > SCHEMA_VERSION:
            raise StoreError(
                f"store {self.path!r} has schema version {current}, "
                f"newer than this build's {SCHEMA_VERSION} — refusing "
                "to touch it")
        with conn:  # one transaction over all pending migrations
            for version, sql in MIGRATIONS:
                if version <= current:
                    continue
                conn.executescript(sql)
                conn.execute(
                    "INSERT INTO schema_migrations (version, applied_utc) "
                    "VALUES (?, ?)", (version, _utc_now()))

    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT MAX(version) AS v FROM schema_migrations").fetchone()
        return int(row["v"] or 0)

    # -- writing -------------------------------------------------------
    def add_run(self, partition, *, seed: int | None = None,
                label: str | None = None,
                source: str = "partition") -> int:
        """Persist an :class:`~repro.partitioners.base.EdgePartition`.

        Writes the run row, its quality metrics, the checksummed array
        blobs (edge assignment + vertex-replica CSR), and the row-wise
        replica relation, in one transaction.  Returns the new run id.
        """
        graph = partition.graph
        assignment = np.ascontiguousarray(partition.assignment,
                                          dtype=np.int64)
        indptr, parts = vertex_replica_csr(
            graph.edges, assignment, graph.num_vertices,
            partition.num_partitions)
        metrics = {
            "replication_factor": replication_factor(
                graph, assignment, partition.num_partitions),
            "edge_balance": edge_balance(assignment,
                                         partition.num_partitions),
            "vertex_balance": vertex_balance(graph, assignment,
                                             partition.num_partitions),
            "vertex_cuts": float(vertex_cut_count(
                graph, assignment, partition.num_partitions)),
        }
        conn = self._conn
        with conn:
            cur = conn.execute(
                "INSERT INTO runs (label, method, num_partitions, "
                "num_vertices, num_edges, seed, elapsed_seconds, "
                "iterations, status, source, created_utc, extra) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, 'complete', ?, ?, ?)",
                (label, partition.method, partition.num_partitions,
                 graph.num_vertices, graph.num_edges, seed,
                 partition.elapsed_seconds, partition.iterations,
                 source, _utc_now(), json.dumps(_jsonable_extra(
                     partition.extra))))
            run_id = int(cur.lastrowid)
            for kind, arr in (("edge_assignment", assignment),
                              ("replica_indptr", indptr),
                              ("replica_parts", parts)):
                self._insert_blob(conn, run_id, kind, arr)
            vertex_ids = np.repeat(np.arange(graph.num_vertices,
                                             dtype=np.int64),
                                   np.diff(indptr))
            conn.executemany(
                "INSERT INTO replicas (run_id, vertex, partition) "
                "VALUES (?, ?, ?)",
                zip((run_id,) * len(parts), vertex_ids.tolist(),
                    parts.tolist()))
            conn.executemany(
                "INSERT INTO metrics (run_id, name, value) "
                "VALUES (?, ?, ?)",
                [(run_id, k, float(v)) for k, v in metrics.items()])
        return run_id

    def add_imported_run(self, *, method: str, metrics: dict,
                         num_partitions: int = 0, num_vertices: int = 0,
                         num_edges: int = 0,
                         elapsed_seconds: float | None = None,
                         label: str | None = None, source: str = "import",
                         extra: dict | None = None) -> int:
        """Metrics-only run row (no arrays) — the results-JSON importer."""
        conn = self._conn
        with conn:
            cur = conn.execute(
                "INSERT INTO runs (label, method, num_partitions, "
                "num_vertices, num_edges, elapsed_seconds, status, "
                "source, created_utc, extra) "
                "VALUES (?, ?, ?, ?, ?, ?, 'imported', ?, ?, ?)",
                (label, method, num_partitions, num_vertices, num_edges,
                 elapsed_seconds, source, _utc_now(),
                 json.dumps(extra or {})))
            run_id = int(cur.lastrowid)
            conn.executemany(
                "INSERT INTO metrics (run_id, name, value) "
                "VALUES (?, ?, ?)",
                [(run_id, k, float(v)) for k, v in metrics.items()])
        return run_id

    def _insert_blob(self, conn, run_id: int, kind: str,
                     arr: np.ndarray) -> None:
        data = np.ascontiguousarray(arr).tobytes()
        conn.execute(
            "INSERT INTO assignments (run_id, kind, dtype, length, "
            "sha256, data) VALUES (?, ?, ?, ?, ?, ?)",
            (run_id, kind, arr.dtype.str, len(arr), _sha256(data),
             sqlite3.Binary(data)))

    # -- reading -------------------------------------------------------
    def run_count(self) -> int:
        return int(self._conn.execute(
            "SELECT COUNT(*) AS n FROM runs").fetchone()["n"])

    def get_run(self, run_id: int) -> dict:
        row = self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)).fetchone()
        if row is None:
            raise StoreError(f"unknown run {run_id}")
        run = dict(row)
        run["extra"] = json.loads(run["extra"])
        return run

    def list_runs(self, limit: int = 50, offset: int = 0) -> list[dict]:
        rows = self._conn.execute(
            "SELECT run_id, label, method, num_partitions, num_vertices, "
            "num_edges, seed, elapsed_seconds, iterations, status, "
            "source, created_utc FROM runs "
            "ORDER BY run_id LIMIT ? OFFSET ?", (limit, offset)).fetchall()
        return [dict(r) for r in rows]

    def metrics(self, run_id: int) -> dict:
        self.get_run(run_id)  # 404 before an empty dict
        rows = self._conn.execute(
            "SELECT name, value FROM metrics WHERE run_id = ? "
            "ORDER BY name", (run_id,)).fetchall()
        return {r["name"]: r["value"] for r in rows}

    def load_array(self, run_id: int, kind: str) -> np.ndarray:
        """Blob → in-memory array, SHA-256 verified."""
        row = self._conn.execute(
            "SELECT dtype, length, sha256, data FROM assignments "
            "WHERE run_id = ? AND kind = ?", (run_id, kind)).fetchone()
        if row is None:
            status = self.get_run(run_id)["status"]
            raise StoreError(
                f"run {run_id} has no {kind!r} array"
                + (" (imported metrics-only run)"
                   if status == "imported" else ""))
        data = bytes(row["data"])
        if _sha256(data) != row["sha256"]:
            raise ChecksumError(
                f"run {run_id} {kind!r} blob fails its checksum — "
                "store corrupted")
        arr = np.frombuffer(data, dtype=np.dtype(row["dtype"]))
        if len(arr) != row["length"]:
            raise ChecksumError(
                f"run {run_id} {kind!r} blob length {len(arr)} != "
                f"recorded {row['length']}")
        return arr

    def mmap_array(self, run_id: int, kind: str) -> np.ndarray:
        """Blob → read-only mmap via a one-time ``.npy`` sidecar.

        The sidecar is written atomically from the checksum-verified
        blob on first access; later opens pay only the ``np.load``
        header read, and the OS page cache is shared across every
        reader of the run.
        """
        path = os.path.join(self.arrays_dir, f"{run_id}.{kind}.npy")
        if not os.path.exists(path):
            arr = self.load_array(run_id, kind)
            os.makedirs(self.arrays_dir, exist_ok=True)
            tmp = path + f".tmp.{os.getpid()}.{threading.get_ident()}"
            try:
                with open(tmp, "wb") as fh:  # np.save won't append .npy
                    np.save(fh, arr)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):  # pragma: no cover - race loser
                    os.unlink(tmp)
        return np.load(path, mmap_mode="r")

    # -- keyset pagination --------------------------------------------
    def boundary_page(self, run_id: int, *, cursor: int | None = None,
                      limit: int = 50) -> tuple[list[dict], int | None]:
        """One page of boundary vertices (replica degree ≥ 2).

        Keyset pagination on vertex id: rows with ``vertex > cursor``,
        ascending, ``limit`` per page.  Returns ``(items,
        next_cursor)`` where ``next_cursor`` is the last vertex id (or
        None on the final page).  The key is the immutable vertex id of
        one frozen run, so pages are stable no matter what other runs
        are inserted concurrently.
        """
        self.get_run(run_id)
        after = -1 if cursor is None else int(cursor)
        rows = self._conn.execute(
            "SELECT vertex, COUNT(*) AS replicas FROM replicas "
            "WHERE run_id = ? AND vertex > ? "
            "GROUP BY vertex HAVING COUNT(*) >= 2 "
            "ORDER BY vertex LIMIT ?", (run_id, after, limit + 1)
        ).fetchall()
        has_more = len(rows) > limit
        rows = rows[:limit]
        items = [{"vertex": r["vertex"], "replicas": r["replicas"],
                  "partitions": self._partitions_of(run_id, r["vertex"])}
                 for r in rows]
        next_cursor = items[-1]["vertex"] if has_more and items else None
        return items, next_cursor

    def replica_page(self, run_id: int, partition: int, *,
                     cursor: int | None = None, limit: int = 50
                     ) -> tuple[list[int], int | None]:
        """One page of the vertices replicated in ``partition``.

        Same keyset semantics as :meth:`boundary_page`; served by the
        ``(run_id, partition, vertex)`` index.
        """
        run = self.get_run(run_id)
        if not 0 <= partition < max(run["num_partitions"], 1):
            raise StoreError(
                f"run {run_id} has no partition {partition} "
                f"(|P| = {run['num_partitions']})")
        after = -1 if cursor is None else int(cursor)
        rows = self._conn.execute(
            "SELECT vertex FROM replicas "
            "WHERE run_id = ? AND partition = ? AND vertex > ? "
            "ORDER BY vertex LIMIT ?",
            (run_id, partition, after, limit + 1)).fetchall()
        has_more = len(rows) > limit
        vertices = [r["vertex"] for r in rows[:limit]]
        next_cursor = vertices[-1] if has_more and vertices else None
        return vertices, next_cursor

    def _partitions_of(self, run_id: int, vertex: int) -> list[int]:
        rows = self._conn.execute(
            "SELECT partition FROM replicas "
            "WHERE run_id = ? AND vertex = ? ORDER BY partition",
            (run_id, vertex)).fetchall()
        return [r["partition"] for r in rows]


def _jsonable_extra(extra: dict) -> dict:
    """Reuse the partition-file serialiser for the ``extra`` column."""
    from repro.partitioners.io import _jsonable
    return _jsonable(extra or {})


# ----------------------------------------------------------------------
# benchmarks/results importer
# ----------------------------------------------------------------------
#: row keys that are identity, not metrics
_IMPORT_IDENTITY_KEYS = ("dataset", "method", "partitions", "kernel",
                         "backend", "lambda", "seed")


def import_results(store: RunStore, patterns) -> list[int]:
    """Backfill a store from ``benchmarks/results/*.json`` rows.

    Each JSON file holds a list (or single dict) of experiment rows;
    every row with a ``method`` becomes a metrics-only run (status
    ``imported``, ``source`` naming the file) whose numeric fields land
    in the ``metrics`` table and whose identity fields
    (dataset/partitions/...) land in ``extra``.  Returns the new run
    ids.
    """
    if isinstance(patterns, (str, os.PathLike)):
        patterns = [patterns]
    paths: list[str] = []
    for pattern in patterns:
        matched = sorted(glob.glob(os.fspath(pattern)))
        if not matched and os.path.exists(pattern):
            matched = [os.fspath(pattern)]
        paths.extend(matched)
    run_ids = []
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            rows = json.load(fh)
        if isinstance(rows, dict):
            rows = [rows]
        for row in rows:
            if not isinstance(row, dict) or "method" not in row:
                continue
            metrics = {k: v for k, v in row.items()
                       if k not in _IMPORT_IDENTITY_KEYS
                       and isinstance(v, (int, float))
                       and not isinstance(v, bool)}
            extra = {k: row[k] for k in _IMPORT_IDENTITY_KEYS if k in row}
            run_ids.append(store.add_imported_run(
                method=str(row["method"]),
                metrics=metrics,
                num_partitions=int(row.get("partitions", 0) or 0),
                elapsed_seconds=row.get("elapsed_seconds"),
                label=row.get("dataset"),
                source=f"import:{os.path.basename(path)}",
                extra=extra))
    return run_ids
