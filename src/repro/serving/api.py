"""Async HTTP query layer over the run store.

A small, dependency-free HTTP/1.1 server on stdlib ``asyncio`` (no
``http.server``): the event loop owns the sockets and request framing,
every request body is dispatched to a thread pool (SQLite reads and
mmap gathers release the GIL or finish in microseconds), and responses
are JSON.  Keep-alive is supported, so a load generator can hammer one
connection with thousands of lookups.

The routing core is :meth:`ServingAPI.handle` — a pure
``(method, path, query, body) -> (status, payload)`` function with no
socket types in sight, so the route tests exercise it directly and the
socket layer stays a thin framing shell.  Long partitioning runs are
submitted as background *jobs* (one thread each) and polled via
``/api/jobs/<id>``; a job started with ``checkpoint_every`` rides the
PR-7 checkpoint plane (:mod:`repro.cluster.checkpoint`), so its status
reports the snapshot ledger while the run is in flight.

Endpoint reference: ``docs/API.md`` (kept in lockstep with this
module; the docs CI job link-checks it).  Pagination follows the
keyset-cursor contract of :meth:`RunStore.boundary_page`: pass the
``next_cursor`` from one page as ``cursor`` of the next; cursors are
stable under concurrent run inserts because the key is the immutable
vertex id of one frozen run.

Observability: the API owns a live
:class:`~repro.observability.metrics.MetricsRegistry` (installed
process-wide via :func:`enable_metrics`, so cluster counters from
background jobs land in the same registry) and serves it as Prometheus
text on ``GET /metrics``.  Jobs whose partitioner accepts ``tracer=``
record a Chrome trace, retrievable from ``GET /api/runs/{id}/trace``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.observability.metrics import enable_metrics
from repro.serving.lookup import LookupRangeError, LookupService
from repro.serving.store import RunStore, StoreError

__all__ = ["ServingAPI", "ApiError", "BackgroundServer", "serve"]

_log = logging.getLogger("repro.serving")

#: hard page-size ceiling (Snippet-3 style: default 50, max 200)
MAX_PAGE_LIMIT = 200
DEFAULT_PAGE_LIMIT = 50
#: largest bulk-lookup batch a single POST may carry
MAX_BULK_IDS = 200_000
#: largest request body accepted (covers MAX_BULK_IDS int ids as JSON)
MAX_BODY_BYTES = 4 * 1024 * 1024


class ApiError(Exception):
    """An HTTP error response: ``(status, message)``."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class _Job:
    """One background partitioning run."""

    _ids = itertools.count(1)

    def __init__(self, request: dict):
        self.job_id = next(self._ids)
        self.request = request
        self.state = "pending"      # pending -> running -> done | failed
        self.run_id: int | None = None
        self.error: str | None = None
        self.checkpoint_dir: str | None = None
        self.lock = threading.Lock()

    def snapshot(self) -> dict:
        with self.lock:
            doc = {"job_id": self.job_id, "state": self.state,
                   "run_id": self.run_id, "error": self.error,
                   "request": self.request}
        if self.checkpoint_dir is not None:
            from repro.cluster.checkpoint import CheckpointStore
            doc["checkpoints"] = CheckpointStore(self.checkpoint_dir).steps()
        return doc


class ServingAPI:
    """Routes over one :class:`RunStore` + :class:`LookupService`."""

    def __init__(self, store: RunStore, *,
                 lookup: LookupService | None = None,
                 hot_vertices: int = 4096, registry=None):
        self.store = store
        self.lookup = lookup or LookupService(store,
                                              hot_vertices=hot_vertices)
        # The serving plane is the one place metrics default to *on*:
        # installing the registry process-wide means cluster counters
        # from background partitioning jobs land in the same /metrics
        # output.  Pass an explicit registry (e.g. a NullMetricsRegistry)
        # to opt out.
        self.registry = registry if registry is not None else \
            enable_metrics()
        self._traces: dict[int, dict] = {}
        self._jobs: dict[int, _Job] = {}
        self._jobs_lock = threading.Lock()

    # -- dispatch ------------------------------------------------------
    def handle(self, method: str, path: str, query: dict | None = None,
               body: bytes | None = None) -> tuple[int, dict | str]:
        """Route one request; returns ``(status, payload)``.

        ``payload`` is a JSON-serialisable dict everywhere except
        ``GET /metrics``, which returns the Prometheus exposition as a
        plain string.  ``query`` accepts plain scalars or
        ``parse_qs``-style value lists (the socket layer passes the
        latter; repeated parameters resolve to their last value).
        Never raises for client-visible conditions — bad routes,
        parameters, and ids come back as 4xx payloads with an
        ``error`` key.
        """
        query = {k: v if isinstance(v, list) else [str(v)]
                 for k, v in (query or {}).items()}
        start = time.perf_counter()
        try:
            status, payload = self._route(method.upper(), path, query,
                                          body)
        except ApiError as exc:
            status, payload = exc.status, {"error": exc.message}
        except (StoreError, LookupRangeError) as exc:
            status = 404 if isinstance(exc, StoreError) else 400
            payload = {"error": str(exc)}
        if self.registry.enabled:
            route = _route_label(path)
            self.registry.counter_inc("repro_http_requests_total",
                                      route=route, status=str(status))
            self.registry.observe("repro_http_request_seconds",
                                  time.perf_counter() - start,
                                  route=route)
        return status, payload

    def request_count(self) -> int:
        """Total requests handled (all routes, all statuses)."""
        return int(self.registry.counter_total(
            "repro_http_requests_total"))

    def _route(self, method, path, query, body):
        seg = [s for s in path.split("/") if s]
        # /metrics sits outside the /api JSON namespace (Prometheus
        # convention), but /api/metrics works too for uniform clients.
        if seg in (["metrics"], ["api", "metrics"]):
            self._require(method, "GET")
            return 200, self.render_metrics()
        if not seg or seg[0] != "api":
            raise ApiError(404, f"unknown path {path!r}")
        seg = seg[1:]
        if seg == ["health"]:
            self._require(method, "GET")
            return 200, {"status": "ok"}
        if seg == ["runs"]:
            if method == "POST":
                return self._submit_job(body)
            self._require(method, "GET")
            return self._list_runs(query)
        if seg == ["jobs"]:
            self._require(method, "GET")
            with self._jobs_lock:
                jobs = sorted(self._jobs.values(),
                              key=lambda j: j.job_id)
            return 200, {"items": [j.snapshot() for j in jobs]}
        if len(seg) == 2 and seg[0] == "jobs":
            self._require(method, "GET")
            return self._job_status(_int(seg[1], "job id"))
        if seg and seg[0] == "runs" and len(seg) >= 2:
            run_id = _int(seg[1], "run id")
            rest = seg[2:]
            if not rest:
                self._require(method, "GET")
                return self._run_detail(run_id)
            if rest == ["metrics"]:
                self._require(method, "GET")
                return 200, {"run_id": run_id,
                             "metrics": self.store.metrics(run_id)}
            if rest == ["trace"]:
                self._require(method, "GET")
                return self._run_trace(run_id)
            if rest == ["lookup"]:
                self._require(method, "POST")
                return self._bulk_lookup(run_id, body)
            if rest == ["boundary"]:
                self._require(method, "GET")
                return self._boundary(run_id, query)
            if rest == ["replicas"]:
                self._require(method, "GET")
                return self._replicas(run_id, query)
            if len(rest) == 2 and rest[0] == "vertex":
                self._require(method, "GET")
                return self._vertex(run_id, _int(rest[1], "vertex id"))
            if len(rest) == 2 and rest[0] == "edge":
                self._require(method, "GET")
                return self._edge(run_id, _int(rest[1], "edge id"))
        raise ApiError(404, f"unknown path {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise ApiError(405, f"method {method} not allowed "
                                f"(expected {expected})")

    # -- runs ----------------------------------------------------------
    def _list_runs(self, query):
        limit = _page_limit(query)
        offset = max(0, _query_int(query, "offset", 0))
        items = self.store.list_runs(limit=limit, offset=offset)
        total = self.store.run_count()
        return 200, {"items": items,
                     "page": {"total": total, "limit": limit,
                              "offset": offset,
                              "has_more": offset + len(items) < total}}

    def _run_detail(self, run_id):
        run = self.store.get_run(run_id)
        run["metrics"] = self.store.metrics(run_id)
        run["cache"] = {"hot_vertices": self.lookup.cache_info(),
                        "run_arrays": self.lookup.run_cache_info()}
        return 200, run

    def _run_trace(self, run_id):
        self.store.get_run(run_id)  # 404 for unknown runs
        trace = self._traces.get(run_id)
        if trace is None:
            raise ApiError(404, f"run {run_id} has no recorded trace "
                                "(only runs produced by jobs whose "
                                "method takes tracer= record one)")
        return 200, trace

    # -- observability -------------------------------------------------
    def render_metrics(self) -> str:
        """Prometheus text for ``GET /metrics``.

        Point-in-time gauges (cache hit/miss counters, stored-run
        count) are refreshed at render time; everything else — request
        counters, latency histograms, cluster totals from jobs — is
        accumulated in the registry as it happens.
        """
        registry = self.registry
        if registry.enabled:
            for prefix, info in (
                    ("repro_lookup_hot_cache", self.lookup.cache_info()),
                    ("repro_lookup_run_cache",
                     self.lookup.run_cache_info())):
                registry.gauge_set(f"{prefix}_hits", info["hits"])
                registry.gauge_set(f"{prefix}_misses", info["misses"])
                registry.gauge_set(f"{prefix}_entries", info["entries"])
            registry.gauge_set("repro_store_runs",
                               self.store.run_count())
        return registry.render_prometheus()

    def _vertex(self, run_id, vertex):
        parts = self.lookup.vertex_lookup(run_id, vertex)
        return 200, {"run_id": run_id, "vertex": vertex,
                     "partitions": list(parts),
                     "replicas": len(parts),
                     "boundary": len(parts) >= 2}

    def _edge(self, run_id, edge_id):
        return 200, {"run_id": run_id, "edge": edge_id,
                     "partition": self.lookup.edge_lookup(run_id,
                                                          edge_id)}

    # -- bulk lookup ---------------------------------------------------
    def _bulk_lookup(self, run_id, body):
        doc = _json_body(body)
        kernel = doc.get("kernel", "vectorized")
        if kernel not in ("vectorized", "python"):
            raise ApiError(400, f"unknown kernel {kernel!r}")
        has_v, has_e = "vertices" in doc, "edges" in doc
        if has_v == has_e:
            raise ApiError(400,
                           "body must carry exactly one of 'vertices' "
                           "or 'edges'")
        ids = doc["vertices" if has_v else "edges"]
        if not isinstance(ids, list):
            raise ApiError(400, "id list must be a JSON array")
        if len(ids) > MAX_BULK_IDS:
            raise ApiError(413, f"bulk lookup capped at {MAX_BULK_IDS} "
                                f"ids per request (got {len(ids)})")
        try:
            arr = np.asarray(ids)
        except (ValueError, OverflowError, TypeError):
            raise ApiError(400, "id list must contain only integers")
        if arr.shape != (len(ids),):
            raise ApiError(400, "id list must be flat")
        if len(ids) and arr.dtype.kind not in "iu":
            # np.asarray(..., dtype=int64) would truncate floats
            # silently; reject anything that isn't integral
            raise ApiError(400, "id list must contain only integers")
        arr = arr.astype(np.int64) if len(ids) else np.empty(
            0, dtype=np.int64)
        if has_v:
            counts, flat = self.lookup.bulk_vertex_lookup(
                run_id, arr, kernel=kernel)
            return 200, {"run_id": run_id, "kernel": kernel,
                         "vertices": len(ids),
                         "counts": counts.tolist(),
                         "partitions": flat.tolist()}
        parts = self.lookup.bulk_edge_lookup(run_id, arr, kernel=kernel)
        return 200, {"run_id": run_id, "kernel": kernel,
                     "edges": len(ids), "partitions": parts.tolist()}

    # -- paginated listings -------------------------------------------
    def _boundary(self, run_id, query):
        limit = _page_limit(query)
        cursor = _query_cursor(query)
        items, next_cursor = self.store.boundary_page(
            run_id, cursor=cursor, limit=limit)
        return 200, {"items": items,
                     "page": _cursor_page(limit, next_cursor)}

    def _replicas(self, run_id, query):
        if "partition" not in query:
            raise ApiError(400, "missing required parameter 'partition'")
        partition = _query_int(query, "partition", None)
        limit = _page_limit(query)
        cursor = _query_cursor(query)
        try:
            vertices, next_cursor = self.store.replica_page(
                run_id, partition, cursor=cursor, limit=limit)
        except StoreError as exc:
            # unknown run -> 404, out-of-range partition -> 400
            if "has no partition" in str(exc):
                raise ApiError(400, str(exc))
            raise
        return 200, {"run_id": run_id, "partition": partition,
                     "items": vertices,
                     "page": _cursor_page(limit, next_cursor)}

    # -- jobs ----------------------------------------------------------
    def _submit_job(self, body):
        from repro.graph.datasets import DATASETS
        from repro.partitioners import PARTITIONER_REGISTRY

        doc = _json_body(body)
        method = doc.get("method")
        if method not in PARTITIONER_REGISTRY:
            raise ApiError(400, f"unknown method {method!r}; available: "
                                f"{sorted(PARTITIONER_REGISTRY)}")
        dataset = doc.get("dataset")
        if dataset not in DATASETS:
            raise ApiError(400, f"unknown dataset {dataset!r}; "
                                f"available: {sorted(DATASETS)}")
        partitions = doc.get("partitions", 16)
        if not isinstance(partitions, int) or partitions < 1:
            raise ApiError(400, "'partitions' must be a positive integer")
        seed = doc.get("seed", 0)
        if not isinstance(seed, int):
            raise ApiError(400, "'seed' must be an integer")
        checkpoint_every = doc.get("checkpoint_every")
        if checkpoint_every is not None and (
                not isinstance(checkpoint_every, int)
                or checkpoint_every < 1):
            raise ApiError(400, "'checkpoint_every' must be a positive "
                                "integer")
        request = {"method": method, "dataset": dataset,
                   "partitions": partitions, "seed": seed}
        if doc.get("label") is not None:
            request["label"] = str(doc["label"])
        if checkpoint_every is not None:
            request["checkpoint_every"] = checkpoint_every
        job = _Job(request)
        with self._jobs_lock:
            self._jobs[job.job_id] = job
        thread = threading.Thread(target=self._run_job, args=(job,),
                                  name=f"serving-job-{job.job_id}",
                                  daemon=True)
        thread.start()
        return 202, {"job_id": job.job_id, "state": job.state,
                     "poll": f"/api/jobs/{job.job_id}"}

    def _job_status(self, job_id):
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ApiError(404, f"unknown job {job_id}")
        return 200, job.snapshot()

    def _run_job(self, job: _Job) -> None:
        import inspect as _inspect

        from repro.graph.datasets import load_dataset
        from repro.partitioners import PARTITIONER_REGISTRY

        req = job.request
        with job.lock:
            job.state = "running"
        try:
            cls = PARTITIONER_REGISTRY[req["method"]]
            params = _inspect.signature(cls.__init__).parameters
            kwargs = {}
            if req.get("checkpoint_every") is not None:
                if "checkpoint_dir" not in params:
                    raise ValueError(
                        f"method {req['method']!r} does not support "
                        "checkpointing")
                job.checkpoint_dir = (f"{self.store.path}.jobs/"
                                      f"job-{job.job_id}")
                kwargs["checkpoint_dir"] = job.checkpoint_dir
                if "checkpoint_every" in params:
                    kwargs["checkpoint_every"] = req["checkpoint_every"]
            tracer = None
            if "tracer" in params:
                from repro.observability.trace import Tracer
                tracer = Tracer()
                kwargs["tracer"] = tracer
            graph = load_dataset(req["dataset"], seed=req["seed"])
            result = cls(req["partitions"], seed=req["seed"],
                         **kwargs).partition(graph)
            run_id = self.store.add_run(
                result, seed=req["seed"],
                label=req.get("label", req["dataset"]),
                source=f"job:{job.job_id}")
            if tracer is not None and len(tracer):
                self._traces[run_id] = tracer.to_chrome()
            with job.lock:
                job.run_id = run_id
                job.state = "done"
        except Exception as exc:  # surfaced through the status endpoint
            with job.lock:
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"


# ----------------------------------------------------------------------
# request/parameter helpers
# ----------------------------------------------------------------------
#: run sub-resources that map to their own route label
_RUN_SUBROUTES = frozenset(
    {"metrics", "lookup", "boundary", "replicas", "trace"})


def _route_label(path: str) -> str:
    """Collapse a request path to a bounded route-template label.

    Ids are replaced with ``{id}`` placeholders so the
    ``repro_http_requests_total`` label set stays small no matter how
    many runs/vertices a client walks; anything unrecognised (which a
    client can mint freely) collapses to ``"other"``.
    """
    seg = [s for s in path.split("/") if s]
    if seg in (["metrics"], ["api", "metrics"]):
        return "/metrics"
    if not seg or seg[0] != "api":
        return "other"
    seg = seg[1:]
    if seg in ([], ["health"], ["runs"], ["jobs"]):
        return "/api/" + "/".join(seg) if seg else "/api"
    if len(seg) == 2 and seg[0] in ("jobs", "runs"):
        return f"/api/{seg[0]}/{{id}}"
    if len(seg) == 3 and seg[0] == "runs" and seg[2] in _RUN_SUBROUTES:
        return f"/api/runs/{{id}}/{seg[2]}"
    if len(seg) == 4 and seg[0] == "runs" and seg[2] in ("vertex",
                                                         "edge"):
        return f"/api/runs/{{id}}/{seg[2]}/{{id}}"
    return "other"


def _int(text: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ApiError(400, f"invalid {what}: {text!r}")


def _query_int(query: dict, name: str, default):
    values = query.get(name)
    if not values:
        if default is None:
            raise ApiError(400, f"missing required parameter {name!r}")
        return default
    return _int(values[-1], f"parameter {name!r}")


def _page_limit(query: dict) -> int:
    limit = _query_int(query, "limit", DEFAULT_PAGE_LIMIT)
    if limit < 1:
        raise ApiError(400, "parameter 'limit' must be >= 1")
    return min(limit, MAX_PAGE_LIMIT)


def _query_cursor(query: dict) -> int | None:
    values = query.get("cursor")
    if not values:
        return None
    return _int(values[-1], "cursor")


def _cursor_page(limit: int, next_cursor) -> dict:
    return {"limit": limit,
            "next_cursor": None if next_cursor is None
            else str(next_cursor),
            "has_more": next_cursor is not None}


def _json_body(body: bytes | None) -> dict:
    if not body:
        raise ApiError(400, "missing JSON request body")
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiError(400, f"invalid JSON body: {exc}")
    if not isinstance(doc, dict):
        raise ApiError(400, "JSON body must be an object")
    return doc


# ----------------------------------------------------------------------
# asyncio socket layer
# ----------------------------------------------------------------------
class _HttpServer:
    """Minimal HTTP/1.1 framing over ``asyncio.start_server``."""

    def __init__(self, api: ServingAPI, *, pool_workers: int = 8):
        self.api = api
        self.pool = ThreadPoolExecutor(max_workers=pool_workers,
                                       thread_name_prefix="serving")

    async def client(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        self.api.registry.counter_inc("repro_http_connections_total")
        try:
            while True:
                keep_alive = await self._one_request(reader, writer)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                asyncio.LimitOverrunError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown: drop the connection without letting the
            # cancellation escape (asyncio logs escaped client errors).
            writer.close()
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _one_request(self, reader, writer) -> bool:
        request_line = await reader.readline()
        if not request_line.strip():
            return False
        try:
            method, target, version = (
                request_line.decode("latin-1").split())
        except ValueError:
            await self._respond(writer, 400,
                                {"error": "malformed request line"},
                                close=True)
            return False
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            await self._respond(
                writer, 413,
                {"error": f"body larger than {MAX_BODY_BYTES} bytes"},
                close=True)
            return False
        if length:
            body = await reader.readexactly(length)

        parts = urlsplit(target)
        query = parse_qs(parts.query)
        loop = asyncio.get_running_loop()
        try:
            status, payload = await loop.run_in_executor(
                self.pool, self.api.handle, method, parts.path, query,
                body)
        except Exception as exc:  # a bug, not a client error
            status, payload = 500, {"error":
                                    f"{type(exc).__name__}: {exc}"}
        keep_alive = (version != "HTTP/1.0"
                      and headers.get("connection", "").lower() != "close"
                      and status < 500)
        await self._respond(writer, status, payload,
                            close=not keep_alive)
        return keep_alive

    @staticmethod
    async def _respond(writer, status: int, payload,
                       close: bool) -> None:
        if isinstance(payload, str):  # /metrics Prometheus exposition
            body = payload.encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            ctype = "application/json"
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  413: "Payload Too Large",
                  500: "Internal Server Error"}.get(status, "Status")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'close' if close else 'keep-alive'}\r\n"
                "\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def _serve_async(api: ServingAPI, host: str, port: int,
                       ready: "threading.Event | None" = None,
                       bound: list | None = None) -> None:
    http = _HttpServer(api)
    server = await asyncio.start_server(http.client, host, port)
    if bound is not None:
        bound.append(server.sockets[0].getsockname()[1])
    if ready is not None:
        ready.set()
    try:
        async with server:
            await server.serve_forever()
    finally:
        http.pool.shutdown(wait=False)


def _log_shutdown(api: ServingAPI) -> None:
    """Drained-connection summary, emitted once per server lifetime.

    Load tests assert on these numbers (``repro --log-level INFO
    serve``), so the line always carries both totals even when the
    registry was disabled (they read 0 then).
    """
    _log.info("serving shut down: %d requests on %d connections",
              api.request_count(),
              int(api.registry.counter_total(
                  "repro_http_connections_total")))


def serve(api: ServingAPI, host: str = "127.0.0.1",
          port: int = 8080) -> None:
    """Run the server in the calling thread until interrupted."""
    try:
        asyncio.run(_serve_async(api, host, port))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        _log_shutdown(api)


class BackgroundServer:
    """The server on a daemon thread — for tests, benches, and the CLI.

    ::

        with BackgroundServer(api) as srv:
            http.client.HTTPConnection("127.0.0.1", srv.port)
    """

    def __init__(self, api: ServingAPI, host: str = "127.0.0.1",
                 port: int = 0):
        self.host = host
        self._api = api
        self._ready = threading.Event()
        self._bound: list = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._run, args=(api, host, port),
            name="serving-http", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("serving HTTP thread failed to start")
        self.port = self._bound[0]

    def _run(self, api, host, port):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(
                _serve_async(api, host, port, ready=self._ready,
                             bound=self._bound))
        except asyncio.CancelledError:  # stop() cancels serve_forever
            pass
        finally:
            # Let in-flight client tasks observe their cancellation so
            # the loop closes without "task was destroyed" warnings.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            self._loop.close()

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not self._thread.is_alive():
            return

        def _cancel_all():
            for task in asyncio.all_tasks(loop):
                task.cancel()

        loop.call_soon_threadsafe(_cancel_all)
        self._thread.join(timeout=10)
        _log_shutdown(self._api)

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
