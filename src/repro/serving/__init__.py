"""Partition-serving plane: run store + async HTTP query layer.

The partitioners compute assignments; this package makes them
consumable at scale (ROADMAP item 1, the "millions of users" story):

* :mod:`repro.serving.store` — WAL-mode SQLite :class:`RunStore` of
  partitioner runs (metadata, metrics, checksummed flat-array blobs,
  the paginable replica relation) plus the ``benchmarks/results``
  importer;
* :mod:`repro.serving.lookup` — :class:`LookupService`: mmap'd run
  arrays, a hot-vertex LRU, and the dual-kernel
  (``vectorized``/``python``, pinned bit-identical) bulk lookups;
* :mod:`repro.serving.api` — the asyncio HTTP layer
  (:class:`ServingAPI`), ``repro serve`` on the CLI, reference in
  ``docs/API.md``.
"""

from repro.serving.api import ApiError, BackgroundServer, ServingAPI, serve
from repro.serving.lookup import LookupRangeError, LookupService
from repro.serving.store import (ChecksumError, RunStore, StoreError,
                                 import_results, vertex_replica_csr)

__all__ = [
    "ApiError", "BackgroundServer", "ChecksumError", "LookupRangeError",
    "LookupService", "RunStore", "ServingAPI", "StoreError",
    "import_results", "serve", "vertex_replica_csr",
]
