"""Read-path speed rungs: mmap'd arrays, hot-vertex LRU, bulk kernels.

:class:`LookupService` is the layer between the HTTP API and the
:class:`~repro.serving.store.RunStore` that makes single lookups cheap
and bulk lookups vectorized:

* **mmap'd run arrays** — per run, the flat edge-assignment array and
  the vertex→replica-set CSR (``indptr`` / ``parts``) are opened once
  through :meth:`RunStore.mmap_array` and kept in a small per-run LRU;
  the OS page cache holds the hot pages, nothing is copied per
  request.
* **hot-vertex LRU** — single-vertex lookups hit an in-process LRU of
  ``(run_id, vertex) → partitions`` tuples before touching the arrays
  at all (the head of a skewed-degree graph is a tiny fraction of V
  but most of the traffic); :meth:`cache_info` exposes hit/miss
  counters so the bench can report honest hit rates.
* **dual-kernel bulk lookups** — ``bulk_vertex_lookup`` /
  ``bulk_edge_lookup`` follow the repo-wide contract: a
  ``kernel="vectorized"`` flat-array implementation (one
  :func:`~repro.graph.csr.adjacency_slots` gather over the replica
  CSR, one fancy-index over the assignment array) and a
  ``kernel="python"`` per-item reference loop, pinned bit-identical by
  ``tests/test_run_store.py`` — same counts, same flat partition
  stream, for every vertex batch.

Out-of-range ids raise :class:`LookupRangeError` (the API maps it to
HTTP 400) *before* any partial work, so both kernels fail identically.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.graph.csr import adjacency_slots
from repro.kernels import validate_kernel
from repro.serving.store import RunStore

__all__ = ["LookupService", "LookupRangeError"]


class LookupRangeError(ValueError):
    """A vertex/edge id is outside the run's graph."""


class _LRU:
    """Tiny thread-safe LRU (OrderedDict move-to-end discipline)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            try:
                self._data.move_to_end(key)
            except KeyError:
                self.misses += 1
                return None
            self.hits += 1
            return self._data[key]

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


class _RunArrays:
    """The mmap'd flat arrays of one run."""

    __slots__ = ("assignment", "indptr", "parts")

    def __init__(self, store: RunStore, run_id: int):
        self.assignment = store.mmap_array(run_id, "edge_assignment")
        self.indptr = store.mmap_array(run_id, "replica_indptr")
        self.parts = store.mmap_array(run_id, "replica_parts")

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.assignment)


class LookupService:
    """Cached, kernelised lookups over a :class:`RunStore`."""

    def __init__(self, store: RunStore, *, hot_vertices: int = 4096,
                 max_runs: int = 8):
        self.store = store
        self._runs = _LRU(max_runs)
        self._hot = _LRU(hot_vertices)

    # -- run arrays ----------------------------------------------------
    def run_arrays(self, run_id: int) -> _RunArrays:
        arrays = self._runs.get(run_id)
        if arrays is None:
            arrays = _RunArrays(self.store, run_id)
            self._runs.put(run_id, arrays)
        return arrays

    def cache_info(self) -> dict:
        """Hit/miss counters of the hot-vertex LRU (for the bench)."""
        return {"hits": self._hot.hits, "misses": self._hot.misses,
                "entries": len(self._hot),
                "capacity": self._hot.capacity}

    def run_cache_info(self) -> dict:
        """Hit/miss counters of the per-run mmap-array LRU."""
        return {"hits": self._runs.hits, "misses": self._runs.misses,
                "entries": len(self._runs),
                "capacity": self._runs.capacity}

    # -- single lookups ------------------------------------------------
    def vertex_lookup(self, run_id: int, vertex: int) -> tuple:
        """Replica set of one vertex, through the hot-vertex LRU."""
        key = (run_id, vertex)
        cached = self._hot.get(key)
        if cached is not None:
            return cached
        arrays = self.run_arrays(run_id)
        if not 0 <= vertex < arrays.num_vertices:
            raise LookupRangeError(
                f"vertex {vertex} out of range [0, {arrays.num_vertices})")
        value = tuple(
            arrays.parts[arrays.indptr[vertex]:
                         arrays.indptr[vertex + 1]].tolist())
        self._hot.put(key, value)
        return value

    def edge_lookup(self, run_id: int, edge_id: int) -> int:
        arrays = self.run_arrays(run_id)
        if not 0 <= edge_id < arrays.num_edges:
            raise LookupRangeError(
                f"edge {edge_id} out of range [0, {arrays.num_edges})")
        return int(arrays.assignment[edge_id])

    # -- bulk kernels --------------------------------------------------
    def bulk_vertex_lookup(self, run_id: int, vertices,
                           kernel: str = "vectorized"
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Replica sets of a vertex batch.

        Returns ``(counts, flat)``: ``counts[i]`` replicas for
        ``vertices[i]``, and ``flat`` their concatenated partition
        ids in input order — the CSR-slice form, so a million-vertex
        answer is two flat arrays, not a million Python lists.  Both
        kernels return bit-identical arrays.
        """
        validate_kernel(kernel)
        arrays = self.run_arrays(run_id)
        vs = np.asarray(vertices, dtype=np.int64)
        if vs.ndim != 1:
            raise LookupRangeError("vertices must be a flat id list")
        if len(vs) and (vs.min() < 0 or vs.max() >= arrays.num_vertices):
            raise LookupRangeError(
                f"vertex ids out of range [0, {arrays.num_vertices})")
        if kernel == "python":
            counts, flat = [], []
            for v in vs.tolist():
                row = arrays.parts[arrays.indptr[v]:
                                   arrays.indptr[v + 1]].tolist()
                counts.append(len(row))
                flat.extend(row)
            return (np.asarray(counts, dtype=np.int64),
                    np.asarray(flat, dtype=np.int64))
        indptr = np.asarray(arrays.indptr)
        slot_idx, counts = adjacency_slots(indptr, vs)
        return counts.astype(np.int64), np.asarray(
            arrays.parts)[slot_idx].astype(np.int64)

    def bulk_edge_lookup(self, run_id: int, edge_ids,
                         kernel: str = "vectorized") -> np.ndarray:
        """Partition ids of an edge-id batch (bit-identical kernels)."""
        validate_kernel(kernel)
        arrays = self.run_arrays(run_id)
        es = np.asarray(edge_ids, dtype=np.int64)
        if es.ndim != 1:
            raise LookupRangeError("edges must be a flat id list")
        if len(es) and (es.min() < 0 or es.max() >= arrays.num_edges):
            raise LookupRangeError(
                f"edge ids out of range [0, {arrays.num_edges})")
        if kernel == "python":
            return np.asarray([int(arrays.assignment[e])
                               for e in es.tolist()], dtype=np.int64)
        return np.asarray(arrays.assignment)[es].astype(np.int64)
