"""repro — reproduction of "Distributed Edge Partitioning for
Trillion-edge Graphs" (Hanai et al., VLDB 2019).

The package implements Distributed Neighbor Expansion (Distributed NE)
on a simulated distributed runtime, every baseline partitioner the
paper compares against, the quality metrics and theoretical bounds of
§6, and a GAS-style application engine for the §7.6 workloads.

Quickstart::

    from repro import CSRGraph, DistributedNE, rmat_edges

    graph = CSRGraph(rmat_edges(scale=12, edge_factor=16, seed=7))
    result = DistributedNE(num_partitions=8, seed=7).partition(graph)
    print(result.replication_factor(), result.iterations)

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-table/figure reproduction harness.
"""

from repro.graph import (
    CSRGraph,
    DATASETS,
    canonical_edges,
    complete_graph,
    erdos_renyi,
    grid_road_network,
    load_dataset,
    powerlaw_chung_lu,
    ring_graph,
    ring_plus_complete,
    rmat_edges,
)
from repro.core import DistributedNE
from repro.partitioners import (
    DBHPartitioner,
    EdgePartition,
    GridPartitioner,
    HDRFPartitioner,
    HybridGingerPartitioner,
    HybridHashPartitioner,
    MetisLikePartitioner,
    NEPartitioner,
    ObliviousPartitioner,
    PARTITIONER_REGISTRY,
    Partitioner,
    RandomPartitioner,
    SNEPartitioner,
    SheepPartitioner,
    SpinnerPartitioner,
    VertexPartition,
    XtraPuLPPartitioner,
    vertex_to_edge_partition,
)
from repro.metrics import (
    balance,
    edge_balance,
    replication_factor,
    theorem1_upper_bound,
    vertex_balance,
)

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "DATASETS",
    "load_dataset",
    "canonical_edges",
    "rmat_edges",
    "erdos_renyi",
    "powerlaw_chung_lu",
    "ring_graph",
    "complete_graph",
    "ring_plus_complete",
    "grid_road_network",
    "DistributedNE",
    "EdgePartition",
    "VertexPartition",
    "Partitioner",
    "PARTITIONER_REGISTRY",
    "RandomPartitioner",
    "GridPartitioner",
    "DBHPartitioner",
    "HybridHashPartitioner",
    "ObliviousPartitioner",
    "HDRFPartitioner",
    "HybridGingerPartitioner",
    "NEPartitioner",
    "SNEPartitioner",
    "SheepPartitioner",
    "SpinnerPartitioner",
    "MetisLikePartitioner",
    "XtraPuLPPartitioner",
    "vertex_to_edge_partition",
    "replication_factor",
    "edge_balance",
    "vertex_balance",
    "balance",
    "theorem1_upper_bound",
    "__version__",
]
