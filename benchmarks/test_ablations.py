"""Ablation benches for the design choices DESIGN.md §5 calls out.

Not in the paper's evaluation, but each isolates one design decision
the paper argues for in prose:

* two-hop allocation (Condition 5) — the "free edges" rule;
* 2D vs 1D initial placement — computable replica metadata and bounded
  sync fan-out;
* random vs min-degree seed vertices.
"""

import pytest

from repro.bench.experiments import (
    ablation_placement,
    ablation_seed_strategy,
    ablation_two_hop,
)
from repro.bench.harness import format_table
from repro.graph import load_dataset

from conftest import run_once


@pytest.fixture(scope="module")
def graph():
    return load_dataset("pokec")


def test_ablation_two_hop(benchmark, record, graph):
    rows = run_once(benchmark, ablation_two_hop, graph, num_partitions=16)
    record("ablation_two_hop", rows)
    print("\n" + format_table(
        ["two_hop", "RF", "iterations"],
        [[r["two_hop"], r["replication_factor"], r["iterations"]]
         for r in rows], title="Ablation: two-hop allocation"))
    by = {r["two_hop"]: r for r in rows}
    # Condition 5 never hurts quality (it only allocates free edges).
    assert (by[True]["replication_factor"]
            <= by[False]["replication_factor"] + 0.05)


def test_ablation_placement(benchmark, record, graph):
    rows = run_once(benchmark, ablation_placement, graph,
                    num_partitions=16)
    record("ablation_placement", rows)
    print("\n" + format_table(
        ["placement", "RF", "bytes", "messages"],
        [[r["placement"], r["replication_factor"], r["total_bytes"],
          r["total_messages"]] for r in rows],
        title="Ablation: initial placement"))
    by = {r["placement"]: r for r in rows}
    # 2D placement bounds the multicast/sync fan-out.
    assert by["2d"]["total_messages"] < by["1d"]["total_messages"]
    # Quality is placement-insensitive (it only affects distribution).
    assert (abs(by["2d"]["replication_factor"]
                - by["1d"]["replication_factor"]) < 0.6)


def test_ablation_seed_strategy(benchmark, record, graph):
    rows = run_once(benchmark, ablation_seed_strategy, graph,
                    num_partitions=16)
    record("ablation_seed", rows)
    print("\n" + format_table(
        ["seed strategy", "RF", "iterations"],
        [[r["seed_strategy"], r["replication_factor"], r["iterations"]]
         for r in rows], title="Ablation: seed-vertex strategy"))
    rf = {r["seed_strategy"]: r["replication_factor"] for r in rows}
    # Both must produce sane partitions; min-degree seeding tends to
    # start expansions in the graph's periphery and is usually at least
    # as good on skewed graphs.
    assert rf["min_degree"] < rf["random"] * 1.2
