"""Figure 10(j) — weak scaling toward the trillion-edge configuration.

Paper protocol: vertices per machine fixed at 2^22; machines x4 per
step (Scale24@4 ... Scale30@256, EF up to 1024 = the trillion-edge
graph, 69.7 minutes).  Scaled-down protocol here: vertices per machine
fixed, machines x4 per step over Scale12->Scale16.

Reproduced observations:

* elapsed time grows roughly linearly in the machine count (workload
  imbalance across expansion processes, not a flat line);
* the vertex-selection phase's share of the per-iteration critical
  path grows with machine count (paper: <1% at 4 machines -> 30.3% at
  256).  The share is asserted on the deterministic cost model
  (``selection_share_model``: per-iteration maxima of multicast
  ⟨vertex, replica⟩ pairs vs adjacency slots touched) — the growth is
  structural, driven by the O(sqrt |P|) replica fan-out per selected
  vertex, and identical under both kernels.  Wall-clock shares are
  recorded alongside; after PR 2's vectorized selection plane they
  stay flat at these scales (that plane was built to remove exactly
  this bottleneck), so they no longer carry the trend assertion.
"""

from repro.bench.experiments import fig10j_weak_scaling
from repro.bench.harness import format_table

from conftest import run_once


def test_fig10j_weak_scaling(benchmark, record):
    rows = run_once(benchmark, fig10j_weak_scaling,
                    base_scale=12, edge_factor=16,
                    machine_counts=(4, 16, 64))
    record("fig10j", rows)

    print("\n" + format_table(
        ["machines", "scale", "edges", "seconds", "selection share",
         "model share", "iterations"],
        [[r["machines"], r["scale"], r["edges"], r["elapsed_seconds"],
          r["selection_share"], r["selection_share_model"],
          r["iterations"]] for r in rows],
        title="Figure 10(j): weak scaling (vertices/machine fixed)"))

    times = [r["elapsed_seconds"] for r in rows]
    shares = [r["selection_share"] for r in rows]
    # elapsed time grows with machine count under weak scaling
    assert all(b > a for a, b in zip(times, times[1:]))
    assert all(0.0 <= s <= 1.0 for s in shares)

    # The modeled selection share grows with machine count — the
    # deterministic form of the paper's observation (no timing noise:
    # these are op counts, bit-identical across kernels and runs).
    model_shares = [r["selection_share_model"] for r in rows]
    assert model_shares[-1] > model_shares[0]
    assert all(0.0 <= s <= 1.0 for s in model_shares)
