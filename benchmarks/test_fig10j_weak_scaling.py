"""Figure 10(j) — weak scaling toward the trillion-edge configuration.

Paper protocol: vertices per machine fixed at 2^22; machines x4 per
step (Scale24@4 ... Scale30@256, EF up to 1024 = the trillion-edge
graph, 69.7 minutes).  Scaled-down protocol here: vertices per machine
fixed, machines x4 per step over Scale12->Scale16.

Reproodced observations:

* elapsed time grows roughly linearly in the machine count (workload
  imbalance across expansion processes, not a flat line);
* the vertex-selection phase's share of runtime grows with machine
  count (paper: <1% at 4 machines -> 30.3% at 256).
"""

from repro.bench.experiments import fig10j_weak_scaling
from repro.bench.harness import format_table

from conftest import run_once


def test_fig10j_weak_scaling(benchmark, record):
    rows = run_once(benchmark, fig10j_weak_scaling,
                    base_scale=12, edge_factor=16,
                    machine_counts=(4, 16, 64))
    record("fig10j", rows)

    print("\n" + format_table(
        ["machines", "scale", "edges", "seconds", "selection share",
         "iterations"],
        [[r["machines"], r["scale"], r["edges"], r["elapsed_seconds"],
          r["selection_share"], r["iterations"]] for r in rows],
        title="Figure 10(j): weak scaling (vertices/machine fixed)"))

    times = [r["elapsed_seconds"] for r in rows]
    shares = [r["selection_share"] for r in rows]
    # elapsed time grows with machine count under weak scaling
    assert all(b > a for a, b in zip(times, times[1:]))
    # The vertex-selection share grows with machine count.  Phase times
    # come from sub-millisecond wall-clock samples, so allow timing
    # noise: the largest-machine share must not fall below the
    # smallest-machine share by more than 20%.
    assert shares[-1] > shares[0] * 0.8
    assert all(0.0 <= s <= 1.0 for s in shares)
