"""Figure 8 — replication factor across methods, datasets, and |P|.

Paper claims reproduced here:

* (a–g) Distributed NE produces the lowest (or tied-lowest) RF among
  the distributed methods on every skewed graph, with the gap widening
  at larger |P|;
* hash-based methods (Random, Grid, Spinner) are the clearly worst
  family;
* (h–j) on RMAT, RF grows with edge factor but is nearly constant
  across scales at fixed edge factor ("difficulty depends on
  complexity, not scale").
"""

import pytest

from repro.bench.experiments import fig8_replication_factor, fig8_rmat_replication
from repro.bench.harness import format_table

from conftest import run_once

#: full method set on the small stand-ins (spinner/metis are the slow ones)
METHODS = ("random", "grid", "oblivious", "hybrid_ginger", "spinner",
           "metis_like", "sheep", "xtrapulp", "distributed_ne")
HASH_FAMILY = {"random", "grid", "spinner"}
DISTRIBUTED_RIVALS = ("oblivious", "hybrid_ginger", "spinner", "sheep",
                      "xtrapulp")


@pytest.mark.parametrize("dataset", ["pokec", "flickr", "livejournal",
                                     "orkut"])
def test_fig8_small_datasets(benchmark, record, dataset):
    rows = run_once(benchmark, fig8_replication_factor,
                    datasets=(dataset,), methods=METHODS,
                    partition_counts=(4, 16, 64))
    record(f"fig8_{dataset}", rows)
    _print_panel(dataset, rows)

    for p in (4, 16, 64):
        rf = {r["method"]: r["replication_factor"]
              for r in rows if r["partitions"] == p}
        # D.NE beats every distributed rival on the skewed stand-ins.
        # The paper itself concedes the small-|P| regime ("in Flickr and
        # Twitter of 4 to 16 partitions, Sheep is slightly better"), so
        # the tolerance loosens below 16 partitions.
        slack = 1.05 if p >= 16 else 1.20
        for rival in DISTRIBUTED_RIVALS:
            assert rf["distributed_ne"] <= rf[rival] * slack, (p, rival)
        # And beats random hashing by a wide margin.
        assert rf["distributed_ne"] < 0.8 * rf["random"]


@pytest.mark.parametrize("dataset", ["twitter", "friendster", "webuk"])
def test_fig8_large_datasets(benchmark, record, dataset):
    """The scale-14 stand-ins, fast methods only."""
    methods = ("random", "grid", "sheep", "xtrapulp", "distributed_ne")
    rows = run_once(benchmark, fig8_replication_factor,
                    datasets=(dataset,), methods=methods,
                    partition_counts=(16,))
    record(f"fig8_{dataset}", rows)
    _print_panel(dataset, rows)

    rf = {r["method"]: r["replication_factor"] for r in rows}
    assert rf["distributed_ne"] < rf["random"]
    assert rf["distributed_ne"] < rf["grid"]


def test_fig8_rmat_trends(benchmark, record):
    rows = run_once(benchmark, fig8_rmat_replication,
                    scales=(10, 11, 12), edge_factors=(4, 8, 16),
                    methods=("grid", "distributed_ne"), num_partitions=16)
    record("fig8_rmat", rows)

    print("\n" + format_table(
        ["scale", "EF", "method", "RF"],
        [[r["scale"], r["edge_factor"], r["method"],
          r["replication_factor"]] for r in rows],
        title="Figure 8(h-j): RMAT, 16 partitions"))

    dne = {(r["scale"], r["edge_factor"]): r["replication_factor"]
           for r in rows if r["method"] == "distributed_ne"}
    # RF grows with edge factor at fixed scale.
    for scale in (10, 11, 12):
        assert dne[(scale, 4)] < dne[(scale, 16)]
    # RF roughly scale-invariant at fixed edge factor (paper: "almost
    # the same in the different scales").
    for ef in (4, 8, 16):
        series = [dne[(s, ef)] for s in (10, 11, 12)]
        assert max(series) / min(series) < 1.4, (ef, series)


def _print_panel(dataset, rows):
    partitions = sorted({r["partitions"] for r in rows})
    methods = sorted({r["method"] for r in rows})
    table = []
    for m in methods:
        rf = {r["partitions"]: r["replication_factor"]
              for r in rows if r["method"] == m}
        table.append([m] + [rf[p] for p in partitions])
    print("\n" + format_table(
        ["method"] + [f"P={p}" for p in partitions], table,
        title=f"Figure 8: RF on {dataset} stand-in"))
