"""Figure 10(a–i) — partitioning elapsed time.

Absolute times are substrate-specific (our substrate is a Python
simulator, the paper's is a 256-node MPI cluster); the reproducible
claims are *relative*:

* (a–g) Distributed NE is faster than the multilevel (ParMETIS-like)
  method and competitive with the label-propagation one (XtraPuLP);
* (h) elapsed time grows with edge factor for every method;
* (i) elapsed time grows with scale at fixed edge factor, with similar
  rates across methods.
"""


from repro.bench.experiments import (
    fig10_elapsed_time,
    fig10h_edge_factor_sweep,
    fig10i_scale_sweep,
)
from repro.bench.harness import format_table

from conftest import run_once


def test_fig10_real_world(benchmark, record):
    rows = run_once(benchmark, fig10_elapsed_time,
                    datasets=("pokec", "flickr"),
                    methods=("metis_like", "sheep", "xtrapulp",
                             "distributed_ne"),
                    partition_counts=(4, 16))
    record("fig10_real", rows)

    print("\n" + format_table(
        ["dataset", "P", "method", "wall s", "parallel s"],
        [[r["dataset"], r["partitions"], r["method"], r["elapsed_seconds"],
          r["parallel_seconds"]] for r in rows],
        title="Figure 10(a-g): partitioning time"))

    for ds in ("pokec", "flickr"):
        for p in (4, 16):
            wall = {r["method"]: r["elapsed_seconds"] for r in rows
                    if r["dataset"] == ds and r["partitions"] == p}
            par = {r["method"]: r["parallel_seconds"] for r in rows
                   if r["dataset"] == ds and r["partitions"] == p}
            # D.NE's simulated parallel time beats the multilevel
            # method's wall time (the paper's 9.1x is on MPI; our
            # simulator serialises D.NE's |P| machines, so parallel
            # time is the like-for-like quantity — see EXPERIMENTS.md).
            assert par["distributed_ne"] < wall["metis_like"], (ds, p)
            # And stays within a small factor of the LP-based method
            # ("comparable to XtraPuLP").
            assert par["distributed_ne"] < 6 * wall["xtrapulp"], (ds, p)


def test_fig10h_edge_factor(benchmark, record):
    # Scale 13, EF 4->64 (scale 10, EF 4->32 was enough
    # pre-vectorization; the flat-array kernels flattened DNE's curve
    # below ~10^5 edges, where fixed per-iteration overhead dominates,
    # so the sweep spans a wider edge-count range to keep growth
    # timing-robust).
    rows = run_once(benchmark, fig10h_edge_factor_sweep,
                    scale=13, edge_factors=(4, 16, 64),
                    methods=("xtrapulp", "distributed_ne"),
                    num_partitions=16)
    record("fig10h", rows)
    print("\n" + format_table(
        ["EF", "method", "seconds", "edges"],
        [[r["edge_factor"], r["method"], r["elapsed_seconds"], r["edges"]]
         for r in rows], title="Figure 10(h): time vs edge factor"))

    for method in ("xtrapulp", "distributed_ne"):
        series = [r["elapsed_seconds"] for r in rows
                  if r["method"] == method]
        assert series[-1] > series[0], method  # grows with EF


def test_fig10i_scale(benchmark, record):
    # Scales 9->13 (one-scale steps were enough pre-vectorization;
    # the flat-array kernels flattened DNE's curve below ~10^5 edges,
    # where fixed per-iteration overhead dominates, so the sweep now
    # spans 4x-per-step edge counts to keep growth timing-robust).
    rows = run_once(benchmark, fig10i_scale_sweep,
                    scales=(9, 11, 13), edge_factor=16,
                    methods=("xtrapulp", "distributed_ne"),
                    num_partitions=16)
    record("fig10i", rows)
    print("\n" + format_table(
        ["scale", "method", "seconds", "edges"],
        [[r["scale"], r["method"], r["elapsed_seconds"], r["edges"]]
         for r in rows], title="Figure 10(i): time vs scale"))

    for method in ("xtrapulp", "distributed_ne"):
        series = [r["elapsed_seconds"] for r in rows
                  if r["method"] == method]
        assert series[-1] > series[0], method  # grows with scale
