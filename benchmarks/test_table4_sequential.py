"""Table 4 — comparison with sequential/streaming algorithms.

Paper (64 partitions, Pokec/Flickr/LiveJ/Orkut):

* offline NE has the best RF everywhere;
* Distributed NE's RF is close to SNE's and far better than HDRF's;
* Distributed NE is much faster than all three sequential methods
  (on the cluster; here "faster" shows up as competitive wall time
  despite simulating |P| machines in one process).
"""


from repro.bench.experiments import table4_sequential_comparison
from repro.bench.harness import format_table

from conftest import run_once


def test_table4(benchmark, record):
    rows = run_once(benchmark, table4_sequential_comparison,
                    datasets=("pokec", "flickr", "livejournal", "orkut"),
                    num_partitions=64)
    record("table4", rows)

    datasets = ("pokec", "flickr", "livejournal", "orkut")
    methods = ("hdrf", "ne", "sne", "distributed_ne")
    rf = {(r["dataset"], r["method"]): r["replication_factor"]
          for r in rows}
    t = {(r["dataset"], r["method"]): r["elapsed_seconds"] for r in rows}

    table = [[m] + [rf[(d, m)] for d in datasets] for m in methods]
    print("\n" + format_table(["method (RF)"] + list(datasets), table,
                              title="Table 4: RF, 64 partitions"))
    table = [[m] + [t[(d, m)] for d in datasets] for m in methods]
    print(format_table(["method (sec)"] + list(datasets), table))

    for d in datasets:
        # Offline NE is the quality reference: at least as good as the
        # distributed run (paper: NE < D.NE everywhere).
        assert rf[(d, "ne")] <= rf[(d, "distributed_ne")] * 1.10, d
        # D.NE clearly beats plain streaming quality on skewed graphs.
        assert rf[(d, "distributed_ne")] < rf[(d, "hdrf")] * 1.15, d
