"""Table 6 — road networks (the non-skewed control experiment).

Paper: on CA/PA/TX road networks every high-quality method (ParMETIS,
Sheep, XtraPuLP, D.NE) achieves RF ~ 1.0–1.1 while the hash-based
methods sit at 2.1–3.7; D.NE is similar or slightly better than the
rest, but the paper's own take-away is that vertex partitioning is
perfectly adequate on non-skewed graphs.
"""


from repro.bench.experiments import table6_road_networks
from repro.bench.harness import TABLE6_METHODS, format_table

from conftest import run_once


def test_table6(benchmark, record):
    rows = run_once(benchmark, table6_road_networks,
                    datasets=("roadnet-ca", "roadnet-pa", "roadnet-tx"),
                    methods=TABLE6_METHODS, num_partitions=16)
    record("table6", rows)

    datasets = ("roadnet-ca", "roadnet-pa", "roadnet-tx")
    rf = {(r["dataset"], r["method"]): r["replication_factor"]
          for r in rows}
    table = [[m] + [rf[(d, m)] for d in datasets] for m in TABLE6_METHODS]
    print("\n" + format_table(["method"] + list(datasets), table,
                              title="Table 6: RF on road networks"))

    high_quality = ("metis_like", "sheep", "xtrapulp", "distributed_ne")
    hash_based = ("random", "grid")
    for d in datasets:
        for hq in high_quality:
            # high-quality methods are near-ideal on non-skewed graphs
            assert rf[(d, hq)] < 2.0, (d, hq)
            for hb in hash_based:
                assert rf[(d, hq)] < rf[(d, hb)], (d, hq, hb)
        # D.NE among the best (within 15% of the best method)
        best = min(rf[(d, m)] for m in high_quality)
        assert rf[(d, "distributed_ne")] <= best * 1.15, d
