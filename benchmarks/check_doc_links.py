#!/usr/bin/env python3
"""Fail if any relative markdown link in README/docs is broken.

Scans ``README.md``, ``docs/*.md``, and the other top-level markdown
files for ``[text](target)`` links and checks every *relative* target
resolves to a real file or directory in the checkout.  Skipped, by
design:

* absolute URLs (``http://``, ``https://``, ``mailto:``);
* pure in-page anchors (``#section``);
* targets that resolve *outside* the repository root — the README's
  CI badge links ``../../actions/...``, which is a GitHub URL path,
  not a checkout path.

Anchors on relative links (``FILE.md#section``) are checked for the
file part only.  Stdlib-only so the lint job can run it without the
scientific stack.  Exit code 0 when every link resolves, 1 otherwise.
"""

from __future__ import annotations

import glob
import os
import re
import sys

#: [text](target) with no nested brackets; images share the syntax
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: fenced code blocks — links inside them are examples, not links
_FENCE = re.compile(r"```.*?```", re.DOTALL)

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def _markdown_files(root: str) -> list[str]:
    files = sorted(glob.glob(os.path.join(root, "*.md")))
    files += sorted(glob.glob(os.path.join(root, "docs", "*.md")))
    return files


def check(root: str) -> list[str]:
    root = os.path.realpath(root)
    broken: list[str] = []
    for md in _markdown_files(root):
        with open(md, encoding="utf-8") as fh:
            text = _FENCE.sub("", fh.read())
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.realpath(
                os.path.join(os.path.dirname(md), path))
            if not resolved.startswith(root + os.sep):
                continue  # escapes the checkout (e.g. badge URL paths)
            if not os.path.exists(resolved):
                broken.append(f"{os.path.relpath(md, root)}: "
                              f"[{target}] -> {os.path.relpath(resolved, root)}"
                              " (missing)")
    return broken


def main() -> int:
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir)
    broken = check(root)
    for line in broken:
        print(f"BROKEN {line}")
    checked = len(_markdown_files(os.path.realpath(root)))
    print(f"checked {checked} markdown files: "
          f"{len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
