"""Table 1 — theoretical replication-factor bounds on power-law graphs.

Paper (256 partitions, alpha = 2.2 / 2.4 / 2.6 / 2.8):

    Random (1D-hash)   5.88  3.46  2.64  2.23
    Grid (2D-hash)     4.82  3.13  2.47  2.13
    DBH                5.54  3.19  2.42  2.05
    Distributed NE     2.88  2.12  1.88  1.75

Our zeta-form evaluation reproduces the Distributed NE row exactly and
the Random row to ~1.5%.  Grid uses the 2*sqrt(p)-1 constrained-set
closed form (within 13% of the paper, ordering preserved); the DBH row
is a tighter mean-field estimate (see EXPERIMENTS.md for the
methodological note).
"""

import pytest

from repro.bench.experiments import table1_bounds
from repro.bench.harness import format_table
from repro.metrics.bounds import TABLE1_ALPHAS

from conftest import run_once


def test_table1_bounds(benchmark, record):
    rows = run_once(benchmark, table1_bounds, num_partitions=256,
                    max_degree=200_000)
    record("table1", rows)

    table_rows = []
    for r in rows:
        table_rows.append([r["method"]]
                          + [f"{v:.2f}" for v in r["computed"]]
                          + [f"{v:.2f}" for v in r["paper"]])
    print("\n" + format_table(
        ["method"] + [f"a={a} (ours)" for a in TABLE1_ALPHAS]
        + [f"a={a} (paper)" for a in TABLE1_ALPHAS],
        table_rows, title="Table 1: expected RF upper bounds, |P|=256"))

    by = {r["method"]: r for r in rows}
    dne = by["Distributed NE"]
    rand = by["Random (1D-hash)"]
    grid = by["Grid (2D-hash)"]

    # D.NE row matches the paper to 2 decimals.
    for got, want in zip(dne["computed"], dne["paper"]):
        assert got == pytest.approx(want, abs=0.01)
    # Random row within 2%.
    for got, want in zip(rand["computed"], rand["paper"]):
        assert got == pytest.approx(want, rel=0.02)
    # Orderings the paper claims: D.NE best everywhere; Grid < Random.
    for i in range(len(TABLE1_ALPHAS)):
        assert dne["computed"][i] < grid["computed"][i]
        assert dne["computed"][i] < rand["computed"][i]
        assert grid["computed"][i] < rand["computed"][i]
