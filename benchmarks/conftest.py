"""Shared fixtures for the per-figure/table benchmark suite.

Conventions:

* every bench uses the ``benchmark`` fixture (so ``--benchmark-only``
  selects all of them) with ``pedantic(rounds=1)`` — each experiment
  driver is already a full sweep, repeating it only burns time;
* every bench *prints* a paper-style table (run with ``-s`` to see it)
  and *asserts* the paper's qualitative claims — who wins, in what
  direction trends move;
* every bench records its rows into ``benchmarks/results/*.json`` so
  EXPERIMENTS.md can be regenerated from a bench run
  (``python examples/regenerate_experiments.py``).

Scale: dataset stand-ins are 10^4–10^5 edges (see DESIGN.md §2);
partition counts are trimmed to keep the full suite within a few
minutes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """Store an experiment's rows as JSON: ``record(name, rows)``."""
    def _record(name: str, rows) -> None:
        path = results_dir / f"{name}.json"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(rows, fh, indent=2, default=str)
    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
