"""Tier-1 perf smoke test — kernel regressions fail fast.

A tiny slice of the ``repro bench perf`` suite: on a ~50k-edge RMAT
graph, the vectorized DNE one-hop kernel and the vectorized selection
plane (array-backed boundary queue + batched multicast at the paper's
64-machine scale-out regime) must each beat their per-pair reference by
a comfortable margin (the full bench shows >4×; asserting 2× keeps the
tests robust to noisy CI boxes), and every kernel pair must agree on
its outputs.

The full trajectory lives in ``BENCH_kernels.json`` (regenerate with
``python -m repro bench perf``).
"""

import os

import numpy as np
import pytest

from repro.bench.perf import (
    bench_all_gather_sum,
    bench_allocation_phases,
    bench_csr_build,
    bench_dne_end_to_end,
    bench_engine_gathers,
    bench_observability_overhead,
    bench_selection_phase,
    bench_serving_lookup,
    bench_sheep_order,
    bench_streaming_partitioner,
    bench_two_hop_conflict,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges


def _smoke_graph() -> CSRGraph:
    """~50k-edge RMAT graph (2^13 vertices, EF 8, before dedup 65k)."""
    return CSRGraph(rmat_edges(13, 8, seed=0))


def test_one_hop_vectorized_at_least_2x():
    graph = _smoke_graph()
    assert graph.num_edges > 40_000
    py_one, py_two = bench_allocation_phases(graph, 8, "python")
    vec_one, vec_two = bench_allocation_phases(graph, 8, "vectorized")
    assert vec_one > 0 and vec_two > 0
    assert py_one >= 2.0 * vec_one, (
        f"one-hop speedup regressed: python {py_one:.3f}s vs "
        f"vectorized {vec_one:.3f}s ({py_one / vec_one:.2f}x < 2x)")


def test_two_hop_conflict_vectorized_at_least_2x():
    """Conflict-heavy two-hop (the loads-delta batching regime): the
    full bench shows ~5x; 2x keeps the floor robust to noisy boxes."""
    graph = _smoke_graph()
    py = bench_two_hop_conflict(graph, 8, "python")
    vec = bench_two_hop_conflict(graph, 8, "vectorized")
    assert vec > 0
    assert py >= 2.0 * vec, (
        f"two-hop conflict speedup regressed: python {py:.3f}s vs "
        f"vectorized {vec:.3f}s ({py / vec:.2f}x < 2x)")


def test_selection_vectorized_at_least_2x():
    """The selection/boundary plane (§7.4's scale-out bottleneck) at
    |P| = 64: array queue + batched multicast vs heapq + tuple lists."""
    graph = _smoke_graph()
    py_sel, py_fold = bench_selection_phase(graph, 64, "python")
    vec_sel, vec_fold = bench_selection_phase(graph, 64, "vectorized")
    assert vec_sel > 0 and vec_fold > 0
    assert py_sel >= 2.0 * vec_sel, (
        f"selection speedup regressed: python {py_sel:.3f}s vs "
        f"vectorized {vec_sel:.3f}s ({py_sel / vec_sel:.2f}x < 2x)")


def test_streaming_rows_vectorized_at_least_2x():
    """The streaming-baseline zoo on the shared chunked-scoring
    substrate at the Table-4/5 sweep width (|P| = 64): the full bench
    shows ~2.5-3.5x for HDRF/FENNEL; 2x keeps the floor robust."""
    graph = _smoke_graph()
    for name in ("hdrf", "fennel"):
        py = bench_streaming_partitioner(name, graph, 64, "python")
        vec = bench_streaming_partitioner(name, graph, 64, "vectorized")
        assert vec > 0
        assert py >= 2.0 * vec, (
            f"{name} streaming speedup regressed: python {py:.3f}s vs "
            f"vectorized {vec:.3f}s ({py / vec:.2f}x < 2x)")


def test_streaming_wide_partitions_vectorized_at_least_2x():
    """|P| = 256 weak-scaling row: packed-bitset membership end-to-end
    against the reference's per-edge O(|P|) set probes (full bench
    shows ~8x; 2x floor)."""
    graph = CSRGraph(rmat_edges(11, 8, seed=0))
    py = bench_streaming_partitioner("hdrf", graph, 256, "python")
    vec = bench_streaming_partitioner("hdrf", graph, 256, "vectorized")
    assert vec > 0
    assert py >= 2.0 * vec, (
        f"hdrf |P|=256 speedup regressed: python {py:.3f}s vs "
        f"vectorized {vec:.3f}s ({py / vec:.2f}x < 2x)")


def test_dne_p256_end_to_end_at_least_2x():
    """End-to-end DNE at the |P| = 256 weak-scaling width (the bench's
    ``dne_p256`` row at edge scale 14): fused cross-partition phase
    dispatch must beat the python reference.  This was the |P| ≫ 64
    crossover where per-process dispatch lost to the reference (0.48x);
    the fused plane shows ~2.7x in the full bench, 2x keeps the floor
    robust to noisy boxes."""
    graph = CSRGraph(rmat_edges(11, 8, seed=0))
    py = bench_dne_end_to_end(graph, 256, "python")
    vec = bench_dne_end_to_end(graph, 256, "vectorized")
    assert vec > 0
    assert py >= 2.0 * vec, (
        f"dne_p256 speedup regressed: python {py:.3f}s vs "
        f"vectorized {vec:.3f}s ({py / vec:.2f}x < 2x)")


def test_dne_backend_threads_floor_or_skip():
    """Parallel-backend wall clock only means something when the host
    has the cores.  When ``cpu_count < workers`` the bench rows carry
    ``hardware_limited: true`` and this floor *skips* — visibly, not a
    silent pass — instead of failing on timings the host cannot hit.
    With the cores present, the threads backend (fused chunks + outbox
    replay) must stay within 1.5x of inline simulated dispatch."""
    workers = 4
    if (os.cpu_count() or 1) < workers:
        pytest.skip(f"hardware_limited: {os.cpu_count() or 1} core(s) "
                    f"< {workers} workers — backend floor unmeasurable")
    graph = CSRGraph(rmat_edges(11, 8, seed=0))
    sim = bench_dne_end_to_end(graph, 256, "vectorized")
    thr = bench_dne_end_to_end(graph, 256, "vectorized",
                               backend="threads", workers=workers)
    assert sim > 0
    assert thr <= 1.5 * sim, (
        f"threads backend floor regressed: simulated {sim:.3f}s vs "
        f"threads {thr:.3f}s ({thr / sim:.2f}x > 1.5x)")


def test_serving_lookup_vectorized_at_least_2x_and_serves():
    """The partition-serving read path: the vectorized bulk vertex
    lookup (one ``adjacency_slots`` gather over the replica CSR) must
    beat the per-vertex python reference (full bench shows >10x; 2x
    floor), and the live asyncio server must absorb the concurrent
    hammer with zero non-200 responses."""
    graph = CSRGraph(rmat_edges(12, 8, seed=0))
    py, vec, http_stats = bench_serving_lookup(
        graph, 8, rounds=3, batch=4096, concurrency=4,
        requests_per_client=16, bulk=64, seed=0)
    assert vec > 0
    assert py >= 2.0 * vec, (
        f"serving bulk-lookup speedup regressed: python {py:.3f}s vs "
        f"vectorized {vec:.3f}s ({py / vec:.2f}x < 2x)")
    assert http_stats["http_errors"] == 0
    assert http_stats["http_lookups_per_sec"] > 0
    # generous ceiling: the full bench shows p99 ≈ 5-10ms for
    # bulk-64 lookups; 250ms only trips on a real serving stall
    assert 0 < http_stats["http_p99_ms"] < 250, http_stats


def test_observability_overhead_under_bound():
    """Tracing must be near-free: the full bench pins the traced
    ``dne_p256`` run within ~5% of untraced; at smoke scale individual
    runs are sub-second and scheduler jitter alone exceeds 5%, so the
    floor here is a noise-tolerant 1.25x — it trips on a hot-path
    regression (e.g. per-message metric calls), not on a noisy box."""
    graph = CSRGraph(rmat_edges(11, 8, seed=0))
    t_off, t_on = bench_observability_overhead(graph, 256, repeats=3)
    assert t_off > 0 and t_on > 0
    assert t_on <= 1.25 * t_off, (
        f"telemetry overhead regressed: untraced {t_off:.3f}s vs "
        f"traced {t_on:.3f}s ({t_on / t_off:.2f}x > 1.25x)")


def test_sheep_order_kernels_run_and_agree():
    """Sheep's batched elimination order: no speed floor (the batched
    fringe harvest + heap tail is roughly at parity at smoke scale —
    see BENCH_kernels.json for the per-scale numbers), but both
    kernels must run and agree."""
    from repro.partitioners.sheep import (_min_degree_order,
                                          _min_degree_order_python)
    graph = CSRGraph(rmat_edges(11, 8, seed=1))
    assert bench_sheep_order(graph, "python") >= 0
    assert bench_sheep_order(graph, "vectorized") >= 0
    assert np.array_equal(_min_degree_order(graph),
                          _min_degree_order_python(graph))


def test_selection_bench_kernels_agree_on_traffic(monkeypatch):
    """Both kernels must drive identical simulated traffic through the
    selection bench — ndarray payloads size exactly like tuple lists."""
    import repro.bench.perf as perf
    from repro.cluster.runtime import SimulatedCluster

    graph = CSRGraph(rmat_edges(9, 6, seed=2))
    stats = {}
    for kernel in ("python", "vectorized"):
        captured = []
        orig_init = SimulatedCluster.__init__
        monkeypatch.setattr(
            SimulatedCluster, "__init__",
            lambda self: (orig_init(self), captured.append(self))[0])
        perf.bench_selection_phase(graph, 8, kernel)
        monkeypatch.undo()
        stats[kernel] = captured[0].stats.summary()
    assert stats["python"] == stats["vectorized"]


def test_remaining_kernels_run():
    """Every benched kernel pair executes at a tiny scale."""
    graph = CSRGraph(rmat_edges(9, 6, seed=1))
    for kernel in ("python", "vectorized"):
        t_sum, t_min = bench_engine_gathers(graph, 4, kernel, rounds=1)
        assert t_sum >= 0 and t_min >= 0
        assert bench_csr_build(graph.edges, kernel, rounds=1) >= 0
        assert bench_all_gather_sum(4, kernel, rounds=2) >= 0


def test_allocation_outputs_agree_on_smoke_graph():
    """The timed kernels must also agree — speed without drift."""
    from repro.core.distributed_ne import DistributedNE
    graph = CSRGraph(rmat_edges(9, 6, seed=3))
    a = DistributedNE(4, seed=0).partition(graph)
    b = DistributedNE(4, seed=0, kernel="python").partition(graph)
    assert np.array_equal(a.assignment, b.assignment)
