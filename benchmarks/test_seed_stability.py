"""§7.2's measurement protocol: five seeds, relative standard error.

The paper runs Distributed NE with five different random seeds and
reports the median, noting the relative standard error of the RF is
below 5%.  This bench replays the protocol on the stand-ins.
"""

import numpy as np
import pytest

from repro.bench.harness import format_table
from repro.core import DistributedNE
from repro.graph import load_dataset

from conftest import run_once


@pytest.mark.parametrize("dataset", ["pokec", "flickr"])
def test_seed_stability(benchmark, record, dataset):
    graph = load_dataset(dataset)

    def run():
        rows = []
        for seed in range(5):
            result = DistributedNE(16, seed=seed).partition(graph)
            rows.append({"seed": seed,
                         "replication_factor": result.replication_factor(),
                         "iterations": result.iterations})
        return rows

    rows = run_once(benchmark, run)
    record(f"seed_stability_{dataset}", rows)

    rfs = np.array([r["replication_factor"] for r in rows])
    rse = rfs.std(ddof=1) / np.sqrt(len(rfs)) / rfs.mean()
    print("\n" + format_table(
        ["seed", "RF", "iterations"],
        [[r["seed"], r["replication_factor"], r["iterations"]]
         for r in rows],
        title=f"Seed stability ({dataset}): median {np.median(rfs):.3f}, "
              f"RSE {100 * rse:.2f}%"))

    # Paper: relative standard error below 5%.
    assert rse < 0.05
