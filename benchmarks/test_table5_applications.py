"""Table 5 — effect of partitioning on SSSP / WCC / PageRank.

Paper (64 partitions; we use 16 on the stand-ins): Distributed NE wins
elapsed time for all apps and all graphs because it slashes the
communication volume; the improvement is biggest for PageRank (heavy
all-vertex traffic) and smallest for SSSP (sparse frontier traffic).
D.NE's edge balance stays tight (algorithmic constraint) while vertex
balance may degrade without hurting runtime.
"""

import pytest

from repro.bench.experiments import table5_applications
from repro.bench.harness import TABLE5_METHODS, format_table

from conftest import run_once


@pytest.mark.parametrize("dataset", ["pokec", "flickr"])
def test_table5(benchmark, record, dataset):
    rows = run_once(benchmark, table5_applications,
                    datasets=(dataset,), methods=TABLE5_METHODS,
                    num_partitions=16, pagerank_iterations=10)
    record(f"table5_{dataset}", rows)

    print("\n" + format_table(
        ["method", "RF", "EB", "VB",
         "sssp COM", "wcc COM", "pr COM", "pr WB"],
        [[r["method"], r["rf"], r["eb"], r["vb"],
          r["sssp_com"], r["wcc_com"], r["pr_com"], r["pr_wb"]]
         for r in rows],
        title=f"Table 5 ({dataset} stand-in, 16 partitions)"))

    by = {r["method"]: r for r in rows}
    dne, rand = by["distributed_ne"], by["random"]

    # Quality: D.NE has the lowest RF of the PowerLyra set.
    for m in TABLE5_METHODS:
        if m != "distributed_ne":
            assert dne["rf"] <= by[m]["rf"] * 1.02, m

    # Communication: D.NE moves the least data on every app.
    for key in ("sssp_com", "wcc_com", "pr_com"):
        for m in TABLE5_METHODS:
            if m != "distributed_ne":
                assert dne[key] <= by[m][key], (key, m)

    # The PageRank gap is the widest, the SSSP gap the narrowest
    # (relative to random hashing) — §7.6's workload-pattern argument.
    pr_gain = rand["pr_com"] / dne["pr_com"]
    sssp_gain = rand["sssp_com"] / dne["sssp_com"]
    assert pr_gain >= sssp_gain * 0.9

    # Edge balance stays tight for D.NE (algorithmic constraint).
    assert dne["eb"] < 1.5
