"""Theorem 2 (Figure 7) — tightness of the Theorem 1 bound.

The ring+complete construction with |P| = n(n-1)/2 has adversarial
RF/UB -> 1 as n grows; any actual Distributed NE run must stay at or
below the bound.
"""

from repro.bench.experiments import theorem2_tightness
from repro.bench.harness import format_table

from conftest import run_once


def test_theorem2_tightness(benchmark, record):
    rows = run_once(benchmark, theorem2_tightness, ns=(4, 6, 8, 12),
                    measure=True)
    record("theorem2", rows)

    print("\n" + format_table(
        ["n", "adversarial RF", "UB", "ratio", "measured RF"],
        [[r["n"], r["adversarial_rf"], r["upper_bound"], r["ratio"],
          r.get("measured_rf", "-")] for r in rows],
        title="Theorem 2: ring+complete tightness"))

    ratios = [r["ratio"] for r in rows]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))  # -> 1
    assert ratios[-1] > 0.95
    assert all(r["measured_le_bound"] for r in rows)
