"""Figure 9 — memory consumption (mem score = peak bytes per edge).

Paper claims: Distributed NE's mem score is about an order of magnitude
below ParMETIS/Sheep/XtraPuLP (on average 5.89% of the others), it
*decreases* slightly as graphs grow (fixed overheads amortise), and
ParMETIS is the heaviest because coarsening keeps whole-graph copies.
"""


from repro.bench.experiments import fig9_memory
from repro.bench.harness import format_table

from conftest import run_once


def test_fig9_real_world(benchmark, record):
    rows = run_once(benchmark, fig9_memory,
                    datasets=("pokec", "flickr", "livejournal", "orkut"),
                    methods=("metis_like", "sheep", "xtrapulp",
                             "distributed_ne"),
                    num_partitions=16)
    record("fig9_real", rows)

    datasets = sorted({r["dataset"] for r in rows})
    methods = ("metis_like", "sheep", "xtrapulp", "distributed_ne")
    table = []
    for m in methods:
        scores = {r["dataset"]: r["mem_score_bytes_per_edge"]
                  for r in rows if r["method"] == m}
        table.append([m] + [scores[d] for d in datasets])
    print("\n" + format_table(["method"] + datasets, table,
                              title="Figure 9(a): mem score (bytes/edge)"))

    for d in datasets:
        scores = {r["method"]: r["mem_score_bytes_per_edge"]
                  for r in rows if r["dataset"] == d}
        # D.NE leaner than every high-quality rival ...
        assert scores["distributed_ne"] < scores["sheep"]
        assert scores["distributed_ne"] < scores["xtrapulp"]
        # ... and multiple times leaner than the multilevel method.
        assert scores["distributed_ne"] < 0.5 * scores["metis_like"]


def test_fig9_rmat_edge_factor_trend(benchmark, record):
    """Paper: D.NE's mem score decreases as the edge factor rises
    (per-vertex structures amortise over more edges)."""
    from repro.bench.experiments import CSRGraph, rmat_edges
    from repro.bench.harness import mem_score, run_method

    def sweep():
        rows = []
        for ef in (4, 16, 64):
            graph = CSRGraph(rmat_edges(10, ef, seed=0))
            result = run_method("distributed_ne", graph, 16, seed=0)
            rows.append({"edge_factor": ef,
                         "mem_score": mem_score(result)})
        return rows

    rows = run_once(benchmark, sweep)
    record("fig9_rmat", rows)
    print("\n" + format_table(
        ["EF", "mem score"],
        [[r["edge_factor"], r["mem_score"]] for r in rows],
        title="Figure 9(b): D.NE mem score vs edge factor"))

    scores = [r["mem_score"] for r in rows]
    assert scores[-1] < scores[0]
