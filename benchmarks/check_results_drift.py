"""Fail when a benchmark run drifted the committed result JSONs.

The benchmark suite rewrites ``benchmarks/results/*.json`` as it runs.
Every *deterministic* field in those files (replication factors, message
and byte totals, ops counters, partition counts, ...) is pinned by the
fixed seeds, so any change means a code change silently shifted recorded
results — ROADMAP's rule is that they may only be regenerated
deliberately, with a CHANGES.md note.  Wall-clock fields
(``elapsed_seconds`` and friends, and the workload-balance ratios
derived from timers) are machine noise and are ignored.

Usage (the CI ``equivalence-and-drift`` job)::

    PYTHONPATH=src python -m pytest -q benchmarks --ignore=benchmarks/perf
    python benchmarks/check_results_drift.py

Compares the working tree against ``git show HEAD:<path>`` and exits
non-zero listing every drifted (file, path, before, after) tuple.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: key suffixes measured with wall clocks (or ratios of wall clocks):
#: legitimate run-to-run noise, never pinned
TIMING_SUFFIXES = ("_seconds", "_et", "_wb")

#: exact timing-derived keys that no suffix catches.  NOTE:
#: ``selection_share_model`` (the deterministic op-count form) stays
#: pinned — only the wall-clock share is noise.
TIMING_KEYS = {"selection_share"}

#: tolerance for the remaining floats — deterministic accumulation
#: should be bit-identical, but allow last-ulp slack across BLAS builds
REL_TOL = 1e-9


def is_timing_key(key: str) -> bool:
    return key in TIMING_KEYS or key.endswith(TIMING_SUFFIXES)


def drift(old, new, path: str = "") -> list:
    """Recursively compare two JSON documents, ignoring timing keys.

    Returns a list of ``(json_path, old_value, new_value)`` tuples.
    """
    if isinstance(old, dict) and isinstance(new, dict):
        out = []
        for key in sorted(set(old) | set(new)):
            if is_timing_key(key):
                continue
            sub = f"{path}.{key}" if path else key
            if key not in old or key not in new:
                out.append((sub, old.get(key, "<absent>"),
                            new.get(key, "<absent>")))
            else:
                out.extend(drift(old[key], new[key], sub))
        return out
    if isinstance(old, list) and isinstance(new, list):
        if len(old) != len(new):
            return [(f"{path}/length", len(old), len(new))]
        return [d for i, (o, n) in enumerate(zip(old, new))
                for d in drift(o, n, f"{path}[{i}]")]
    if isinstance(old, float) and isinstance(new, float):
        scale = max(abs(old), abs(new))
        if abs(old - new) <= REL_TOL * max(scale, 1.0):
            return []
        return [(path, old, new)]
    if old != new:
        return [(path, old, new)]
    return []


def committed_version(path: Path) -> dict | list | None:
    rel = path.relative_to(Path(__file__).parent.parent).as_posix()
    proc = subprocess.run(["git", "show", f"HEAD:{rel}"],
                          capture_output=True, text=True,
                          cwd=Path(__file__).parent.parent)
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def main() -> int:
    failures = []
    for path in sorted(RESULTS_DIR.glob("*.json")):
        old = committed_version(path)
        if old is None:
            failures.append((path.name, "<not committed>", "<new file>"))
            continue
        new = json.loads(path.read_text())
        failures.extend((f"{path.name}:{where}", o, n)
                        for where, o, n in drift(old, new))
    if failures:
        # Lead with the first drifted field path: on a long list the
        # tail scrolls past, and the first diff is usually the root
        # cause (later ones are downstream of it).
        where, o, n = failures[0]
        print(f"first drift: {where}: {o!r} -> {n!r}")
        print(f"committed benchmark results drifted in {len(failures)} "
              "field(s) (regenerate deliberately + note in CHANGES.md):")
        for where, o, n in failures:
            print(f"  {where}: {o!r} -> {n!r}")
        return 1
    print(f"results drift check: {len(list(RESULTS_DIR.glob('*.json')))} "
          "files clean (timing fields ignored)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
