"""Figure 6 — iterations and replication factor vs expansion factor λ.

Paper: at 32 partitions, the number of iterations decreases roughly
linearly in λ (fewer than 10 iterations at λ=1 on every dataset), while
RF is flat from 1e-4 to 1e-1 and degrades at λ=1.  The paper picks
λ = 0.1 from this trade-off.
"""

import pytest

from repro.bench.experiments import fig6_lambda_sweep
from repro.bench.harness import format_table
from repro.graph import load_dataset

from conftest import run_once

LAMS = (1e-3, 1e-2, 1e-1, 1.0)


@pytest.mark.parametrize("dataset", ["pokec", "flickr"])
def test_fig6_lambda_sweep(benchmark, record, dataset):
    graph = load_dataset(dataset)
    rows = run_once(benchmark, fig6_lambda_sweep, graph,
                    num_partitions=32, lams=LAMS)
    record(f"fig6_{dataset}", rows)

    print("\n" + format_table(
        ["lambda", "iterations", "RF"],
        [[r["lambda"], r["iterations"], r["replication_factor"]]
         for r in rows],
        title=f"Figure 6 ({dataset} stand-in, 32 partitions)"))

    iters = [r["iterations"] for r in rows]
    rfs = [r["replication_factor"] for r in rows]
    # iterations strictly decrease as lambda grows
    assert all(b < a for a, b in zip(iters, iters[1:]))
    # lambda = 1 collapses the iteration count by orders of magnitude.
    # (The paper reports < 10 on its datasets; the flickr stand-in ends
    # with an isolated-edge tail — the same effect §7.3 describes for
    # the real Flickr — which adds a few single-edge iterations.)
    assert iters[-1] <= 30
    assert iters[-1] < iters[0] / 10
    # quality at the paper's lambda=0.1 beats the full flush
    assert rfs[2] < rfs[3]
    # and is close to the tiny-lambda quality (flat region)
    assert rfs[2] <= rfs[0] * 1.25
