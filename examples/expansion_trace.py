#!/usr/bin/env python3
"""Watch parallel expansion happen, iteration by iteration.

Runs Distributed NE with history collection enabled and renders the
per-iteration trace: how many edges each round allocates, how the
global boundary grows then drains, and when partitions hit their size
caps.  This is the raw series behind Figure 6 — rerun with different
``--lam`` values to see the iteration count collapse.

Run:  python examples/expansion_trace.py [lam]
      python examples/expansion_trace.py 1.0
"""

import sys

from repro import CSRGraph, DistributedNE, rmat_edges
from repro.bench.harness import format_table


def main(lam: float = 0.1) -> None:
    graph = CSRGraph(rmat_edges(scale=10, edge_factor=8, seed=3))
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
          f"expansion factor lambda = {lam}\n")

    result = DistributedNE(num_partitions=8, seed=3, lam=lam,
                           collect_history=True).partition(graph)
    history = result.extra["history"]

    # Print every iteration for short runs, every k-th for long ones.
    step = max(1, len(history) // 20)
    rows = []
    prev_allocated = 0
    for h in history[::step]:
        rows.append([
            h["iteration"],
            h["vertices_selected"],
            h["allocated_edges"] - prev_allocated if step == 1 else "-",
            h["allocated_edges"],
            f"{100.0 * h['allocated_edges'] / graph.num_edges:.1f}%",
            h["boundary_total"],
            h["live_partitions"],
        ])
        prev_allocated = h["allocated_edges"]

    print(format_table(
        ["iter", "selected", "newly alloc", "total alloc", "progress",
         "boundary", "live parts"],
        rows, title="Parallel expansion trace"))

    print(f"\nfinished in {result.iterations} iterations "
          f"({result.extra['cluster']['barriers']} barriers), "
          f"RF = {result.replication_factor():.3f}")
    print("try `python examples/expansion_trace.py 1.0` — the full-boundary "
          "flush finishes in a handful of iterations at some quality cost.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)
