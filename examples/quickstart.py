#!/usr/bin/env python3
"""Quickstart: partition a skewed graph with Distributed NE.

Generates an RMAT graph (the paper's synthetic workload), partitions it
into 8 parts with Distributed NE, and prints the quality metrics the
paper reports, next to the Theorem 1 upper bound and a random-hash
baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CSRGraph,
    DistributedNE,
    RandomPartitioner,
    rmat_edges,
    theorem1_upper_bound,
)


def main() -> None:
    # 1. Build a graph.  RMAT Scale12 / EF16 is a ~50k-edge skewed
    #    graph, a laptop-sized stand-in for the paper's social graphs.
    edges = rmat_edges(scale=12, edge_factor=16, seed=7)
    graph = CSRGraph(edges)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"max degree {graph.max_degree()}")

    # 2. Partition with Distributed NE (paper defaults: alpha=1.1,
    #    lambda=0.1, 2D-hash placement, one machine per partition).
    partitioner = DistributedNE(num_partitions=8, seed=7)
    result = partitioner.partition(graph)

    # 3. Inspect the result.
    print(f"\nDistributed NE ({result.num_partitions} partitions)")
    print(f"  replication factor : {result.replication_factor():.3f}")
    print(f"  edge balance       : {result.edge_balance():.3f}")
    print(f"  vertex balance     : {result.vertex_balance():.3f}")
    print(f"  iterations         : {result.iterations}")
    print(f"  elapsed            : {result.elapsed_seconds:.2f}s")
    print(f"  cluster barriers   : {result.extra['cluster']['barriers']}")
    print(f"  bytes on the wire  : {result.extra['cluster']['total_bytes']:,}")
    print(f"  mem score (B/edge) : {result.extra['mem_score']:.1f}")

    # 4. The Theorem 1 guarantee always holds.
    covered = int(np.count_nonzero(graph.degrees()))
    bound = theorem1_upper_bound(covered, graph.num_edges, 8)
    print(f"\nTheorem 1 bound      : {bound:.3f} "
          f"(measured {result.replication_factor():.3f} <= bound: "
          f"{result.replication_factor() <= bound})")

    # 5. Against random hashing, the paper's headline gap.
    baseline = RandomPartitioner(num_partitions=8, seed=7).partition(graph)
    print(f"\nrandom-hash baseline : RF {baseline.replication_factor():.3f} "
          f"({baseline.replication_factor() / result.replication_factor():.1f}x "
          f"worse than Distributed NE)")

    # 6. Per-partition edge lists are ready for a distributed engine.
    sizes = [len(result.edges_of(p)) for p in range(8)]
    print(f"partition edge counts: {sizes}")


if __name__ == "__main__":
    main()
