#!/usr/bin/env python3
"""Render the recorded benchmark results as a markdown report.

The benchmark suite (``pytest benchmarks/ --benchmark-only``) records
every experiment's rows into ``benchmarks/results/*.json``.  This
script renders them into ``benchmarks/results/REPORT.md`` — the
measured side of EXPERIMENTS.md, regenerated from an actual run.

Run:  pytest benchmarks/ --benchmark-only     # produce the JSONs
      python examples/regenerate_experiments.py
"""

import json
from pathlib import Path

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"

#: experiment id -> (heading, one-line description)
SECTIONS = {
    "fig6": ("Figure 6", "iterations and RF vs expansion factor lambda"),
    "table1": ("Table 1", "theoretical RF bounds on power-law graphs"),
    "theorem2": ("Theorem 2", "tightness of the Theorem 1 bound"),
    "fig8": ("Figure 8", "replication factor across methods"),
    "fig9": ("Figure 9", "memory (mem score, bytes/edge)"),
    "fig10": ("Figure 10(a-g)", "partitioning elapsed time"),
    "fig10h": ("Figure 10(h)", "time vs edge factor"),
    "fig10i": ("Figure 10(i)", "time vs scale"),
    "fig10j": ("Figure 10(j)", "weak scaling toward trillion edges"),
    "table4": ("Table 4", "sequential/streaming comparison"),
    "table5": ("Table 5", "application performance"),
    "table6": ("Table 6", "road networks"),
    "ablation": ("Ablations", "design-choice ablations"),
}


def _rows_to_markdown(rows) -> str:
    if not rows:
        return "_no rows_\n"
    if isinstance(rows, dict):
        rows = [rows]
    headers = list(rows[0].keys())
    out = ["| " + " | ".join(headers) + " |",
           "|" + "---|" * len(headers)]
    for row in rows:
        cells = []
        for h in headers:
            value = row.get(h, "")
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out) + "\n"


def _section_for(stem: str) -> tuple[str, str]:
    for prefix in sorted(SECTIONS, key=len, reverse=True):
        if stem.startswith(prefix):
            return SECTIONS[prefix]
    return (stem, "")


def main() -> None:
    if not RESULTS.exists():
        raise SystemExit(
            "no benchmarks/results directory — run "
            "`pytest benchmarks/ --benchmark-only` first")

    parts = ["# Measured experiment results",
             "",
             "Regenerated from `benchmarks/results/*.json` by "
             "`examples/regenerate_experiments.py`.",
             ""]
    for path in sorted(RESULTS.glob("*.json")):
        heading, description = _section_for(path.stem)
        with open(path, encoding="utf-8") as fh:
            rows = json.load(fh)
        parts.append(f"## {heading} — `{path.stem}`")
        if description:
            parts.append(f"\n_{description}_\n")
        parts.append(_rows_to_markdown(rows))

    report = RESULTS / "REPORT.md"
    report.write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {report} ({len(list(RESULTS.glob('*.json')))} experiments)")


if __name__ == "__main__":
    main()
