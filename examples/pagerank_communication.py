#!/usr/bin/env python3
"""Why partitioning quality matters: PageRank communication costs.

The §7.6 story end to end: partition one graph with the PowerLyra
method set (Random, Grid, Oblivious, Hybrid Ginger) and Distributed NE,
run SSSP / WCC / PageRank on each partitioning, and watch the
communication volume track the replication factor — with the biggest
effect on PageRank's all-vertex traffic and the smallest on SSSP's
frontier traffic.

Run:  python examples/pagerank_communication.py
"""

from repro import load_dataset
from repro.apps import pagerank, sssp, wcc
from repro.bench.harness import TABLE5_METHODS, format_table, run_method


def main() -> None:
    graph = load_dataset("pokec")
    num_partitions = 16
    print(f"pokec stand-in: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges -> {num_partitions} partitions\n")

    rows = []
    for method in TABLE5_METHODS:
        part = run_method(method, graph, num_partitions, seed=0)
        source = int(graph.edges[0, 0])
        _, s_sssp = sssp(part, source=source)
        _, s_wcc = wcc(part)
        ranks, s_pr = pagerank(part, iterations=10)
        rows.append([
            method,
            part.replication_factor(),
            s_sssp.comm_bytes / 1024,
            s_wcc.comm_bytes / 1024,
            s_pr.comm_bytes / 1024,
            s_pr.workload_balance(),
        ])

    rows.sort(key=lambda r: r[1])
    print(format_table(
        ["method", "RF", "SSSP KB", "WCC KB", "PR KB", "PR WB"],
        rows, title="Table 5-style: communication vs partition quality"))

    best, worst = rows[0], rows[-1]
    print(f"\n{best[0]} vs {worst[0]}: "
          f"PageRank traffic {worst[4] / best[4]:.1f}x lower, "
          f"SSSP traffic {worst[2] / best[2]:.1f}x lower — "
          "heavier workloads benefit more (the paper's §7.6 take-away).")


if __name__ == "__main__":
    main()
