#!/usr/bin/env python3
"""The §6 theory, empirically: bounds, tightness, and Table 1.

Three demonstrations:

1. Theorem 1 — run Distributed NE over a bag of random graphs and show
   the measured RF never exceeds (|E|+|V|+|P|)/|V|;
2. Theorem 2 — the ring+complete construction's adversarial RF/UB
   ratio marching to 1;
3. Table 1 — the closed-form power-law bounds next to the paper's
   reported numbers.

Run:  python examples/theory_playground.py
"""

import numpy as np

from repro import CSRGraph, DistributedNE, rmat_edges, theorem1_upper_bound
from repro.bench.harness import format_table
from repro.metrics.bounds import (
    PAPER_TABLE1,
    TABLE1_ALPHAS,
    table1_rows,
    theorem2_construction_rf,
)


def demo_theorem1() -> None:
    print("Theorem 1: RF <= (|E| + |V| + |P|) / |V| on every run\n")
    rows = []
    for seed in range(6):
        graph = CSRGraph(rmat_edges(9, 4 + seed, seed=seed))
        p = 4 + 2 * (seed % 3)
        result = DistributedNE(p, seed=seed).partition(graph)
        covered = int(np.count_nonzero(graph.degrees()))
        ub = theorem1_upper_bound(covered, graph.num_edges, p)
        rows.append([seed, p, result.replication_factor(), ub,
                     "yes" if result.replication_factor() <= ub else "NO"])
    print(format_table(["seed", "P", "measured RF", "bound", "holds"],
                       rows))


def demo_theorem2() -> None:
    print("\nTheorem 2: tightness on ring+complete, |P| = n(n-1)/2\n")
    rows = []
    for n in (4, 8, 16, 32, 64):
        rf, ub = theorem2_construction_rf(n)
        rows.append([n, rf, ub, rf / ub])
    print(format_table(["n", "adversarial RF", "bound", "ratio"], rows))
    print("ratio -> 1: the bound is asymptotically tight.")


def demo_table1() -> None:
    print("\nTable 1: expected bounds on power-law graphs (|P|=256)\n")
    computed = table1_rows(max_degree=200_000)
    rows = []
    for method, values in computed.items():
        rows.append([method]
                    + [f"{v:.2f}/{p:.2f}" for v, p in
                       zip(values, PAPER_TABLE1[method])])
    print(format_table(
        ["method (ours/paper)"] + [f"a={a}" for a in TABLE1_ALPHAS], rows))
    print("Distributed NE's bound beats Random and Grid at every alpha,")
    print("matching the paper's rows to ~1%.  Our DBH row is a tighter")
    print("mean-field estimate than the loose bound the paper tabulates")
    print("(see EXPERIMENTS.md), which is why it prints lower.")


if __name__ == "__main__":
    demo_theorem1()
    demo_theorem2()
    demo_table1()
