#!/usr/bin/env python3
"""Shootout: every partitioner in the registry on one dataset.

Reproduces a single Figure 8 panel interactively: pick a dataset
stand-in and a partition count, run all 14 methods, and print them
sorted by replication factor with balance and timing columns.

Run:  python examples/partitioner_shootout.py [dataset] [partitions]
      python examples/partitioner_shootout.py orkut 32
"""

import sys

from repro import PARTITIONER_REGISTRY, load_dataset
from repro.bench.harness import format_table


def main(dataset: str = "pokec", num_partitions: int = 16) -> None:
    graph = load_dataset(dataset)
    print(f"{dataset} stand-in: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges -> {num_partitions} partitions\n")

    rows = []
    for name in sorted(PARTITIONER_REGISTRY):
        result = PARTITIONER_REGISTRY[name](
            num_partitions, seed=0).partition(graph)
        rows.append([
            name,
            result.replication_factor(),
            result.edge_balance(),
            result.vertex_balance(),
            result.elapsed_seconds,
            result.iterations or "-",
        ])
    rows.sort(key=lambda r: r[1])

    print(format_table(
        ["method", "RF", "edge bal", "vertex bal", "seconds", "iters"],
        rows, title=f"Figure 8-style panel ({dataset}, "
                    f"P={num_partitions}; lower RF is better)"))

    best = rows[0][0]
    print(f"\nbest replication factor: {best}")
    print("expected shape (paper): ne <= distributed_ne < sheep/xtrapulp "
          "< oblivious/ginger < grid < random on skewed graphs")


if __name__ == "__main__":
    dataset = sys.argv[1] if len(sys.argv) > 1 else "pokec"
    partitions = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    main(dataset, partitions)
