#!/usr/bin/env python3
"""Weak scaling and the trillion-edge extrapolation (§7.4).

Runs the Figure 10(j) protocol at laptop scale — vertices per machine
fixed, machine count x4 per step — then fits the paper's cost structure
(per-machine edge work + linear coordination cost) and extrapolates to
the paper's trillion-edge configuration: RMAT Scale30, edge factor
1024, 256 machines.

The absolute prediction is a property of this Python simulator, not of
an InfiniBand cluster; what reproduces is the *shape*: linear growth in
machine count under weak scaling, and a growing vertex-selection share.

Run:  python examples/trillion_edge_planning.py
"""

from repro.bench.experiments import fig10j_weak_scaling
from repro.bench.extrapolation import (
    TRILLION_EDGE_CONFIG,
    extrapolate,
    fit_cost_model,
)
from repro.bench.harness import format_table


def main() -> None:
    print("running the weak-scaling protocol (this takes ~a minute)...\n")
    # The protocol fixes vertices per machine: 4x machines per +2 scale.
    rows = fig10j_weak_scaling(base_scale=10, edge_factor=16,
                               machine_counts=(2, 8, 32))

    print(format_table(
        ["machines", "scale", "edges", "seconds", "selection share"],
        [[r["machines"], r["scale"], r["edges"],
          r["elapsed_seconds"], r["selection_share"]] for r in rows],
        title="Figure 10(j) protocol, scaled down"))

    # Under exact weak scaling, edges/machines is constant, so the
    # per-edge and fixed coefficients are not separately identifiable.
    # Add fixed-machine runs at two scales (a Figure 10(i)-style slice)
    # to pin the per-edge term before fitting.
    from repro import CSRGraph, DistributedNE, rmat_edges
    fit_rows = list(rows)
    for scale in (10, 13):
        graph = CSRGraph(rmat_edges(scale, 16, seed=0))
        result = DistributedNE(8, seed=0).partition(graph)
        fit_rows.append({"machines": 8, "edges": graph.num_edges,
                         "elapsed_seconds": result.elapsed_seconds})

    model = fit_cost_model(fit_rows)
    print(f"\nfitted cost model: "
          f"T = {model.per_edge_per_machine:.3g} * edges/machines"
          f" + {model.per_machine:.3g} * machines + {model.fixed:.3g}")

    target = extrapolate(model)
    print(f"\ntrillion-edge configuration "
          f"(Scale30, EF1024, {TRILLION_EDGE_CONFIG['machines']} machines):")
    print(f"  edges               : {target['edges']:,}")
    print(f"  predicted (simulator): {target['predicted_minutes']:,.0f} min")
    print(f"  paper (256-node MPI) : {target['paper_minutes']} min")
    print("\nThe gap is the substrate (pure Python vs C++/InfiniBand); the")
    print("linear-in-machines shape is the reproduced claim.")


if __name__ == "__main__":
    main()
