"""Root pytest configuration.

Registers the ``--workers`` option here (the rootdir conftest is the
one place pytest guarantees ``pytest_addoption`` hooks load for every
invocation) so the execution-backend tests can be driven at different
parallelism levels — tier-1 keeps the small default, the dedicated CI
backends job passes ``--workers 4``.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--workers", type=int, default=2,
        help="worker count for the execution-backend equivalence tests "
             "(tests/test_backends.py); the CI backends job runs 4")
