"""Golden equivalence pins for the streaming-partitioner substrate.

Every baseline refactored onto :mod:`repro.core.streaming` ships two
kernels — the chunked/vectorized driver and the per-edge (or
per-group) reference loop kept verbatim — and this suite pins each
pair bit-identical: same ``assignment`` array (hence same replication
factor), same final per-partition loads, across |P| ∈ {3, 64, 65}
(dense membership, the dense/packed boundary, and auto-packed
bitsets), shuffle on/off, and HDRF's partial-degree mode.  A
conflict-flood case (many edges sharing endpoints inside one scoring
window) stresses the collision clipping and the tail walker's
staleness tracking, and a drift-prone near-tie case stresses the
loads-delta reconstruction.
"""

import numpy as np
import pytest

from repro.core.streaming import (
    DEFAULT_CHUNK,
    EdgeStreamScorer,
    StreamingState,
    run_chunked_stream,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.partitioners.fennel import FennelEdgePartitioner
from repro.partitioners.ginger import HybridGingerPartitioner
from repro.partitioners.hdrf import HDRFPartitioner
from repro.partitioners.oblivious import ObliviousPartitioner

PARTITION_COUNTS = (3, 64, 65)


def _pin(cls, graph, p, **kwargs):
    vec = cls(p, kernel="vectorized", **kwargs).partition(graph)
    ref = cls(p, kernel="python", **kwargs).partition(graph)
    assert np.array_equal(vec.assignment, ref.assignment), (
        f"{cls.name} kernels diverge at |P|={p} {kwargs}")
    assert np.array_equal(np.bincount(vec.assignment, minlength=p),
                          np.bincount(ref.assignment, minlength=p))
    return vec, ref


@pytest.fixture(scope="module")
def stream_graph() -> CSRGraph:
    """~6k-edge RMAT graph — big enough for multi-window streams."""
    return CSRGraph(rmat_edges(10, 8, seed=7))


@pytest.fixture(scope="module")
def conflict_graph() -> CSRGraph:
    """Conflict flood: a few hub vertices cover most edges, so almost
    every scoring window is dense with shared endpoints."""
    rng = np.random.default_rng(3)
    hubs = rng.integers(0, 8, size=(4000, 1))
    others = rng.integers(0, 400, size=(4000, 1))
    return CSRGraph(np.concatenate([hubs, 8 + others], axis=1))


class TestHDRF:
    @pytest.mark.parametrize("p", PARTITION_COUNTS)
    @pytest.mark.parametrize("shuffle", [True, False])
    def test_pinned(self, stream_graph, p, shuffle):
        _pin(HDRFPartitioner, stream_graph, p, seed=1, shuffle=shuffle)

    @pytest.mark.parametrize("p", PARTITION_COUNTS)
    @pytest.mark.parametrize("shuffle", [True, False])
    def test_pinned_partial_degrees(self, stream_graph, p, shuffle):
        _pin(HDRFPartitioner, stream_graph, p, seed=1, shuffle=shuffle,
             use_partial_degrees=True)

    def test_conflict_flood(self, conflict_graph):
        for p in PARTITION_COUNTS:
            _pin(HDRFPartitioner, conflict_graph, p, seed=0)

    def test_extra_metadata_matches(self, stream_graph):
        vec, ref = _pin(HDRFPartitioner, stream_graph, 8, seed=2, lam=0.7)
        assert vec.extra == ref.extra


class TestFennel:
    @pytest.mark.parametrize("p", PARTITION_COUNTS)
    @pytest.mark.parametrize("shuffle", [True, False])
    def test_pinned(self, stream_graph, p, shuffle):
        _pin(FennelEdgePartitioner, stream_graph, p, seed=1,
             shuffle=shuffle)

    def test_conflict_flood(self, conflict_graph):
        for p in PARTITION_COUNTS:
            _pin(FennelEdgePartitioner, conflict_graph, p, seed=0)

    def test_custom_gamma_pinned(self, stream_graph):
        vec, ref = _pin(FennelEdgePartitioner, stream_graph, 8, seed=1,
                        gamma=0.25, load_exponent=1.25)
        assert vec.extra == ref.extra


class TestOblivious:
    @pytest.mark.parametrize("p", PARTITION_COUNTS)
    @pytest.mark.parametrize("shuffle", [True, False])
    def test_pinned(self, stream_graph, p, shuffle):
        _pin(ObliviousPartitioner, stream_graph, p, seed=1,
             shuffle=shuffle)

    def test_conflict_flood(self, conflict_graph):
        for p in PARTITION_COUNTS:
            _pin(ObliviousPartitioner, conflict_graph, p, seed=0)


class TestGinger:
    @pytest.mark.parametrize("p", (3, 8, 64))
    def test_pinned(self, stream_graph, p):
        vec, ref = _pin(HybridGingerPartitioner, stream_graph, p, seed=1)
        assert vec.extra["moved_groups"] == ref.extra["moved_groups"]

    def test_zero_rounds_pinned(self, stream_graph):
        _pin(HybridGingerPartitioner, stream_graph, 8, seed=1, rounds=0)

    def test_many_rounds_pinned(self, stream_graph):
        _pin(HybridGingerPartitioner, stream_graph, 8, seed=1, rounds=6)


class TestStreamingState:
    def test_membership_backend_auto_switch(self):
        assert StreamingState(10, 64).member.kind == "dense"
        assert StreamingState(10, 65).member.kind == "packed"
        assert StreamingState(10, 8, membership="packed").member.kind == "packed"

    def test_forced_backends_agree(self, stream_graph):
        """Dense and packed membership must drive identical HDRF runs
        at a width both support."""

        class _Forced(HDRFPartitioner):
            membership = "dense"

            def _partition_vectorized(self, graph):
                from repro.core.streaming import run_chunked_stream
                from repro.partitioners.hdrf import _HDRFScorer
                order = self.stream_order(graph.num_edges)
                state = StreamingState(graph.num_vertices,
                                       self.num_partitions,
                                       membership=self.membership)
                scorer = _HDRFScorer(
                    state, graph.edges[order, 0], graph.edges[order, 1],
                    self._initial_degrees(graph), self.lam, self.eps,
                    self.use_partial_degrees)
                assignment = np.empty(graph.num_edges, dtype=np.int64)
                assignment[order] = run_chunked_stream(scorer)
                return self._result(graph, assignment)

        dense = _Forced(48, seed=0).partition(stream_graph)
        _ForcedPacked = type("_ForcedPacked", (_Forced,),
                             {"membership": "packed"})
        packed = _ForcedPacked(48, seed=0).partition(stream_graph)
        assert np.array_equal(dense.assignment, packed.assignment)

    def test_invalid_membership_rejected(self):
        with pytest.raises(ValueError):
            StreamingState(4, 4, membership="bogus")


class TestDriverInternals:
    def test_previous_occurrence_oracle(self):
        state = StreamingState(10, 2)
        u = np.array([0, 2, 0, 4, 2])
        v = np.array([1, 3, 5, 5, 3])

        class _S(EdgeStreamScorer):
            pass

        s = _S(state, u, v)
        # edge 2 shares 0 with edge 0; edge 3 shares 5 with edge 2;
        # edge 4 repeats edge 1's endpoints.
        assert s.prev_occ.tolist() == [-1, -1, 0, 2, 1]

    def test_reconstruct_is_exclusive_prefix(self):
        state = StreamingState(4, 3)
        state.loads[:] = (5, 0, 0)

        class _S(EdgeStreamScorer):
            pass

        s = _S(state, np.array([0, 1, 2]), np.array([1, 2, 3]))
        mat = s.reconstruct(np.array([1, 1, 2]))
        assert mat.tolist() == [[5, 0, 0], [5, 1, 0], [5, 2, 0]]

    def test_chunk_boundaries_do_not_change_results(self, stream_graph):
        """The window width is a performance knob, never a semantic
        one: tiny chunks must reproduce the default bit-for-bit."""
        from repro.partitioners.hdrf import _HDRFScorer

        outs = []
        for chunk in (7, 64, DEFAULT_CHUNK):
            part = HDRFPartitioner(16, seed=3)
            order = part.stream_order(stream_graph.num_edges)
            state = StreamingState(stream_graph.num_vertices, 16)
            scorer = _HDRFScorer(state,
                                 stream_graph.edges[order, 0],
                                 stream_graph.edges[order, 1],
                                 part._initial_degrees(stream_graph),
                                 part.lam, part.eps, False)
            outs.append(run_chunked_stream(scorer, chunk=chunk))
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[1], outs[2])
