"""Run-store round-trip tests: what goes in must come back out.

The store's contract is stronger than "SQLite works": the flat array
blobs are checksummed, the mmap sidecars must agree with the blobs,
the vertex→replica CSR must agree with a from-scratch recomputation,
and the *bulk lookup served from a reopened store* must equal the
replica sets derivable from the in-memory assignment array — for both
kernels.  The property test drives that whole chain on random graphs.
"""

import json
import os
import sqlite3

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.partitioners.hashing import DBHPartitioner as DBH
from repro.serving import (
    ChecksumError,
    LookupService,
    RunStore,
    StoreError,
    import_results,
    vertex_replica_csr,
)
from repro.serving.store import ASSIGNMENT_KINDS, SCHEMA_VERSION


def _store(tmp_path) -> RunStore:
    return RunStore(str(tmp_path / "runs.db"))


def _partition(scale=9, edge_factor=6, parts=4, seed=0):
    graph = CSRGraph(rmat_edges(scale, edge_factor, seed=seed))
    return DBH(parts, seed=seed).partition(graph)


def _expected_replicas(graph, assignment) -> dict[int, tuple]:
    """Vertex → ascending replica tuple, straight from the edges."""
    out: dict[int, set] = {v: set() for v in range(graph.num_vertices)}
    for (u, v), p in zip(graph.edges.tolist(), assignment.tolist()):
        out[u].add(int(p))
        out[v].add(int(p))
    return {v: tuple(sorted(s)) for v, s in out.items()}


# ----------------------------------------------------------------------
# the round-trip property
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(scale=st.integers(min_value=4, max_value=8),
       edge_factor=st.integers(min_value=2, max_value=8),
       parts=st.integers(min_value=2, max_value=9),
       seed=st.integers(min_value=0, max_value=2**20))
def test_store_roundtrip_property(tmp_path_factory, scale, edge_factor,
                                  parts, seed):
    """write run → reopen → bulk lookup == in-memory replica sets,
    for both kernels, bit-identical to each other."""
    tmp_path = tmp_path_factory.mktemp("store")
    graph = CSRGraph(rmat_edges(scale, edge_factor, seed=seed))
    result = DBH(parts, seed=seed).partition(graph)
    expected = _expected_replicas(graph, result.assignment)

    path = str(tmp_path / "runs.db")
    with RunStore(path) as store:
        run_id = store.add_run(result, seed=seed)

    with RunStore(path) as store:  # cold reopen — no shared state
        lookup = LookupService(store)
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        c_vec, f_vec = lookup.bulk_vertex_lookup(run_id, vertices,
                                                 kernel="vectorized")
        c_py, f_py = lookup.bulk_vertex_lookup(run_id, vertices,
                                               kernel="python")
        assert np.array_equal(c_vec, c_py)
        assert np.array_equal(f_vec, f_py)
        pos = 0
        for v in range(graph.num_vertices):
            row = tuple(f_vec[pos:pos + c_vec[v]].tolist())
            assert row == expected[v], f"vertex {v}"
            pos += int(c_vec[v])
        assert np.array_equal(
            store.load_array(run_id, "edge_assignment"),
            result.assignment)


def test_mmap_sidecar_matches_blob(tmp_path):
    with _store(tmp_path) as store:
        run_id = store.add_run(_partition())
        for kind in ASSIGNMENT_KINDS:
            blob = store.load_array(run_id, kind)
            mm = store.mmap_array(run_id, kind)
            assert not mm.flags.writeable
            assert np.array_equal(blob, mm)
        # second open pays only the header read, same contents
        assert np.array_equal(store.mmap_array(run_id, "replica_parts"),
                              store.load_array(run_id, "replica_parts"))


def test_replica_csr_matches_recomputation(tmp_path):
    result = _partition(parts=7)
    with _store(tmp_path) as store:
        run_id = store.add_run(result)
        indptr, parts = vertex_replica_csr(
            result.graph.edges, result.assignment,
            result.graph.num_vertices, result.num_partitions)
        assert np.array_equal(store.load_array(run_id, "replica_indptr"),
                              indptr)
        assert np.array_equal(store.load_array(run_id, "replica_parts"),
                              parts)


def test_metrics_row_matches_quality_module(tmp_path):
    from repro.metrics.quality import replication_factor
    result = _partition()
    with _store(tmp_path) as store:
        run_id = store.add_run(result)
        stored = store.metrics(run_id)
        assert stored["replication_factor"] == pytest.approx(
            replication_factor(result.graph, result.assignment,
                               result.num_partitions))
        assert set(stored) >= {"replication_factor", "edge_balance",
                               "vertex_balance", "vertex_cuts"}


# ----------------------------------------------------------------------
# integrity + schema discipline
# ----------------------------------------------------------------------
def test_corrupted_blob_fails_checksum(tmp_path):
    path = str(tmp_path / "runs.db")
    with RunStore(path) as store:
        run_id = store.add_run(_partition())
    conn = sqlite3.connect(path)
    blob = conn.execute(
        "SELECT data FROM assignments WHERE run_id = ? AND kind = ?",
        (run_id, "edge_assignment")).fetchone()[0]
    flipped = bytes([blob[0] ^ 0xFF]) + blob[1:]
    with conn:
        conn.execute(
            "UPDATE assignments SET data = ? WHERE run_id = ? "
            "AND kind = ?", (flipped, run_id, "edge_assignment"))
    conn.close()
    with RunStore(path) as store:
        with pytest.raises(ChecksumError):
            store.load_array(run_id, "edge_assignment")


def test_store_is_wal_mode_and_versioned(tmp_path):
    with _store(tmp_path) as store:
        assert store._conn.execute(
            "PRAGMA journal_mode").fetchone()[0] == "wal"
        assert store.schema_version() == SCHEMA_VERSION
        rows = store._conn.execute(
            "SELECT version FROM schema_migrations ORDER BY version"
        ).fetchall()
        assert [r["version"] for r in rows] == list(
            range(1, SCHEMA_VERSION + 1))


def test_newer_store_refused(tmp_path):
    path = str(tmp_path / "runs.db")
    RunStore(path).close()
    conn = sqlite3.connect(path)
    with conn:
        conn.execute(
            "INSERT INTO schema_migrations (version, applied_utc) "
            "VALUES (?, '2099-01-01T00:00:00Z')", (SCHEMA_VERSION + 1,))
    conn.close()
    with pytest.raises(StoreError, match="newer than this build"):
        RunStore(path)


def test_reopen_is_idempotent(tmp_path):
    path = str(tmp_path / "runs.db")
    with RunStore(path) as store:
        store.add_run(_partition())
    with RunStore(path) as store:
        assert store.run_count() == 1
        assert store.schema_version() == SCHEMA_VERSION


def test_unknown_run_and_missing_array(tmp_path):
    with _store(tmp_path) as store:
        with pytest.raises(StoreError):
            store.get_run(999)
        run_id = store.add_imported_run(method="hdrf",
                                        metrics={"rf": 2.0})
        with pytest.raises(StoreError, match="metrics-only"):
            store.load_array(run_id, "edge_assignment")


# ----------------------------------------------------------------------
# keyset pagination (store level)
# ----------------------------------------------------------------------
def test_boundary_pages_cover_exactly_the_boundary_set(tmp_path):
    result = _partition(parts=8)
    expected = {v: parts for v, parts
                in _expected_replicas(result.graph,
                                      result.assignment).items()
                if len(parts) >= 2}
    with _store(tmp_path) as store:
        run_id = store.add_run(result)
        seen: dict[int, tuple] = {}
        cursor = None
        while True:
            items, cursor = store.boundary_page(run_id, cursor=cursor,
                                                limit=17)
            for item in items:
                assert item["vertex"] not in seen, "duplicate page row"
                seen[item["vertex"]] = tuple(item["partitions"])
                assert item["replicas"] == len(item["partitions"])
            if cursor is None:
                break
        assert seen == expected


def test_replica_pages_cover_partition_membership(tmp_path):
    result = _partition(parts=5)
    replicas = _expected_replicas(result.graph, result.assignment)
    with _store(tmp_path) as store:
        run_id = store.add_run(result)
        for p in range(5):
            expected = sorted(v for v, ps in replicas.items()
                              if p in ps)
            got: list[int] = []
            cursor = None
            while True:
                vertices, cursor = store.replica_page(
                    run_id, p, cursor=cursor, limit=13)
                got.extend(vertices)
                if cursor is None:
                    break
            assert got == expected
        with pytest.raises(StoreError, match="has no partition"):
            store.replica_page(run_id, 5)


# ----------------------------------------------------------------------
# benchmarks/results importer
# ----------------------------------------------------------------------
def test_import_results_splits_identity_from_metrics(tmp_path):
    rows = [
        {"dataset": "pokec", "method": "hdrf", "partitions": 64,
         "seed": 3, "replication_factor": 2.5,
         "elapsed_seconds": 1.25, "note": "not-a-number"},
        {"no_method": True},
        {"dataset": "pokec", "method": "dne", "partitions": 64,
         "replication_factor": 1.9},
    ]
    src = tmp_path / "table4.json"
    src.write_text(json.dumps(rows))
    with _store(tmp_path) as store:
        run_ids = import_results(store, str(src))
        assert len(run_ids) == 2  # the method-less row is skipped
        run = store.get_run(run_ids[0])
        assert run["status"] == "imported"
        assert run["method"] == "hdrf"
        assert run["num_partitions"] == 64
        assert run["source"] == "import:table4.json"
        extra = run["extra"]
        assert extra["dataset"] == "pokec" and extra["seed"] == 3
        metrics = store.metrics(run_ids[0])
        assert metrics == {"replication_factor": 2.5,
                           "elapsed_seconds": 1.25}


def test_import_results_glob_and_real_results_dir(tmp_path):
    results_dir = os.path.join(os.path.dirname(__file__), "..",
                               "benchmarks", "results")
    if not os.path.isdir(results_dir) or not any(
            f.endswith(".json") for f in os.listdir(results_dir)):
        pytest.skip("no benchmarks/results/*.json in this checkout")
    with _store(tmp_path) as store:
        run_ids = import_results(store,
                                 os.path.join(results_dir, "*.json"))
        assert len(run_ids) == store.run_count()
        assert len(run_ids) > 0
