"""Failure-injection tests for the distributed protocol.

The paper's protocol relies on exactly-once delivery from MPI; these
tests probe what actually depends on that:

* **duplicate delivery** — the sync phase (Algorithm 2's
  `SyncVertexAllocations`) must be idempotent: (vertex, partition)
  pairs are set-unioned, so replayed messages change nothing.  We
  inject a duplicating cluster and assert the final partition is
  byte-identical.
* **dropped sync messages** — NOT safe: replicas diverge and two-hop
  allocation misses closures.  We assert the run still terminates with
  a *valid* (covering, disjoint) partition — the algorithm degrades in
  quality, not in safety — which is the property that matters for a
  simulator substrate.
"""

import numpy as np
import pytest

from repro.cluster.runtime import SimulatedCluster
from repro.core import DistributedNE
from repro.core.allocation import TAG_SYNC
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.metrics.quality import validate_assignment


class DuplicatingCluster(SimulatedCluster):
    """Delivers every matching message twice (at-least-once delivery)."""

    def __init__(self, duplicate_tag: str):
        super().__init__()
        self._duplicate_tag = duplicate_tag

    def _send(self, src, dst, tag, payload):
        super()._send(src, dst, tag, payload)
        if tag == self._duplicate_tag:
            super()._send(src, dst, tag, payload)


class DroppingCluster(SimulatedCluster):
    """Drops a deterministic fraction of matching messages."""

    def __init__(self, drop_tag: str, drop_every: int = 3):
        super().__init__()
        self._drop_tag = drop_tag
        self._drop_every = drop_every
        self._count = 0

    def _send(self, src, dst, tag, payload):
        if tag == self._drop_tag:
            self._count += 1
            if self._count % self._drop_every == 0:
                # message lost on the wire (still accounted as sent)
                self.stats.stats_for(src).record_send(0)
                return
        super()._send(src, dst, tag, payload)


class _PatchedDNE(DistributedNE):
    """DistributedNE with an injectable cluster factory."""

    cluster_factory = SimulatedCluster

    def _partition(self, graph):
        import repro.core.distributed_ne as mod
        original = mod.SimulatedCluster
        mod.SimulatedCluster = self.cluster_factory
        try:
            return super()._partition(graph)
        finally:
            mod.SimulatedCluster = original


@pytest.fixture
def graph():
    return CSRGraph(rmat_edges(9, 6, seed=5))


class TestDuplicateDelivery:
    def test_sync_is_idempotent(self, graph):
        """At-least-once delivery of sync messages must not change the
        result — the replica-set union absorbs replays."""
        baseline = DistributedNE(8, seed=0).partition(graph)

        class DNE(_PatchedDNE):
            cluster_factory = staticmethod(
                lambda: DuplicatingCluster(TAG_SYNC))

        duplicated = DNE(8, seed=0).partition(graph)
        assert np.array_equal(duplicated.assignment, baseline.assignment)
        assert duplicated.iterations == baseline.iterations


class TestDroppedSync:
    def test_terminates_with_valid_partition(self, graph):
        """Dropped syncs degrade quality, never safety: the run still
        covers every edge exactly once."""

        class DNE(_PatchedDNE):
            cluster_factory = staticmethod(
                lambda: DroppingCluster(TAG_SYNC, drop_every=4))

        result = DNE(8, seed=0, max_iterations=5000).partition(graph)
        validate_assignment(graph, result.assignment, 8)
        assert result.replication_factor() >= 1.0

    def test_quality_degrades_not_catastrophically(self, graph):
        baseline = DistributedNE(8, seed=0).partition(graph)

        class DNE(_PatchedDNE):
            cluster_factory = staticmethod(
                lambda: DroppingCluster(TAG_SYNC, drop_every=4))

        lossy = DNE(8, seed=0, max_iterations=5000).partition(graph)
        # Lost syncs lose two-hop opportunities; RF may rise but stays
        # in the same regime (not hash-level collapse).
        assert lossy.replication_factor() < 3 * baseline.replication_factor()
