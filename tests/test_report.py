"""Tests for the per-partition quality report."""

import numpy as np
import pytest

from repro.core import DistributedNE
from repro.metrics.report import format_report, partition_report
from repro.partitioners.base import EdgePartition
from repro.partitioners.hashing import RandomPartitioner


class TestPartitionReport:
    def test_aggregates_match_partition_methods(self, medium_rmat):
        part = DistributedNE(8, seed=0).partition(medium_rmat)
        report = partition_report(part)
        assert report.replication_factor == pytest.approx(
            part.replication_factor())
        assert report.edge_balance == pytest.approx(part.edge_balance())
        assert report.vertex_balance == pytest.approx(part.vertex_balance())
        assert report.num_partitions == 8

    def test_counts_sum_correctly(self, medium_rmat):
        part = RandomPartitioner(4, seed=0).partition(medium_rmat)
        report = partition_report(part)
        assert report.edge_counts.sum() == medium_rmat.num_edges
        covered = int(np.count_nonzero(medium_rmat.degrees()))
        # total vertex placements = covered + cuts
        assert report.vertex_counts.sum() == covered + report.vertex_cuts

    def test_mirror_counts(self, medium_rmat):
        """Mirrors = total placements - one master per covered vertex."""
        part = RandomPartitioner(4, seed=0).partition(medium_rmat)
        report = partition_report(part)
        covered = int(np.count_nonzero(medium_rmat.degrees()))
        assert report.mirror_counts.sum() == \
            report.vertex_counts.sum() - covered

    def test_single_partition_no_mirrors(self, triangle):
        part = RandomPartitioner(1, seed=0).partition(triangle)
        report = partition_report(part)
        assert report.mirror_counts.tolist() == [0]
        assert report.vertex_cuts == 0

    def test_manual_example(self, path4):
        """Path split per-edge: middle vertices mirrored once each."""
        part = EdgePartition(path4, 3, np.array([0, 1, 2]), method="manual")
        report = partition_report(part)
        assert report.vertex_cuts == 2
        assert report.mirror_counts.sum() == 2
        assert report.edge_counts.tolist() == [1, 1, 1]


class TestFormatReport:
    def test_contains_headline_numbers(self, small_rmat):
        part = RandomPartitioner(4, seed=0).partition(small_rmat)
        text = format_report(partition_report(part))
        assert "replication factor" in text
        assert "method=random" in text
        assert "mirrors" in text

    def test_row_truncation(self, small_rmat):
        part = RandomPartitioner(8, seed=0).partition(small_rmat)
        text = format_report(partition_report(part), max_rows=3)
        assert "(5 more)" in text
