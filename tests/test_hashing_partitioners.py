"""Unit tests for the hash-based partitioners (Random/Grid/DBH/Hybrid)."""

import numpy as np
import pytest

from repro.partitioners.hashing import (
    DBHPartitioner,
    GridPartitioner,
    HybridHashPartitioner,
    RandomPartitioner,
    grid_shape,
    splitmix64,
)
from tests.conftest import assert_valid_partition


class TestSplitmix:
    def test_deterministic(self):
        x = np.arange(100)
        assert np.array_equal(splitmix64(x, 1), splitmix64(x, 1))

    def test_seed_decorrelates(self):
        x = np.arange(100)
        assert not np.array_equal(splitmix64(x, 1), splitmix64(x, 2))

    def test_rough_uniformity(self):
        h = splitmix64(np.arange(100_000)) % np.uint64(16)
        counts = np.bincount(h.astype(np.int64), minlength=16)
        assert counts.min() > 0.8 * counts.mean()


class TestGridShape:
    def test_perfect_square(self):
        assert grid_shape(16) == (4, 4)

    def test_non_square(self):
        r, c = grid_shape(12)
        assert r * c == 12
        assert r in (3, 4)

    def test_prime(self):
        assert grid_shape(7) == (1, 7)

    def test_one(self):
        assert grid_shape(1) == (1, 1)


class TestHashPartitioners:
    @pytest.mark.parametrize("cls", [RandomPartitioner, GridPartitioner,
                                     DBHPartitioner, HybridHashPartitioner])
    def test_valid_partition(self, small_rmat, cls):
        assert_valid_partition(cls(8, seed=0).partition(small_rmat))

    @pytest.mark.parametrize("cls", [RandomPartitioner, GridPartitioner,
                                     DBHPartitioner, HybridHashPartitioner])
    def test_deterministic(self, small_rmat, cls):
        a = cls(8, seed=3).partition(small_rmat)
        b = cls(8, seed=3).partition(small_rmat)
        assert np.array_equal(a.assignment, b.assignment)

    @pytest.mark.parametrize("cls", [RandomPartitioner, GridPartitioner,
                                     DBHPartitioner])
    def test_seed_changes_assignment(self, small_rmat, cls):
        a = cls(8, seed=1).partition(small_rmat)
        b = cls(8, seed=2).partition(small_rmat)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_single_partition(self, small_rmat):
        part = RandomPartitioner(1).partition(small_rmat)
        assert (part.assignment == 0).all()
        assert part.replication_factor() == pytest.approx(1.0)

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            RandomPartitioner(0)

    def test_random_roughly_balanced(self, medium_rmat):
        part = RandomPartitioner(8, seed=0).partition(medium_rmat)
        assert part.edge_balance() < 1.15


class TestGridProperties:
    def test_replicas_confined_to_row_and_column(self, medium_rmat):
        """The 2D-hash property: every vertex's edges live in at most
        rows + cols - 1 partitions."""
        p = 16
        part = GridPartitioner(p, seed=0).partition(medium_rmat)
        rows, cols = grid_shape(p)
        limit = rows + cols - 1
        g = medium_rmat
        for v in range(0, g.num_vertices, 7):
            eids = g.incident_edge_ids(v)
            if len(eids) == 0:
                continue
            assert len(set(part.assignment[eids].tolist())) <= limit

    def test_grid_rf_below_random(self, medium_rmat):
        grid = GridPartitioner(16, seed=0).partition(medium_rmat)
        rand = RandomPartitioner(16, seed=0).partition(medium_rmat)
        assert grid.replication_factor() < rand.replication_factor()


class TestDBHProperties:
    def test_low_degree_vertices_rarely_cut(self, medium_rmat):
        """DBH: vertices of degree 1 are never replicated (their single
        edge is hashed by them unless the other endpoint has lower
        degree, and degree 1 is minimal)."""
        part = DBHPartitioner(16, seed=0).partition(medium_rmat)
        g = medium_rmat
        deg = g.degrees()
        for v in np.flatnonzero(deg == 1)[:50]:
            eids = g.incident_edge_ids(v)
            assert len(set(part.assignment[eids].tolist())) == 1

    def test_dbh_beats_random(self, medium_rmat):
        dbh = DBHPartitioner(16, seed=0).partition(medium_rmat)
        rand = RandomPartitioner(16, seed=0).partition(medium_rmat)
        assert dbh.replication_factor() < rand.replication_factor()


class TestHybridProperties:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            HybridHashPartitioner(4, threshold=0)

    def test_low_threshold_equals_scatter_everything(self, small_rmat):
        """threshold=1 means every group endpoint is 'high degree'."""
        part = HybridHashPartitioner(8, seed=0, threshold=1).partition(small_rmat)
        assert_valid_partition(part)

    def test_huge_threshold_groups_by_low_endpoint(self, small_rmat):
        """With threshold > max degree, Hybrid == group-by-low-degree-
        endpoint hashing (every edge follows its grouping vertex)."""
        part = HybridHashPartitioner(
            8, seed=0, threshold=10 ** 9).partition(small_rmat)
        g = small_rmat
        deg = g.degrees()
        u, v = g.edges[:, 0], g.edges[:, 1]
        group = np.where(deg[u] <= deg[v], u, v)
        from repro.partitioners.hashing import splitmix64 as mix
        expected = (mix(group, seed=0) % np.uint64(8)).astype(np.int64)
        assert np.array_equal(part.assignment, expected)
