"""Unit tests for repro.graph.csr.CSRGraph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import canonical_edges


class TestConstruction:
    def test_triangle_basics(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 3
        assert triangle.degree(0) == 2

    def test_empty_graph(self):
        g = CSRGraph(np.empty((0, 2), dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0

    def test_isolated_vertices_via_override(self):
        g = CSRGraph(np.array([[0, 1]]), num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_num_vertices_override_too_small(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([[0, 9]]), num_vertices=3)

    def test_defensive_canonicalisation(self):
        g = CSRGraph(np.array([[2, 0], [0, 2], [1, 1]]))
        assert g.num_edges == 1
        assert g.edge_endpoints(0) == (0, 2)


class TestAccessors:
    def test_neighbors(self, path4):
        assert sorted(path4.neighbors(1).tolist()) == [0, 2]
        assert path4.neighbors(0).tolist() == [1]

    def test_degrees_vector(self, star):
        deg = star.degrees()
        assert deg[0] == 8
        assert (deg[1:] == 1).all()

    def test_max_degree(self, star):
        assert star.max_degree() == 8

    def test_incident_edge_ids_cover_all_edges(self, triangle):
        seen = set()
        for v in range(3):
            seen.update(triangle.incident_edge_ids(v).tolist())
        assert seen == {0, 1, 2}

    def test_edge_endpoints_ordered(self, two_triangles):
        for eid in range(two_triangles.num_edges):
            u, v = two_triangles.edge_endpoints(eid)
            assert u < v

    def test_has_edge(self, path4):
        assert path4.has_edge(0, 1)
        assert path4.has_edge(1, 0)
        assert not path4.has_edge(0, 3)
        assert not path4.has_edge(0, 99)

    def test_average_degree(self, triangle):
        assert triangle.average_degree() == pytest.approx(2.0)

    def test_memory_bytes_positive(self, small_rmat):
        assert small_rmat.memory_bytes() > 0

    def test_subgraph_edges(self, triangle):
        mask = np.array([True, False, True])
        sub = triangle.subgraph_edges(mask)
        assert len(sub) == 2


class TestCSRInvariants:
    @given(st.lists(st.tuples(st.integers(0, 25), st.integers(0, 25)),
                    min_size=1, max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_degree_sum_is_twice_edges(self, pairs):
        edges = canonical_edges(np.array(pairs))
        if len(edges) == 0:
            return
        g = CSRGraph(edges)
        assert g.degrees().sum() == 2 * g.num_edges

    @given(st.lists(st.tuples(st.integers(0, 25), st.integers(0, 25)),
                    min_size=1, max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_each_edge_id_appears_twice(self, pairs):
        edges = canonical_edges(np.array(pairs))
        if len(edges) == 0:
            return
        g = CSRGraph(edges)
        counts = np.bincount(g.edge_ids, minlength=g.num_edges)
        assert (counts == 2).all()

    @given(st.lists(st.tuples(st.integers(0, 25), st.integers(0, 25)),
                    min_size=1, max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_adjacency_symmetry(self, pairs):
        edges = canonical_edges(np.array(pairs))
        if len(edges) == 0:
            return
        g = CSRGraph(edges)
        for v in range(g.num_vertices):
            for u in g.neighbors(v):
                assert v in g.neighbors(int(u))

    def test_indptr_monotone(self, small_rmat):
        assert (np.diff(small_rmat.indptr) >= 0).all()
        assert small_rmat.indptr[-1] == 2 * small_rmat.num_edges
