"""Unit tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    grid_road_network,
    powerlaw_chung_lu,
    ring_graph,
    ring_plus_complete,
    rmat_edges,
)


class TestRMAT:
    def test_deterministic_per_seed(self):
        a = rmat_edges(8, 4, seed=3)
        b = rmat_edges(8, 4, seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self):
        a = rmat_edges(8, 4, seed=3)
        b = rmat_edges(8, 4, seed=4)
        assert not np.array_equal(a, b)

    def test_vertex_ids_in_range(self):
        edges = rmat_edges(7, 4, seed=0)
        assert edges.max() < 2 ** 7
        assert edges.min() >= 0

    def test_canonical_output(self):
        edges = rmat_edges(7, 4, seed=0)
        assert (edges[:, 0] < edges[:, 1]).all()
        assert len(np.unique(edges, axis=0)) == len(edges)

    def test_edge_count_below_nominal(self):
        # dedup + self-loop removal only ever shrinks the count
        edges = rmat_edges(8, 8, seed=1)
        assert len(edges) <= 2 ** 8 * 8

    def test_skewed_degrees(self):
        g = CSRGraph(rmat_edges(10, 8, seed=0))
        deg = g.degrees()
        # RMAT hubs: max degree far above the mean.
        assert deg.max() > 10 * deg[deg > 0].mean()

    def test_no_dedup_keeps_multiplicity(self):
        raw = rmat_edges(6, 8, seed=0, dedup=False)
        assert len(raw) == 2 ** 6 * 8

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_edges(5, 2, a=0.5, b=0.3, c=0.3)


class TestClassicGraphs:
    def test_ring_size(self):
        edges = ring_graph(10)
        assert len(edges) == 10
        g = CSRGraph(edges)
        assert (g.degrees() == 2).all()

    def test_ring_offset(self):
        edges = ring_graph(5, offset=100)
        assert edges.min() == 100
        assert edges.max() == 104

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_complete_edge_count(self):
        edges = complete_graph(6)
        assert len(edges) == 15

    def test_complete_degrees(self):
        g = CSRGraph(complete_graph(5))
        assert (g.degrees() == 4).all()

    def test_complete_too_small(self):
        with pytest.raises(ValueError):
            complete_graph(1)

    def test_ring_plus_complete_structure(self):
        # n=4: K4 (4 vertices, 6 edges) + ring of 6 vertices/6 edges.
        edges = ring_plus_complete(4)
        g = CSRGraph(edges)
        assert g.num_vertices == 10
        assert g.num_edges == 12

    def test_ring_plus_complete_components_disjoint(self):
        edges = ring_plus_complete(5)
        complete_part = edges[(edges[:, 0] < 5) & (edges[:, 1] < 5)]
        ring_part = edges[(edges[:, 0] >= 5) & (edges[:, 1] >= 5)]
        assert len(complete_part) + len(ring_part) == len(edges)


class TestRandomModels:
    def test_erdos_renyi_count(self):
        edges = erdos_renyi(100, 300, seed=0)
        assert 200 < len(edges) <= 300

    def test_erdos_renyi_deterministic(self):
        assert np.array_equal(erdos_renyi(50, 100, seed=2),
                              erdos_renyi(50, 100, seed=2))

    def test_powerlaw_mean_degree_target(self):
        edges = powerlaw_chung_lu(2000, alpha=2.5, mean_degree=8, seed=0)
        g = CSRGraph(edges, num_vertices=2000)
        # dedup shrinks it, but should be within a factor ~2 of target
        assert 2.0 < g.average_degree() < 8.5

    def test_powerlaw_skew(self):
        g = CSRGraph(powerlaw_chung_lu(3000, alpha=2.2, seed=1))
        deg = g.degrees()
        assert deg.max() > 20 * np.median(deg[deg > 0])

    def test_powerlaw_bad_alpha(self):
        with pytest.raises(ValueError):
            powerlaw_chung_lu(100, alpha=0.9)


class TestRoadNetwork:
    def test_grid_size(self):
        edges = grid_road_network(5, 7, extra_fraction=0.0)
        # 5*6 horizontal + 4*7 vertical
        assert len(edges) == 5 * 6 + 4 * 7

    def test_low_mean_degree(self):
        g = CSRGraph(grid_road_network(30, 30, seed=0))
        assert 2.0 < g.average_degree() < 5.0

    def test_non_skewed(self):
        g = CSRGraph(grid_road_network(30, 30, seed=0))
        assert g.max_degree() <= 8

    def test_too_small(self):
        with pytest.raises(ValueError):
            grid_road_network(1, 5)

    def test_extras_add_edges(self):
        plain = grid_road_network(10, 10, extra_fraction=0.0, seed=0)
        extra = grid_road_network(10, 10, extra_fraction=0.5, seed=0)
        assert len(extra) > len(plain)
