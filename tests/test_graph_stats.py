"""Unit tests for repro.graph.stats."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.generators import (
    grid_road_network,
    powerlaw_chung_lu,
    ring_graph,
    rmat_edges,
)
from repro.graph.stats import (
    connected_components,
    degree_statistics,
    fit_powerlaw_alpha,
    is_skewed,
    num_connected_components,
)


class TestDegreeStatistics:
    def test_ring_is_uniform(self):
        g = CSRGraph(ring_graph(50))
        stats = degree_statistics(g)
        assert stats.mean == pytest.approx(2.0)
        assert stats.median == pytest.approx(2.0)
        assert stats.max == 2
        assert stats.gini == pytest.approx(0.0, abs=1e-9)

    def test_star_is_skewed(self, star):
        stats = degree_statistics(star)
        assert stats.max == 8
        assert stats.median == 1.0
        assert stats.gini > 0.3

    def test_empty_graph(self):
        g = CSRGraph(np.empty((0, 2), dtype=np.int64))
        stats = degree_statistics(g)
        assert stats.mean == 0.0
        assert stats.max == 0

    def test_isolated_vertices_excluded_by_default(self):
        g = CSRGraph(np.array([[0, 1]]), num_vertices=100)
        assert degree_statistics(g).mean == pytest.approx(1.0)
        with_iso = degree_statistics(g, include_isolated=True)
        assert with_iso.mean < 0.1

    def test_hub_share_bounds(self, medium_rmat):
        stats = degree_statistics(medium_rmat)
        assert 0.0 < stats.hub_share <= 1.0


class TestPowerlawFit:
    def test_recovers_generated_alpha(self):
        g = CSRGraph(powerlaw_chung_lu(20_000, alpha=2.5, seed=0))
        alpha = fit_powerlaw_alpha(g, d_min=2)
        assert 2.0 < alpha < 3.2

    def test_rmat_in_paper_range(self):
        # Dense RMAT graphs fit a flatter exponent than sparse power
        # laws; the point is the estimator lands in a sane range.
        g = CSRGraph(rmat_edges(12, 16, seed=0))
        alpha = fit_powerlaw_alpha(g, d_min=2)
        assert 1.2 < alpha < 3.5

    def test_dmin_validation(self, triangle):
        with pytest.raises(ValueError):
            fit_powerlaw_alpha(triangle, d_min=0)

    def test_no_qualifying_vertices(self, triangle):
        with pytest.raises(ValueError):
            fit_powerlaw_alpha(triangle, d_min=100)


class TestComponents:
    def test_two_triangles(self, two_triangles):
        labels = connected_components(two_triangles)
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[3] == labels[4] == labels[5] == 3
        assert num_connected_components(two_triangles) == 2

    def test_connected_graph(self, path4):
        assert num_connected_components(path4) == 1

    def test_isolated_vertices(self):
        g = CSRGraph(np.array([[0, 1]]), num_vertices=5)
        assert num_connected_components(g, ignore_isolated=True) == 1
        assert num_connected_components(g, ignore_isolated=False) == 4

    def test_empty(self):
        g = CSRGraph(np.empty((0, 2), dtype=np.int64))
        assert num_connected_components(g) == 0

    def test_labels_are_component_minima(self, two_triangles):
        labels = connected_components(two_triangles)
        assert set(labels.tolist()) == {0, 3}


class TestIsSkewed:
    def test_social_standins_skewed(self):
        assert is_skewed(load_dataset("pokec"))
        assert is_skewed(load_dataset("orkut"))

    def test_road_standins_not_skewed(self):
        assert not is_skewed(load_dataset("roadnet-pa"))

    def test_ring_not_skewed(self):
        assert not is_skewed(CSRGraph(ring_graph(100)))

    def test_grid_not_skewed(self):
        assert not is_skewed(CSRGraph(grid_road_network(20, 20, seed=0)))
