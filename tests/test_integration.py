"""End-to-end integration tests: the full pipelines a user would run.

Each test exercises several packages together: generate → partition →
measure → run applications, the way the examples and benchmarks do.
"""

import numpy as np
import pytest

from repro import (
    CSRGraph,
    DistributedNE,
    NEPartitioner,
    PARTITIONER_REGISTRY,
    RandomPartitioner,
    load_dataset,
    rmat_edges,
    theorem1_upper_bound,
)
from repro.apps import pagerank, sssp, wcc
from repro.bench.extrapolation import extrapolate, fit_cost_model
from repro.bench.harness import mem_score, run_method
from repro.graph.stats import is_skewed
from tests.conftest import assert_valid_partition


class TestFullPipeline:
    def test_generate_partition_measure(self):
        """The quickstart flow, asserted."""
        graph = CSRGraph(rmat_edges(scale=10, edge_factor=8, seed=7))
        result = DistributedNE(num_partitions=8, seed=7).partition(graph)
        assert_valid_partition(result)

        covered = int(np.count_nonzero(graph.degrees()))
        bound = theorem1_upper_bound(covered, graph.num_edges, 8)
        assert result.replication_factor() <= bound

        baseline = RandomPartitioner(8, seed=7).partition(graph)
        assert result.replication_factor() < baseline.replication_factor()

    def test_dataset_to_apps(self):
        """Dataset registry -> partitioner -> all three applications."""
        graph = load_dataset("flickr")
        assert is_skewed(graph)
        part = DistributedNE(4, seed=0).partition(graph)

        src = int(graph.edges[0, 0])
        dist, s1 = sssp(part, source=src)
        assert dist[src] == 0
        labels, s2 = wcc(part)
        assert labels.min() >= 0
        ranks, s3 = pagerank(part, iterations=5)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-6)
        assert s3.comm_bytes > s1.comm_bytes  # PR heaviest

    def test_every_registry_method_end_to_end(self, small_rmat):
        """All 14 methods: partition, validate, memory-model, and run
        one PageRank superstep on the result."""
        for name in PARTITIONER_REGISTRY:
            part = run_method(name, small_rmat, 4, seed=1)
            assert_valid_partition(part)
            assert mem_score(part) > 0
            ranks, _ = pagerank(part, iterations=1)
            assert np.isfinite(ranks).all(), name

    def test_weak_scaling_to_extrapolation(self):
        """Figure 10(j) protocol feeding the trillion-edge cost model."""
        rows = []
        for i, machines in enumerate((2, 4, 8)):
            scale = 9 + i
            graph = CSRGraph(rmat_edges(scale, 8, seed=0))
            result = DistributedNE(machines, seed=0).partition(graph)
            rows.append({
                "machines": machines,
                "edges": graph.num_edges,
                "elapsed_seconds": result.elapsed_seconds,
            })
        model = fit_cost_model(rows)
        target = extrapolate(model)
        assert target["predicted_seconds"] > 0
        assert target["machines"] == 256

    def test_dne_vs_sequential_ne_quality_parity(self, medium_rmat):
        """Table 4's shape: the distributed run stays within ~25% of
        the offline sequential reference on the same graph."""
        ne = NEPartitioner(16, seed=0).partition(medium_rmat)
        dne = DistributedNE(16, seed=0).partition(medium_rmat)
        assert dne.replication_factor() <= ne.replication_factor() * 1.3

    def test_partition_roundtrip_through_edges_of(self, small_rmat):
        """edges_of(p) reconstructs exactly the assigned edge sets."""
        part = DistributedNE(4, seed=0).partition(small_rmat)
        total = 0
        seen = set()
        for p in range(4):
            edges = part.edges_of(p)
            total += len(edges)
            for u, v in edges.tolist():
                assert (u, v) not in seen
                seen.add((u, v))
        assert total == small_rmat.num_edges


class TestCrossMethodConsistency:
    def test_all_methods_agree_on_app_results(self, small_rmat):
        """Application outputs are partition-independent: every method
        yields identical WCC labels."""
        reference = None
        for name in ("random", "grid", "ne", "distributed_ne", "sheep"):
            part = run_method(name, small_rmat, 4, seed=0)
            labels, _ = wcc(part)
            if reference is None:
                reference = labels
            else:
                assert np.array_equal(labels, reference), name

    def test_quality_ordering_stable_across_seeds(self, medium_rmat):
        """D.NE < Random holds for every seed (the paper reports <5%
        relative standard error over five seeds)."""
        for seed in range(3):
            dne = DistributedNE(8, seed=seed).partition(medium_rmat)
            rand = RandomPartitioner(8, seed=seed).partition(medium_rmat)
            assert dne.replication_factor() < rand.replication_factor()

    def test_rf_median_across_seeds_reasonable(self, medium_rmat):
        """Five-seed protocol from §7.2: median RF is stable."""
        rfs = [DistributedNE(8, seed=s).partition(medium_rmat)
               .replication_factor() for s in range(5)]
        med = float(np.median(rfs))
        assert max(rfs) - min(rfs) < 0.5 * med
