"""Tests for the FENNEL-based streaming edge partitioner."""

import numpy as np
import pytest

from repro.partitioners.fennel import FennelEdgePartitioner
from repro.partitioners.hashing import RandomPartitioner
from tests.conftest import assert_valid_partition


class TestFennel:
    def test_valid(self, small_rmat):
        assert_valid_partition(
            FennelEdgePartitioner(8, seed=0).partition(small_rmat))

    def test_deterministic(self, small_rmat):
        a = FennelEdgePartitioner(8, seed=1).partition(small_rmat)
        b = FennelEdgePartitioner(8, seed=1).partition(small_rmat)
        assert np.array_equal(a.assignment, b.assignment)

    def test_beats_random(self, medium_rmat):
        fennel = FennelEdgePartitioner(16, seed=0).partition(medium_rmat)
        rand = RandomPartitioner(16, seed=0).partition(medium_rmat)
        assert fennel.replication_factor() < rand.replication_factor()

    def test_balance_reasonable(self, medium_rmat):
        part = FennelEdgePartitioner(8, seed=0).partition(medium_rmat)
        assert part.edge_balance() < 1.8

    def test_load_exponent_validation(self):
        with pytest.raises(ValueError):
            FennelEdgePartitioner(4, load_exponent=1.0)

    def test_custom_gamma(self, small_rmat):
        part = FennelEdgePartitioner(8, seed=0, gamma=0.5).partition(small_rmat)
        assert_valid_partition(part)
        assert part.extra["gamma"] == pytest.approx(0.5)

    def test_huge_gamma_forces_balance(self, medium_rmat):
        """A dominant load penalty behaves like round-robin."""
        part = FennelEdgePartitioner(8, seed=0,
                                     gamma=10_000.0).partition(medium_rmat)
        assert part.edge_balance() < 1.05

    def test_registered(self):
        from repro.partitioners import PARTITIONER_REGISTRY
        assert "fennel" in PARTITIONER_REGISTRY

    def test_many_partitions_set_path(self, small_rmat):
        part = FennelEdgePartitioner(80, seed=0).partition(small_rmat)
        assert_valid_partition(part)
