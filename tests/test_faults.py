"""Fault-tolerance pins: supervision, checkpoint/resume, fault injection.

The headline invariant of the fault-tolerant execution plane: a run
that suffers injected worker crashes/hangs/step errors *and recovers*
(``max_retries > 0`` on the processes backend) must be bit-identical —
assignments and every message/byte/barrier/memory total — to the
fault-free run; and a checkpointed run killed mid-flight and resumed
must be bit-identical to the uninterrupted one.  Both are pinned here
for DNE and SNE.

Also covered: the documented terminal-failure state (retained inboxes
pushed back into the parent's delivered map, accounting untouched),
the ``step_timeout`` hung-worker contract, leak-free ``/dev/shm``
teardown on every failure path, and the :class:`FaultPlan` /
:class:`CheckpointStore` units.

Run with ``--workers N`` (root conftest option; default 2, the CI
chaos job runs 4).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.cluster.backends import (FaultPlan, ProcessesBackend,
                                    WorkerProgram, WorkerStepError,
                                    create_backend)
from repro.cluster.checkpoint import CheckpointMismatch, CheckpointStore
from repro.cluster.runtime import Process, SimulatedCluster
from repro.core.distributed_ne import DistributedNE
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.partitioners.sne import SNEPartitioner

#: extra keys that must survive recovery bit-for-bit (mirrors the
#: backend-equivalence pins: everything deterministic)
_PINNED_EXTRA = ("cluster", "ops_one_hop", "ops_two_hop", "mem_score",
                 "membership", "model_selection_ops",
                 "model_allocation_ops", "random_seed_requests",
                 "remote_seed_requests", "steps_executed",
                 "steps_skipped")


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return CSRGraph(rmat_edges(9, 6, seed=42))


@pytest.fixture
def workers(request) -> int:
    return request.config.getoption("--workers")


@pytest.fixture(scope="module")
def base4(graph):
    return DistributedNE(4, seed=0).partition(graph)


@pytest.fixture(scope="module")
def base64(graph):
    return DistributedNE(64, seed=0).partition(graph)


def _assert_identical(res, base):
    assert np.array_equal(res.assignment, base.assignment)
    assert res.iterations == base.iterations
    for key in _PINNED_EXTRA:
        assert res.extra[key] == base.extra[key], key


def _shm_segments() -> set:
    try:
        return {name for name in os.listdir("/dev/shm")
                if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


_HAS_DEV_SHM = os.path.isdir("/dev/shm")


# ----------------------------------------------------------------------
# Recovery equivalence: injected faults + respawn-and-retry
# ----------------------------------------------------------------------
class TestRecoveryEquivalence:
    def test_kill_recovers_bit_identical(self, graph, workers, base4):
        """A worker hard-killed mid-run (os._exit, no cleanup) is
        respawned from its snapshot and the superstep re-run — final
        result indistinguishable from the fault-free run."""
        plan = FaultPlan().kill(0, 2).kill(min(1, workers - 1), 7)
        res = DistributedNE(4, seed=0, backend="processes",
                            workers=workers, step_timeout=60,
                            max_retries=2, fault_plan=plan).partition(graph)
        _assert_identical(res, base4)
        assert not plan.pending()

    def test_hang_recovers_bit_identical(self, graph, workers, base4):
        """A hung worker trips step_timeout, is killed and respawned;
        the re-run is bit-identical."""
        plan = FaultPlan().hang(0, 3)  # sleeps far beyond the timeout
        res = DistributedNE(4, seed=0, backend="processes",
                            workers=workers, step_timeout=2,
                            max_retries=1, fault_plan=plan).partition(graph)
        _assert_identical(res, base4)
        assert not plan.pending()

    def test_raise_recovers_bit_identical_python_kernel(self, graph,
                                                        workers):
        """An injected step exception recovers the same way, and the
        machinery is kernel-agnostic (python reference kernel)."""
        base = DistributedNE(4, seed=0, kernel="python").partition(graph)
        plan = FaultPlan().raise_error(0, 4, "injected boom")
        res = DistributedNE(4, seed=0, kernel="python",
                            backend="processes", workers=workers,
                            step_timeout=60, max_retries=1,
                            fault_plan=plan).partition(graph)
        _assert_identical(res, base)
        assert not plan.pending()

    def test_kill_recovers_wide_cluster(self, graph, workers, base64):
        """|P| = 64: recovery across the packed-membership width, with
        many pids per worker riding one snapshot."""
        plan = FaultPlan().kill(workers - 1, 5)
        res = DistributedNE(64, seed=0, backend="processes",
                            workers=workers, step_timeout=60,
                            max_retries=1, fault_plan=plan).partition(graph)
        _assert_identical(res, base64)
        assert not plan.pending()

    def test_seeded_delays_are_result_neutral(self, graph, workers, base4):
        """Seeded scheduling jitter (delays on every worker/superstep
        pair) must not change any pinned total."""
        plan = FaultPlan().seeded_delays(workers, supersteps=15,
                                         max_seconds=0.02, seed=7)
        res = DistributedNE(4, seed=0, backend="processes",
                            workers=workers, step_timeout=60,
                            max_retries=1, fault_plan=plan).partition(graph)
        _assert_identical(res, base4)

    def test_sne_task_kill_retries_bit_identical(self, graph, workers):
        """SNE's whole-graph offload worker killed on attempt 0 is
        retried; the pure re-run matches the simulated result."""
        base = SNEPartitioner(4, seed=3).partition(graph)
        plan = FaultPlan().task_kill(0)
        res = SNEPartitioner(4, seed=3, backend="processes",
                             workers=workers, step_timeout=60,
                             max_retries=1, fault_plan=plan).partition(graph)
        assert np.array_equal(res.assignment, base.assignment)
        assert res.extra["state_bytes"] == base.extra["state_bytes"]
        assert not plan.pending()


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_truncated_then_resumed_matches_uninterrupted(self, graph,
                                                          tmp_path, base4):
        """Stop a checkpointing run at the max_iterations valve, resume
        it, and get the uninterrupted run bit-for-bit."""
        ckpt = str(tmp_path / "ckpt")
        trunc = DistributedNE(4, seed=0, max_iterations=3,
                              checkpoint_dir=ckpt).partition(graph)
        assert trunc.iterations == 3
        res = DistributedNE(4, seed=0, checkpoint_dir=ckpt,
                            resume=True).partition(graph)
        _assert_identical(res, base4)

    def test_crashed_processes_run_resumes_bit_identical(self, graph,
                                                         workers, tmp_path,
                                                         base4):
        """The full story: a checkpointing processes-backend run is
        killed mid-flight by an unrecovered fault (max_retries=0), then
        resumed from disk — result identical to never having crashed."""
        ckpt = str(tmp_path / "ckpt")
        plan = FaultPlan().kill(0, 12)
        with pytest.raises(WorkerStepError):
            DistributedNE(4, seed=0, backend="processes", workers=workers,
                          step_timeout=60, fault_plan=plan,
                          checkpoint_dir=ckpt).partition(graph)
        res = DistributedNE(4, seed=0, backend="processes", workers=workers,
                            checkpoint_dir=ckpt, resume=True).partition(graph)
        _assert_identical(res, base4)

    def test_resume_across_backends(self, graph, workers, tmp_path, base4):
        """State blobs are backend-neutral: checkpoint under the
        processes backend, resume on the simulated scheduler."""
        ckpt = str(tmp_path / "ckpt")
        DistributedNE(4, seed=0, max_iterations=4, backend="processes",
                      workers=workers, checkpoint_dir=ckpt).partition(graph)
        res = DistributedNE(4, seed=0, checkpoint_dir=ckpt,
                            resume=True).partition(graph)
        _assert_identical(res, base4)

    def test_resume_with_history(self, graph, tmp_path):
        """The per-iteration trace survives a checkpoint boundary."""
        ckpt = str(tmp_path / "ckpt")
        base = DistributedNE(4, seed=0, collect_history=True).partition(graph)
        DistributedNE(4, seed=0, max_iterations=3, collect_history=True,
                      checkpoint_dir=ckpt).partition(graph)
        res = DistributedNE(4, seed=0, collect_history=True,
                            checkpoint_dir=ckpt, resume=True).partition(graph)
        assert res.extra["history"] == base.extra["history"]

    def test_resume_meta_mismatch_fails_loudly(self, graph, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        DistributedNE(4, seed=0, max_iterations=2,
                      checkpoint_dir=ckpt).partition(graph)
        with pytest.raises(CheckpointMismatch, match="seed"):
            DistributedNE(4, seed=1, checkpoint_dir=ckpt,
                          resume=True).partition(graph)

    def test_resume_empty_store_is_fresh_start(self, graph, tmp_path, base4):
        res = DistributedNE(4, seed=0, checkpoint_dir=str(tmp_path / "empty"),
                            resume=True).partition(graph)
        _assert_identical(res, base4)

    def test_sne_resume_bit_identical(self, graph, tmp_path):
        """SNE snapshots at partition boundaries; resuming replays the
        remaining stream identically."""
        ckpt = str(tmp_path / "ckpt")
        base = SNEPartitioner(6, seed=3).partition(graph)
        first = SNEPartitioner(6, seed=3, checkpoint_dir=ckpt).partition(graph)
        assert np.array_equal(first.assignment, base.assignment)
        res = SNEPartitioner(6, seed=3, checkpoint_dir=ckpt,
                             resume=True).partition(graph)
        assert np.array_equal(res.assignment, base.assignment)
        assert res.extra["state_bytes"] == base.extra["state_bytes"]

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            DistributedNE(4, resume=True)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            SNEPartitioner(4, resume=True)
        with pytest.raises(ValueError, match="checkpoint_every"):
            DistributedNE(4, checkpoint_every=0)


# ----------------------------------------------------------------------
# Supervision protocol, low level
# ----------------------------------------------------------------------
class _PingProcess(Process):
    """Minimal mail-exchanging process for protocol tests."""

    def send_step(self):
        role, k = self.pid
        self.send(("ping", 1 - k), "ping", [("hello", k)])
        return k

    def recv_step(self):
        return len(self.receive("ping"))


class _SleepProcess(Process):
    def slow_step(self):
        time.sleep(5)
        return "done"


class _PingProgram(WorkerProgram):
    def build(self, owned_pids, views):
        return {pid: _PingProcess(pid) for pid in owned_pids}


class _SleepProgram(WorkerProgram):
    def build(self, owned_pids, views):
        return {pid: _SleepProcess(pid) for pid in owned_pids}


def _start_pair(backend):
    cluster = SimulatedCluster()
    pids = [("ping", 0), ("ping", 1)]
    for pid in pids:
        cluster.add_process(Process(pid))
    backend.start(cluster, _PingProgram(), {pid: k for k, pid in
                                            enumerate(pids)}, {})
    return cluster, pids


class TestSupervisionProtocol:
    def test_step_timeout_surfaces_as_worker_step_error(self):
        """Satellite: a hung worker must not hang the parent — the
        reply wait is bounded and the failure names the worker."""
        cluster = SimulatedCluster()
        pid = ("ping", 0)
        cluster.add_process(Process(pid))
        backend = ProcessesBackend(1, step_timeout=0.5)
        backend.start(cluster, _SleepProgram(), {pid: 0}, {})
        try:
            with pytest.raises(WorkerStepError,
                               match=r"timed out after 0\.5s"):
                backend.run_superstep([(pid, "slow_step", ())])
        finally:
            backend.close()
        assert not backend._procs_mp

    def test_retry_preserves_mail_and_counts_respawns(self):
        """A killed worker's retained inbox is re-shipped on retry: the
        re-run step sees the same mail and the result is complete."""
        plan = FaultPlan().kill(0, 2)
        backend = ProcessesBackend(2, step_timeout=30, max_retries=1,
                                   fault_plan=plan)
        cluster, pids = _start_pair(backend)
        try:
            backend.run_superstep([(pid, "send_step", ()) for pid in pids])
            cluster.barrier()
            out = backend.run_superstep(
                [(pid, "recv_step", ()) for pid in pids])
            assert {pid: out[pid].value for pid in pids} == \
                {pids[0]: 1, pids[1]: 1}
            assert backend.respawns == 1
            assert not plan.pending()
        finally:
            backend.close()

    def test_terminal_failure_restores_delivered_mail(self):
        """Documented atomic-superstep state: when retries are
        exhausted (here: none), every retained inbox returns to the
        parent's delivered map and accounting is untouched."""
        plan = FaultPlan().kill(0, 2)
        backend = ProcessesBackend(2, step_timeout=30, fault_plan=plan)
        cluster, pids = _start_pair(backend)
        try:
            backend.run_superstep([(pid, "send_step", ()) for pid in pids])
            cluster.barrier()
            stats_before = cluster.stats.summary()
            with pytest.raises(WorkerStepError, match="worker process died"):
                backend.run_superstep(
                    [(pid, "recv_step", ()) for pid in pids])
            for pid in pids:
                assert cluster._delivered[(pid, "ping")], pid
            assert cluster.stats.summary() == stats_before
        finally:
            backend.close()

    def test_supervision_kwargs_require_processes_backend(self):
        with pytest.raises(ValueError, match="processes"):
            DistributedNE(4, backend="threads", step_timeout=1.0)
        with pytest.raises(ValueError, match="processes"):
            DistributedNE(4, max_retries=1)
        with pytest.raises(ValueError, match="processes"):
            SNEPartitioner(4, backend="simulated", fault_plan=FaultPlan())
        with pytest.raises(ValueError, match="processes"):
            create_backend("threads", 2, fault_plan=FaultPlan())
        with pytest.raises(ValueError):
            ProcessesBackend(2, step_timeout=0)
        with pytest.raises(ValueError):
            ProcessesBackend(2, max_retries=-1)


# ----------------------------------------------------------------------
# /dev/shm leak pins
# ----------------------------------------------------------------------
@pytest.mark.skipif(not _HAS_DEV_SHM, reason="no /dev/shm on this platform")
class TestShmLeaks:
    def test_no_leak_after_normal_close(self, graph, workers):
        before = _shm_segments()
        DistributedNE(4, seed=0, backend="processes",
                      workers=workers).partition(graph)
        assert _shm_segments() - before == set()

    def test_no_leak_after_injected_kill_without_retry(self, graph,
                                                       workers):
        before = _shm_segments()
        plan = FaultPlan().kill(0, 2)
        with pytest.raises(WorkerStepError):
            DistributedNE(4, seed=0, backend="processes", workers=workers,
                          step_timeout=60,
                          fault_plan=plan).partition(graph)
        assert _shm_segments() - before == set()

    def test_no_leak_after_step_error(self, graph, workers):
        before = _shm_segments()
        plan = FaultPlan().raise_error(0, 3, "injected boom")
        with pytest.raises(WorkerStepError, match="injected boom"):
            DistributedNE(4, seed=0, backend="processes", workers=workers,
                          step_timeout=60,
                          fault_plan=plan).partition(graph)
        assert _shm_segments() - before == set()

    def test_no_leak_after_recovered_run(self, graph, workers):
        before = _shm_segments()
        plan = FaultPlan().kill(0, 2)
        DistributedNE(4, seed=0, backend="processes", workers=workers,
                      step_timeout=60, max_retries=1,
                      fault_plan=plan).partition(graph)
        assert _shm_segments() - before == set()

    def test_no_leak_after_sne_task_kill(self, graph, workers):
        before = _shm_segments()
        plan = FaultPlan().task_kill(0)
        with pytest.raises(WorkerStepError):
            SNEPartitioner(4, seed=3, backend="processes", workers=workers,
                           step_timeout=60,
                           fault_plan=plan).partition(graph)
        assert _shm_segments() - before == set()


# ----------------------------------------------------------------------
# FaultPlan unit
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_events_fire_once(self):
        plan = FaultPlan().kill(1, 4)
        assert plan.take(1, 4) == ("kill", None)
        assert plan.take(1, 4) is None
        assert plan.fired == [(1, 4, "kill", None)]
        assert len(plan) == 0

    def test_duplicate_events_rejected(self):
        plan = FaultPlan().kill(1, 4)
        with pytest.raises(ValueError, match="duplicate"):
            plan.hang(1, 4)
        plan.task_kill(0)
        with pytest.raises(ValueError, match="duplicate"):
            plan.task_raise(0)

    def test_pending_lists_unfired(self):
        plan = FaultPlan().kill(0, 1).delay(1, 2, 0.5).task_kill(3)
        assert len(plan) == 3
        plan.take(0, 1)
        pending = plan.pending()
        assert (1, 2, "delay", 0.5) in pending
        assert ("task", 3, "kill", None) in pending
        assert len(pending) == 2

    def test_task_axis_independent(self):
        plan = FaultPlan().task_raise(1, "later")
        assert plan.take_task(0) is None
        assert plan.take_task(1) == ("raise", "later")
        assert plan.fired == [("task", 1, "raise", "later")]

    def test_seeded_delays_deterministic(self):
        a = FaultPlan().seeded_delays(2, 3, 0.5, seed=9)
        b = FaultPlan().seeded_delays(2, 3, 0.5, seed=9)
        assert a.pending() == b.pending()
        assert len(a) == 6


# ----------------------------------------------------------------------
# CheckpointStore unit
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_save_load_prune(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep=2)
        for step in (1, 2, 3):
            store.save(step, {"step": step})
        assert store.steps() == [2, 3]
        assert store.load(3) == {"step": 3}
        assert store.load_latest() == {"step": 3}
        # No stray temp files from the atomic write.
        assert all(not name.endswith(".tmp")
                   for name in os.listdir(str(tmp_path)))

    def test_empty_store(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.steps() == []
        assert store.load_latest() is None
        with pytest.raises(ValueError):
            CheckpointStore(str(tmp_path), keep=0)

    def test_check_meta(self):
        snap = {"meta": {"p": 4, "seed": 0}}
        CheckpointStore.check_meta(snap, {"p": 4, "seed": 0})
        with pytest.raises(CheckpointMismatch) as excinfo:
            CheckpointStore.check_meta(snap, {"p": 8, "seed": 0})
        assert excinfo.value.mismatches == {"p": (4, 8)}
