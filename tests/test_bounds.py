"""Unit tests for repro.metrics.bounds (§6 theory)."""

import numpy as np
import pytest

from repro.metrics.bounds import (
    PAPER_TABLE1,
    TABLE1_ALPHAS,
    dbh_expected_bound_powerlaw,
    dne_expected_bound_powerlaw,
    grid_expected_bound_powerlaw,
    pareto_mean_degree,
    powerlaw_degree_pmf,
    random_expected_bound_powerlaw,
    riemann_zeta,
    table1_rows,
    theorem1_upper_bound,
    theorem2_construction_rf,
    theorem3_local_time_bound,
)

MAXD = 100_000  # plenty for 2-decimal accuracy, keeps tests fast


class TestTheorem1:
    def test_formula(self):
        assert theorem1_upper_bound(100, 500, 8) == pytest.approx(6.08)

    def test_rejects_zero_vertices(self):
        with pytest.raises(ValueError):
            theorem1_upper_bound(0, 10, 2)

    def test_bound_at_least_one_plus_density(self):
        ub = theorem1_upper_bound(1000, 5000, 16)
        assert ub > 5000 / 1000


class TestTheorem2:
    def test_ratio_tends_to_one(self):
        ratios = [theorem2_construction_rf(n)[0]
                  / theorem2_construction_rf(n)[1]
                  for n in (4, 8, 16, 64, 256)]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > 0.99

    def test_rf_below_ub(self):
        for n in (3, 5, 10):
            rf, ub = theorem2_construction_rf(n)
            assert rf < ub

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            theorem2_construction_rf(2)


class TestTheorem3:
    def test_scaling_in_units(self):
        t1 = theorem3_local_time_bound(10, 10_000, 16, 1)
        t4 = theorem3_local_time_bound(10, 10_000, 16, 4)
        assert t1 == pytest.approx(4 * t4)

    def test_monotone_in_degree(self):
        lo = theorem3_local_time_bound(5, 10_000, 16, 2)
        hi = theorem3_local_time_bound(50, 10_000, 16, 2)
        assert hi > lo

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            theorem3_local_time_bound(0, 100, 4, 1)


class TestZetaMachinery:
    def test_zeta_2(self):
        assert riemann_zeta(2.0, 100_000) == pytest.approx(
            np.pi ** 2 / 6, rel=1e-6)

    def test_zeta_diverges(self):
        with pytest.raises(ValueError):
            riemann_zeta(1.0)

    def test_pmf_normalised(self):
        pmf = powerlaw_degree_pmf(2.5, 10_000)
        assert pmf.sum() == pytest.approx(1.0)

    def test_pmf_monotone_decreasing(self):
        pmf = powerlaw_degree_pmf(2.5, 1000)
        assert (np.diff(pmf) <= 0).all()

    def test_pmf_bad_alpha(self):
        with pytest.raises(ValueError):
            powerlaw_degree_pmf(0.5)

    def test_pareto_mean(self):
        assert pareto_mean_degree(2.2) == pytest.approx(6.0)
        assert pareto_mean_degree(3.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            pareto_mean_degree(2.0)


class TestTable1:
    def test_dne_row_matches_paper(self):
        """The zeta-form bound reproduces the paper's D.NE row exactly
        (2 decimals)."""
        for alpha, expected in zip(TABLE1_ALPHAS,
                                   PAPER_TABLE1["Distributed NE"]):
            got = dne_expected_bound_powerlaw(alpha, MAXD)
            assert got == pytest.approx(expected, abs=0.01)

    def test_random_row_close_to_paper(self):
        """Pareto-mean evaluation lands within ~1.5% of the paper."""
        for alpha, expected in zip(TABLE1_ALPHAS,
                                   PAPER_TABLE1["Random (1D-hash)"]):
            got = random_expected_bound_powerlaw(alpha, 256)
            assert got == pytest.approx(expected, rel=0.02)

    def test_grid_row_reproduces_ordering(self):
        """Grid < Random at every alpha (paper's qualitative claim)."""
        for alpha in TABLE1_ALPHAS:
            grid = grid_expected_bound_powerlaw(alpha, 256)
            rand = random_expected_bound_powerlaw(alpha, 256)
            assert grid < rand

    def test_dne_beats_random_and_grid(self):
        for alpha in TABLE1_ALPHAS:
            dne = dne_expected_bound_powerlaw(alpha, MAXD)
            assert dne < grid_expected_bound_powerlaw(alpha, 256)
            assert dne < random_expected_bound_powerlaw(alpha, 256)

    def test_bounds_decrease_with_alpha(self):
        """Steeper power laws are easier — all rows shrink with alpha."""
        for fn in (lambda a: random_expected_bound_powerlaw(a, 256),
                   lambda a: grid_expected_bound_powerlaw(a, 256),
                   lambda a: dbh_expected_bound_powerlaw(a, 256),
                   lambda a: dne_expected_bound_powerlaw(a, MAXD)):
            values = [fn(a) for a in TABLE1_ALPHAS]
            assert all(b < a for a, b in zip(values, values[1:]))

    def test_discrete_model_lower_than_pareto_mean(self):
        """Jensen: plugging the mean upper-bounds the discrete
        expectation for these concave-in-d formulas."""
        for alpha in TABLE1_ALPHAS:
            disc = random_expected_bound_powerlaw(alpha, 256, "discrete",
                                                  MAXD)
            jens = random_expected_bound_powerlaw(alpha, 256, "pareto-mean")
            assert disc < jens

    def test_table1_rows_shape(self):
        rows = table1_rows(max_degree=MAXD)
        assert set(rows) == set(PAPER_TABLE1)
        assert all(len(v) == len(TABLE1_ALPHAS) for v in rows.values())

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            random_expected_bound_powerlaw(2.5, 16, model="bogus")
