"""Unit tests for repro.metrics.quality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.metrics.quality import (
    balance,
    edge_balance,
    partition_edge_counts,
    partition_vertex_counts,
    replication_factor,
    validate_assignment,
    vertex_balance,
    vertex_cut_count,
)


class TestValidate:
    def test_accepts_valid(self, triangle):
        validate_assignment(triangle, np.array([0, 1, 0]), 2)

    def test_rejects_wrong_length(self, triangle):
        with pytest.raises(ValueError):
            validate_assignment(triangle, np.array([0, 1]), 2)

    def test_rejects_out_of_range(self, triangle):
        with pytest.raises(ValueError):
            validate_assignment(triangle, np.array([0, 2, 0]), 2)
        with pytest.raises(ValueError):
            validate_assignment(triangle, np.array([0, -1, 0]), 2)


class TestVertexCounts:
    def test_single_partition_counts_covered(self, triangle):
        counts = partition_vertex_counts(triangle, np.zeros(3, np.int64), 1)
        assert counts.tolist() == [3]

    def test_split_triangle(self, triangle):
        # edges (0,1)->0, (0,2)->1, (1,2)->1
        counts = partition_vertex_counts(triangle, np.array([0, 1, 1]), 2)
        assert counts.tolist() == [2, 3]

    def test_empty_graph(self):
        g = CSRGraph(np.empty((0, 2), dtype=np.int64))
        counts = partition_vertex_counts(g, np.empty(0, np.int64), 4)
        assert counts.tolist() == [0, 0, 0, 0]


class TestReplicationFactor:
    def test_single_partition_is_one(self, small_rmat):
        rf = replication_factor(
            small_rmat, np.zeros(small_rmat.num_edges, np.int64), 1)
        assert rf == pytest.approx(1.0)

    def test_path_split_every_edge(self, path4):
        # each edge its own partition: middle vertices doubled
        rf = replication_factor(path4, np.array([0, 1, 2]), 3)
        # replicas: v0:1 v1:2 v2:2 v3:1 = 6 over 4 vertices
        assert rf == pytest.approx(6 / 4)

    def test_isolated_vertices_excluded_from_normaliser(self):
        g = CSRGraph(np.array([[0, 1]]), num_vertices=100)
        rf = replication_factor(g, np.array([0]), 2)
        assert rf == pytest.approx(1.0)

    def test_vertex_cut_count(self, path4):
        cuts = vertex_cut_count(path4, np.array([0, 1, 2]), 3)
        assert cuts == 2  # v1 and v2 duplicated once each


class TestBalance:
    def test_perfectly_balanced(self):
        assert balance([5, 5, 5]) == pytest.approx(1.0)

    def test_imbalanced(self):
        assert balance([10, 0, 0, 0, 0]) == pytest.approx(5.0)

    def test_empty_is_nan(self):
        assert np.isnan(balance([]))
        assert np.isnan(balance([0, 0]))

    def test_edge_balance(self):
        assert edge_balance(np.array([0, 0, 1, 1]), 2) == pytest.approx(1.0)
        assert edge_balance(np.array([0, 0, 0, 1]), 2) == pytest.approx(1.5)

    def test_vertex_balance(self, triangle):
        vb = vertex_balance(triangle, np.array([0, 1, 1]), 2)
        assert vb == pytest.approx(3 / 2.5)

    def test_partition_edge_counts(self):
        counts = partition_edge_counts(np.array([0, 1, 1, 3]), 4)
        assert counts.tolist() == [1, 2, 0, 1]


class TestMetricProperties:
    @given(st.integers(0, 2 ** 31 - 1), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_rf_bounds(self, seed, p):
        """1 <= RF <= min(p, max over assignments) for any assignment."""
        g = CSRGraph(rmat_edges(7, 4, seed=seed % 1000))
        if g.num_edges == 0:
            return
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, p, size=g.num_edges)
        rf = replication_factor(g, assignment, p)
        assert 1.0 <= rf <= p

    @given(st.integers(0, 2 ** 31 - 1), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_rf_equals_cuts_plus_one_normalised(self, seed, p):
        """RF * covered == cuts + covered (definition consistency)."""
        g = CSRGraph(rmat_edges(7, 4, seed=seed % 1000))
        if g.num_edges == 0:
            return
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, p, size=g.num_edges)
        covered = int(np.count_nonzero(g.degrees()))
        rf = replication_factor(g, assignment, p)
        cuts = vertex_cut_count(g, assignment, p)
        assert rf * covered == pytest.approx(cuts + covered)

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_merging_partitions_never_increases_rf(self, seed):
        """Collapsing two partitions into one can only reduce RF."""
        g = CSRGraph(rmat_edges(7, 4, seed=seed % 1000))
        if g.num_edges == 0:
            return
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, 4, size=g.num_edges)
        merged = np.where(assignment == 3, 2, assignment)
        rf_before = replication_factor(g, assignment, 4)
        rf_after = replication_factor(g, merged, 4)
        assert rf_after <= rf_before + 1e-12
