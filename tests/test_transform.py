"""Tests for graph transformations."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import ring_graph
from repro.graph.stats import num_connected_components
from repro.graph.transform import (
    cap_degrees,
    largest_connected_component,
    relabel_by_degree,
    sample_edges,
)


class TestLargestComponent:
    def test_picks_bigger_component(self, two_triangles):
        # equal components: ties resolved deterministically, 3 edges kept
        lcc = largest_connected_component(two_triangles)
        assert lcc.num_edges == 3
        assert num_connected_components(lcc) == 1

    def test_unequal_components(self):
        g = CSRGraph(np.array([[0, 1], [1, 2], [2, 3], [3, 0],  # square
                               [10, 11]]))                      # edge
        lcc = largest_connected_component(g)
        assert lcc.num_edges == 4
        assert lcc.num_vertices == 4  # ids compacted

    def test_connected_graph_unchanged_structurally(self, path4):
        lcc = largest_connected_component(path4)
        assert lcc.num_edges == path4.num_edges
        assert lcc.num_vertices == 4

    def test_empty(self):
        g = CSRGraph(np.empty((0, 2), dtype=np.int64))
        assert largest_connected_component(g).num_edges == 0


class TestSampleEdges:
    def test_fraction_one_keeps_everything(self, small_rmat):
        out = sample_edges(small_rmat, 1.0)
        assert out.num_edges == small_rmat.num_edges
        assert out.num_vertices == small_rmat.num_vertices

    def test_fraction_roughly_respected(self, medium_rmat):
        out = sample_edges(medium_rmat, 0.5, seed=0)
        assert 0.4 * medium_rmat.num_edges < out.num_edges \
            < 0.6 * medium_rmat.num_edges

    def test_invalid_fraction(self, small_rmat):
        with pytest.raises(ValueError):
            sample_edges(small_rmat, 0.0)
        with pytest.raises(ValueError):
            sample_edges(small_rmat, 1.5)

    def test_deterministic(self, small_rmat):
        a = sample_edges(small_rmat, 0.3, seed=7)
        b = sample_edges(small_rmat, 0.3, seed=7)
        assert np.array_equal(a.edges, b.edges)


class TestCapDegrees:
    def test_cap_enforced(self, star):
        out = cap_degrees(star, max_degree=3, seed=0)
        assert out.max_degree() <= 3

    def test_low_degree_graph_untouched(self):
        g = CSRGraph(ring_graph(20))
        out = cap_degrees(g, max_degree=5)
        assert out.num_edges == g.num_edges

    def test_skewed_graph_loses_hub_edges(self, medium_rmat):
        cap = 10
        out = cap_degrees(medium_rmat, max_degree=cap, seed=0)
        assert out.max_degree() <= cap
        assert out.num_edges < medium_rmat.num_edges

    def test_validation(self, star):
        with pytest.raises(ValueError):
            cap_degrees(star, max_degree=0)


class TestRelabelByDegree:
    def test_hubs_get_small_ids(self, star):
        relabeled, old_of_new = relabel_by_degree(star, descending=True)
        # the hub (old id 0, degree 8) becomes new id 0
        assert old_of_new[0] == 0
        assert relabeled.degree(0) == 8

    def test_ascending(self, star):
        relabeled, old_of_new = relabel_by_degree(star, descending=False)
        assert relabeled.degree(relabeled.num_vertices - 1) == 8

    def test_structure_preserved(self, medium_rmat):
        relabeled, old_of_new = relabel_by_degree(medium_rmat)
        assert relabeled.num_edges == medium_rmat.num_edges
        assert sorted(relabeled.degrees().tolist()) == \
            sorted(medium_rmat.degrees().tolist())

    def test_mapping_is_permutation(self, medium_rmat):
        _, old_of_new = relabel_by_degree(medium_rmat)
        assert sorted(old_of_new.tolist()) == \
            list(range(medium_rmat.num_vertices))
