"""Socket-layer tests: the asyncio server under real concurrent load.

``test_serving_api.py`` proves the dispatcher; this file proves the
framing around it — keep-alive connection reuse, 4xx for malformed
requests instead of dropped sockets, and the hard gate the CI serving
job also enforces: a concurrent bulk-lookup hammer must come back with
*zero* 5xx responses and every payload identical to the dispatcher's
answer.  The p99 floor lives in the perf smoke (this file only asserts
correctness, so it stays green on arbitrarily slow boxes).
"""

import http.client
import json
import threading

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.partitioners.hashing import DBHPartitioner as DBH
from repro.serving import BackgroundServer, RunStore, ServingAPI


@pytest.fixture
def server(tmp_path):
    store = RunStore(str(tmp_path / "runs.db"))
    graph = CSRGraph(rmat_edges(10, 6, seed=0))
    result = DBH(8, seed=0).partition(graph)
    run_id = store.add_run(result, seed=0, label="load")
    api = ServingAPI(store)
    with BackgroundServer(api) as srv:
        srv.api = api
        srv.run_id = run_id
        srv.num_vertices = graph.num_vertices
        yield srv
    store.close()


def _get(conn, path):
    conn.request("GET", path)
    resp = conn.getresponse()
    return resp.status, json.loads(resp.read())


def test_http_roundtrip_and_keep_alive(server):
    conn = http.client.HTTPConnection("127.0.0.1", server.port)
    try:
        status, doc = _get(conn, "/api/health")
        assert (status, doc) == (200, {"status": "ok"})
        # same socket, second request — keep-alive survives
        status, doc = _get(conn, f"/api/runs/{server.run_id}")
        assert status == 200 and doc["run_id"] == server.run_id
        status, doc = _get(conn, "/api/nope")
        assert status == 404 and "error" in doc
        # and the connection still works after an error response
        status, _ = _get(conn, "/api/health")
        assert status == 200
    finally:
        conn.close()


def test_http_matches_dispatcher(server):
    """The socket layer adds framing, not semantics."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port)
    try:
        body = json.dumps({"vertices": [0, 1, 2, 3], "kernel":
                           "python"}).encode()
        conn.request("POST", f"/api/runs/{server.run_id}/lookup", body,
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        over_http = (resp.status, json.loads(resp.read()))
        direct = server.api.handle(
            "POST", f"/api/runs/{server.run_id}/lookup", body=body)
        assert over_http == direct
    finally:
        conn.close()


def test_malformed_requests_get_4xx_not_hangs(server):
    import socket as socketlib
    # oversized declared body → 413, connection closed, not buffered
    conn = http.client.HTTPConnection("127.0.0.1", server.port)
    try:
        conn.putrequest("POST", f"/api/runs/{server.run_id}/lookup")
        conn.putheader("Content-Length", str(64 * 1024 * 1024))
        conn.endheaders()
        resp = conn.getresponse()
        assert resp.status == 413
    finally:
        conn.close()
    # garbage request line → 400 (not a silent drop)
    raw = socketlib.create_connection(("127.0.0.1", server.port),
                                      timeout=10)
    try:
        raw.sendall(b"COMPLETE GARBAGE\r\n\r\n")
        assert b" 400 " in raw.recv(4096)
    finally:
        raw.close()


def test_concurrent_bulk_hammer_zero_5xx(server):
    """The CI serving gate in miniature: concurrent keep-alive clients
    firing bulk lookups; every response must be 200 and correct."""
    clients, requests_each, bulk = 8, 20, 64
    rng = np.random.default_rng(0)
    batches = rng.integers(0, server.num_vertices,
                           size=(clients, requests_each, bulk))
    # one reference answer per (client, request) via the dispatcher
    failures: list = []

    def hammer(cid: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=60)
        try:
            for rid in range(requests_each):
                ids = batches[cid, rid].tolist()
                body = json.dumps({"vertices": ids}).encode()
                conn.request("POST",
                             f"/api/runs/{server.run_id}/lookup",
                             body,
                             {"Content-Type": "application/json"})
                resp = conn.getresponse()
                doc = json.loads(resp.read())
                if resp.status != 200:
                    failures.append((cid, rid, resp.status, doc))
                    return
                expected = server.api.handle(
                    "POST", f"/api/runs/{server.run_id}/lookup",
                    body=body)[1]
                if doc != expected:
                    failures.append((cid, rid, "payload-drift", None))
                    return
        except Exception as exc:  # noqa: BLE001 - collected, re-raised
            failures.append((cid, "exception", repr(exc), None))
        finally:
            conn.close()

    threads = [threading.Thread(target=hammer, args=(cid,))
               for cid in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not failures, failures[:3]


def test_server_stops_cleanly(tmp_path):
    store = RunStore(str(tmp_path / "runs.db"))
    api = ServingAPI(store)
    srv = BackgroundServer(api)
    port = srv.port
    srv.stop()
    store.close()
    with pytest.raises(OSError):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=2)
        conn.request("GET", "/api/health")
        conn.getresponse()
