"""Unit tests for the CI results-drift comparator.

The checker must ignore exactly the wall-clock fields and flag
everything else — a comparator that silently skips a deterministic
field would let recorded results rot, and one that pins a timing field
would make CI flaky.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from check_results_drift import drift, is_timing_key  # noqa: E402


class TestTimingKeys:
    def test_wall_clock_suffixes_ignored(self):
        for key in ("elapsed_seconds", "parallel_seconds", "load_seconds",
                    "sssp_et", "pr_et", "wcc_wb", "selection_share"):
            assert is_timing_key(key), key

    def test_deterministic_keys_pinned(self):
        for key in ("replication_factor", "total_bytes", "total_messages",
                    "barriers", "ops_one_hop", "selection_share_model",
                    "mem_score", "iterations", "rf", "sssp_com"):
            assert not is_timing_key(key), key


class TestDrift:
    def test_identical_documents_clean(self):
        doc = [{"rf": 2.5, "elapsed_seconds": 1.0, "edges": 100}]
        assert drift(doc, doc) == []

    def test_timing_noise_ignored(self):
        old = [{"rf": 2.5, "elapsed_seconds": 1.0, "sssp_wb": 1.02}]
        new = [{"rf": 2.5, "elapsed_seconds": 9.9, "sssp_wb": 1.07}]
        assert drift(old, new) == []

    def test_deterministic_change_flagged(self):
        old = [{"rf": 2.5, "elapsed_seconds": 1.0}]
        new = [{"rf": 2.6, "elapsed_seconds": 1.0}]
        out = drift(old, new)
        assert out == [("[0].rf", 2.5, 2.6)]

    def test_float_last_ulp_tolerated(self):
        old = {"mem_score": 40.00000000000001}
        new = {"mem_score": 40.0}
        assert drift(old, new) == []

    def test_added_and_removed_keys_flagged(self):
        out = drift({"a": 1}, {"a": 1, "b": 2})
        assert out == [("b", "<absent>", 2)]

    def test_length_change_flagged(self):
        out = drift([{"a": 1}], [{"a": 1}, {"a": 2}])
        assert out == [("/length", 1, 2)]

    def test_nested_path_reported(self):
        old = {"cluster": {"total_bytes": 10, "barriers": 3}}
        new = {"cluster": {"total_bytes": 11, "barriers": 3}}
        assert drift(old, new) == [("cluster.total_bytes", 10, 11)]
