"""Unit tests for sequential NE and streaming SNE."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import ring_graph
from repro.partitioners.hashing import RandomPartitioner
from repro.partitioners.hdrf import HDRFPartitioner
from repro.partitioners.ne import ExpansionState, NEPartitioner
from repro.partitioners.sne import SNEPartitioner
from tests.conftest import assert_valid_partition


class TestExpansionState:
    def test_initial_rest_degree(self, triangle):
        state = ExpansionState(triangle, np.random.default_rng(0))
        assert state.rest_degree.tolist() == [2, 2, 2]
        assert state.unallocated == 3

    def test_allocate_edge_updates_degrees(self, triangle):
        state = ExpansionState(triangle, np.random.default_rng(0))
        state.allocate_edge(0, 0)  # edge (0,1)
        assert state.rest_degree[0] == 1
        assert state.rest_degree[1] == 1
        assert state.unallocated == 2

    def test_boundary_pop_min(self, path4):
        state = ExpansionState(path4, np.random.default_rng(0))
        state.push_boundary(0)  # degree 1
        state.push_boundary(1)  # degree 2
        assert state.pop_min_boundary() == 0

    def test_boundary_skips_exhausted(self, path4):
        state = ExpansionState(path4, np.random.default_rng(0))
        state.push_boundary(0)
        state.allocate_edge(0, 0)  # (0,1): vertex 0 now has Drest 0
        assert state.pop_min_boundary() is None

    def test_boundary_reorders_stale_scores(self, star):
        state = ExpansionState(star, np.random.default_rng(0))
        state.push_boundary(0)  # hub, Drest 8
        state.push_boundary(1)  # leaf, Drest 1
        # Allocate most hub edges: hub score drops to 1 but entry is stale.
        for eid in range(7):
            state.allocate_edge(eid, 0)
        popped = state.pop_min_boundary()
        assert popped in (0, 8)  # leaf 8's edge or hub — both Drest 1 now

    def test_random_seed_vertex_skips_done(self, path4):
        state = ExpansionState(path4, np.random.default_rng(0))
        for eid in range(3):
            state.allocate_edge(eid, 0)
        assert state.random_seed_vertex() is None

    def test_expand_vertex_allocates_one_hop(self, star):
        state = ExpansionState(star, np.random.default_rng(0))
        state.begin_partition()
        allocated = state.expand_vertex(0, 0, limit=100, allocated=0)
        assert allocated == 8
        assert state.unallocated == 0

    def test_expand_vertex_respects_limit(self, star):
        state = ExpansionState(star, np.random.default_rng(0))
        state.begin_partition()
        allocated = state.expand_vertex(0, 0, limit=3, allocated=0)
        assert allocated == 3
        assert state.unallocated == 5

    def test_two_hop_rule_allocates_closure(self, triangle):
        """Expanding vertex 0 of K3 allocates (0,1),(0,2) one-hop and
        (1,2) via Condition 5."""
        state = ExpansionState(triangle, np.random.default_rng(0))
        state.begin_partition()
        allocated = state.expand_vertex(0, 0, limit=100, allocated=0)
        assert allocated == 3
        assert state.unallocated == 0


class TestNEPartitioner:
    def test_valid(self, small_rmat):
        assert_valid_partition(NEPartitioner(8, seed=0).partition(small_rmat))

    def test_deterministic(self, small_rmat):
        a = NEPartitioner(8, seed=1).partition(small_rmat)
        b = NEPartitioner(8, seed=1).partition(small_rmat)
        assert np.array_equal(a.assignment, b.assignment)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            NEPartitioner(4, alpha=0.9)

    def test_balance_respects_alpha(self, medium_rmat):
        part = NEPartitioner(8, seed=0, alpha=1.1).partition(medium_rmat)
        limit = 1.1 * medium_rmat.num_edges / 8
        counts = np.bincount(part.assignment, minlength=8)
        # +max-degree slack: the final expand step may overshoot by one
        # vertex's edges before the cap check, as in the paper.
        assert counts.max() <= limit + medium_rmat.max_degree()

    def test_quality_beats_hash_and_streaming(self, medium_rmat):
        """NE is the quality reference point (Table 4)."""
        ne = NEPartitioner(16, seed=0).partition(medium_rmat)
        rand = RandomPartitioner(16, seed=0).partition(medium_rmat)
        hdrf = HDRFPartitioner(16, seed=0).partition(medium_rmat)
        assert ne.replication_factor() < rand.replication_factor()
        assert ne.replication_factor() < hdrf.replication_factor()

    def test_ring_is_nearly_perfect(self):
        """Expansion on a ring yields contiguous arcs: RF ~ 1."""
        g = CSRGraph(ring_graph(64))
        part = NEPartitioner(4, seed=0).partition(g)
        assert part.replication_factor() < 1.25

    def test_single_partition(self, small_rmat):
        part = NEPartitioner(1, seed=0).partition(small_rmat)
        assert part.replication_factor() == pytest.approx(1.0)


class TestSNEPartitioner:
    def test_valid(self, small_rmat):
        assert_valid_partition(SNEPartitioner(8, seed=0).partition(small_rmat))

    def test_deterministic(self, small_rmat):
        a = SNEPartitioner(8, seed=1).partition(small_rmat)
        b = SNEPartitioner(8, seed=1).partition(small_rmat)
        assert np.array_equal(a.assignment, b.assignment)

    def test_buffer_factor_validation(self):
        with pytest.raises(ValueError):
            SNEPartitioner(4, buffer_factor=0)

    def test_quality_between_hash_and_ne(self, medium_rmat):
        """Table 4's shape: SNE lands in NE's quality class (within
        ~30% either way — at laptop scale the two can swap by seed) and
        far below random hashing."""
        ne = NEPartitioner(16, seed=0).partition(medium_rmat)
        sne = SNEPartitioner(16, seed=0).partition(medium_rmat)
        rand = RandomPartitioner(16, seed=0).partition(medium_rmat)
        ratio = sne.replication_factor() / ne.replication_factor()
        assert 0.7 < ratio < 1.3
        assert sne.replication_factor() < 0.6 * rand.replication_factor()

    def test_huge_buffer_approaches_ne_quality(self, medium_rmat):
        """With the whole graph buffered, SNE sees what NE sees."""
        sne = SNEPartitioner(8, seed=0, buffer_factor=100.0,
                             shuffle=False).partition(medium_rmat)
        ne = NEPartitioner(8, seed=0).partition(medium_rmat)
        assert sne.replication_factor() < ne.replication_factor() * 1.5

    def test_tiny_buffer_still_covers(self, small_rmat):
        part = SNEPartitioner(8, seed=0, buffer_factor=0.1).partition(small_rmat)
        assert_valid_partition(part)
