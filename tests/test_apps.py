"""Tests for the distributed application engine and the three apps."""

import numpy as np
import pytest

from repro.apps import DistributedGraphEngine, pagerank, sssp, wcc
from repro.core import DistributedNE
from repro.graph.csr import CSRGraph
from repro.graph.generators import ring_graph
from repro.partitioners.hashing import RandomPartitioner


@pytest.fixture
def random_part(medium_rmat):
    return RandomPartitioner(8, seed=0).partition(medium_rmat)


@pytest.fixture
def dne_part(medium_rmat):
    return DistributedNE(8, seed=0).partition(medium_rmat)


class TestEngineConstruction:
    def test_masters_are_replicas(self, random_part):
        engine = DistributedGraphEngine(random_part)
        g = random_part.graph
        for v in range(0, g.num_vertices, 13):
            if g.degree(v) == 0:
                assert engine.master[v] == -1
            else:
                assert engine.master[v] in engine.replica_lists[v]

    def test_replica_counts_match_partition(self, random_part):
        engine = DistributedGraphEngine(random_part)
        # replica count == number of partitions covering the vertex
        total = sum(len(r) for r in engine.replica_lists)
        assert total == int(engine.replica_count.sum())

    def test_local_edges_cover_graph(self, random_part):
        engine = DistributedGraphEngine(random_part)
        total = sum(len(s) for s in engine.local_src)
        assert total == random_part.graph.num_edges


class TestSSSP:
    def test_distances_on_path(self, path4):
        part = RandomPartitioner(2, seed=0).partition(path4)
        dist, stats = sssp(part, source=0)
        assert dist.tolist() == [0, 1, 2, 3]
        assert stats.supersteps >= 3

    def test_unreachable_is_inf(self, two_triangles):
        part = RandomPartitioner(2, seed=0).partition(two_triangles)
        dist, _ = sssp(part, source=0)
        assert np.isinf(dist[3:]).all()
        assert np.isfinite(dist[:3]).all()

    def test_source_validation(self, triangle):
        part = RandomPartitioner(2, seed=0).partition(triangle)
        with pytest.raises(ValueError):
            sssp(part, source=99)

    def test_partition_invariance(self, medium_rmat):
        """Distances must not depend on the partitioning."""
        pa = RandomPartitioner(8, seed=0).partition(medium_rmat)
        pb = DistributedNE(8, seed=0).partition(medium_rmat)
        src = int(medium_rmat.edges[0, 0])
        da, _ = sssp(pa, source=src)
        db, _ = sssp(pb, source=src)
        assert np.array_equal(da, db)


class TestWCC:
    def test_two_components(self, two_triangles):
        part = RandomPartitioner(2, seed=0).partition(two_triangles)
        labels, _ = wcc(part)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_labels_are_component_minima(self, two_triangles):
        part = RandomPartitioner(2, seed=0).partition(two_triangles)
        labels, _ = wcc(part)
        assert labels[0] == 0
        assert labels[3] == 3

    def test_partition_invariance(self, medium_rmat):
        pa = RandomPartitioner(8, seed=0).partition(medium_rmat)
        pb = DistributedNE(8, seed=0).partition(medium_rmat)
        la, _ = wcc(pa)
        lb, _ = wcc(pb)
        assert np.array_equal(la, lb)


class TestPageRank:
    def test_normalised(self, random_part):
        ranks, _ = pagerank(random_part, iterations=30)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-6)

    def test_ring_is_uniform(self):
        g = CSRGraph(ring_graph(32))
        part = RandomPartitioner(4, seed=0).partition(g)
        ranks, _ = pagerank(part, iterations=50)
        assert np.allclose(ranks, 1.0 / 32, atol=1e-6)

    def test_hub_ranks_highest(self, star):
        part = RandomPartitioner(2, seed=0).partition(star)
        ranks, _ = pagerank(part, iterations=30)
        assert ranks[0] == ranks.max()

    def test_iteration_validation(self, random_part):
        with pytest.raises(ValueError):
            pagerank(random_part, iterations=0)

    def test_partition_invariance(self, medium_rmat):
        pa = RandomPartitioner(8, seed=0).partition(medium_rmat)
        pb = DistributedNE(8, seed=0).partition(medium_rmat)
        ra, _ = pagerank(pa, iterations=10)
        rb, _ = pagerank(pb, iterations=10)
        assert np.allclose(ra, rb, atol=1e-9)


class TestCommunicationAccounting:
    def test_better_partition_less_traffic(self, random_part, dne_part):
        """Table 5's core result: lower RF => lower COM, on every app."""
        for app, kwargs in ((sssp, {"source": 0}),
                            (wcc, {}),
                            (pagerank, {"iterations": 5})):
            _, s_rand = app(random_part, **kwargs)
            _, s_dne = app(dne_part, **kwargs)
            assert s_dne.comm_bytes < s_rand.comm_bytes, app.__name__

    def test_pagerank_heaviest(self, random_part):
        """Workload ordering from §7.6: SSSP < WCC < PR (per-superstep
        normalised total traffic)."""
        _, s1 = sssp(random_part, source=int(random_part.graph.edges[0, 0]))
        _, s2 = wcc(random_part)
        _, s3 = pagerank(random_part, iterations=10)
        assert s1.comm_bytes < s3.comm_bytes
        assert s2.comm_bytes < s3.comm_bytes

    def test_workload_balance_finite(self, dne_part):
        _, stats = wcc(dne_part)
        wb = stats.workload_balance()
        assert 1.0 <= wb < 10.0

    def test_stats_fields(self, random_part):
        _, stats = sssp(random_part, source=0)
        assert stats.supersteps > 0
        assert stats.elapsed_seconds > 0
        assert len(stats.local_seconds) == random_part.num_partitions
