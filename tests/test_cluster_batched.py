"""Barrier-batched message plane: accounting, draining, and the
central payload-contract pins.

The batched plane must be observationally equivalent to per-message
``send`` everywhere the accounting model looks: identical per-process
message/byte totals (bulk pricing = sum of per-payload
``payload_nbytes`` prices), identical mailbox contents, and barrier
semantics unchanged (``flush`` drains without counting).  These tests
pin that contract centrally so the PR-2 byte-equality pins cannot rot
silently under coalescing.
"""

import numpy as np
import pytest

from repro.cluster.accounting import payload_nbytes
from repro.cluster.runtime import Process, SimulatedCluster, pair_array

#: payload shapes spanning the whole contract: ndarray pair batches,
#: reference tuple lists, id arrays, scalars, and control messages
PAYLOADS = [
    None,
    7,
    [(1, 2), (3, 4), (5, 6)],
    [],
    np.arange(8, dtype=np.int64).reshape(4, 2),
    np.empty((0, 2), dtype=np.int64),
    np.arange(5, dtype=np.int64),
]


def _cluster(pids):
    cluster = SimulatedCluster()
    procs = [cluster.add_process(Process(pid)) for pid in pids]
    return cluster, procs


def _totals(cluster, pids):
    return {
        pid: (s.messages_sent, s.bytes_sent,
              s.messages_received, s.bytes_received)
        for pid in pids
        for s in [cluster.stats.stats_for(pid)]
    }


class TestBatchedAccountingEquality:
    """Central pin: batched == eager accounting for every payload shape."""

    @pytest.mark.parametrize("src,dst", [
        (("alloc", 0), ("alloc", 1)),       # cross-machine tuples
        (("expansion", 2), ("alloc", 2)),   # co-located (free on wire)
        ("a", "b"),                         # plain ids
        ("solo", "solo"),                   # self-send
    ])
    def test_totals_match_eager_send(self, src, dst):
        pids = [src] if src == dst else [src, dst]
        eager, (ep, *_rest) = _cluster(pids)
        batched, (bp, *_rest) = _cluster(pids)
        for payload in PAYLOADS:
            ep.send(dst, "t", payload)
            bp.send_batched(dst, "t", payload)
        batched.barrier()
        eager.barrier()
        assert _totals(eager, pids) == _totals(batched, pids)
        # Same mailbox contents in the same order.
        edel = eager.process(dst).receive("t")
        bdel = batched.process(dst).receive("t")
        assert len(edel) == len(bdel) == len(PAYLOADS)
        for (es, epay), (bs, bpay) in zip(edel, bdel):
            assert es == bs
            if isinstance(epay, np.ndarray):
                assert np.array_equal(epay, bpay)
            else:
                assert epay == bpay

    def test_bulk_price_is_sum_of_payload_nbytes(self):
        """One pricing pass per (src, dst, tag) buffer must equal the
        per-payload ``payload_nbytes`` sum — ndarray fast path
        included."""
        cluster, (a, b) = _cluster([("alloc", 0), ("alloc", 1)])
        for payload in PAYLOADS:
            a.send_batched(b.pid, "t", payload)
        cluster.barrier()
        expected = sum(payload_nbytes(p) for p in PAYLOADS)
        assert cluster.stats.stats_for(a.pid).bytes_sent == expected
        assert cluster.stats.stats_for(b.pid).bytes_received == expected
        assert cluster.stats.stats_for(a.pid).messages_sent == len(PAYLOADS)

    def test_one_bulk_pass_per_communication_edge(self):
        """The coalescing invariant: k messages on one (src, dst, tag)
        edge cost one bulk accounting pass, not k."""
        cluster, (a, b, c) = _cluster([("x", 0), ("x", 1), ("x", 2)])
        for _ in range(5):
            a.send_batched(b.pid, "t", 1)
        a.send_batched(c.pid, "t", 1)
        a.send_batched(c.pid, "u", 1)
        cluster.barrier()
        sa = cluster.stats.stats_for(a.pid)
        assert sa.messages_sent == 7
        assert sa.send_batches == 3      # (a,b,t), (a,c,t), (a,c,u)
        assert cluster.stats.stats_for(b.pid).receive_batches == 1
        assert cluster.stats.total_send_batches == 3

    def test_unknown_destination_raises_at_first_send(self):
        cluster, (a,) = _cluster(["only"])
        with pytest.raises(KeyError):
            a.send_batched("nope", "t", 1)


class TestPairArrayContract:
    """pair_array is the single normalisation point of the payload
    contract: both wire forms of a k-pair batch normalise to the same
    (k, 2) int64 array and price to 16k bytes."""

    @pytest.mark.parametrize("pairs", [
        [], [(3, 1)], [(0, 0), (5, 2), (5, 2), (7, 1)],
    ])
    def test_forms_normalise_identically_and_price_16k(self, pairs):
        as_list = [tuple(p) for p in pairs]
        as_array = np.array(pairs, dtype=np.int64).reshape(-1, 2)
        norm_list = pair_array(as_list)
        norm_array = pair_array(as_array)
        assert norm_list.shape == norm_array.shape == (len(pairs), 2)
        assert norm_list.dtype == norm_array.dtype == np.int64
        assert np.array_equal(norm_list, norm_array)
        assert payload_nbytes(as_list) == payload_nbytes(as_array) \
            == 16 * len(pairs)

    def test_ndarray_passthrough_no_copy(self):
        arr = np.arange(6, dtype=np.int64).reshape(3, 2)
        assert pair_array(arr) is arr

    def test_batched_wire_forms_price_identically(self):
        """End-to-end: the reference's tuple list and the vectorized
        kernel's ndarray batch drive identical totals through the
        batched plane."""
        pairs = [(9, 0), (4, 2), (11, 1)]
        totals = {}
        for form in ("list", "array"):
            cluster, (a, b) = _cluster([("alloc", 0), ("alloc", 1)])
            payload = (list(pairs) if form == "list"
                       else np.array(pairs, dtype=np.int64))
            a.send_batched(b.pid, "t", payload)
            cluster.barrier()
            totals[form] = _totals(cluster, [a.pid, b.pid])
        assert totals["list"] == totals["array"]


class TestFlushVersusBarrier:
    def test_flush_drains_batched_without_counting_barrier(self):
        cluster, (a, b) = _cluster([("alloc", 0), ("alloc", 1)])
        a.send(b.pid, "eager", 1)
        a.send_batched(b.pid, "bulk", np.arange(4, dtype=np.int64))
        cluster.flush()
        assert cluster.stats.barriers == 0
        # Both planes drained and accounted.
        assert b.receive("eager") == [(a.pid, 1)]
        bulk = b.receive("bulk")
        assert len(bulk) == 1 and bulk[0][0] == a.pid
        assert not cluster._in_flight and not cluster._batched
        assert cluster.stats.stats_for(a.pid).messages_sent == 2
        assert cluster.stats.stats_for(a.pid).bytes_sent == 8 + 32

    def test_barrier_counts_and_drains_both_planes(self):
        cluster, (a, b) = _cluster([("alloc", 0), ("alloc", 1)])
        a.send_batched(b.pid, "t", 1)
        cluster.barrier()
        assert cluster.stats.barriers == 1
        assert not cluster._batched
        assert b.receive("t") == [(a.pid, 1)]

    def test_accounting_deferred_until_drain(self):
        """Batched sends are invisible to the stats until the next
        barrier/flush prices the buffers."""
        cluster, (a, b) = _cluster([("alloc", 0), ("alloc", 1)])
        a.send_batched(b.pid, "t", [(1, 2)])
        stats = cluster.stats.stats_for(a.pid)
        assert stats.messages_sent == 0 and stats.bytes_sent == 0
        cluster.flush()
        assert stats.messages_sent == 1 and stats.bytes_sent == 16

    def test_repeated_drains_idempotent(self):
        cluster, (a, b) = _cluster([("alloc", 0), ("alloc", 1)])
        a.send_batched(b.pid, "t", 1)
        cluster.flush()
        cluster.flush()
        cluster.barrier()
        s = cluster.stats.stats_for(a.pid)
        assert s.messages_sent == 1
        assert cluster.stats.barriers == 1


class TestDeliveryOrder:
    def test_eager_before_batched_then_buffer_first_send_order(self):
        cluster, (a, b, c) = _cluster([("x", 0), ("x", 1), ("x", 2)])
        b.send_batched(c.pid, "t", "b1")
        a.send(c.pid, "t", "a-eager")
        a.send_batched(c.pid, "t", "a1")
        b.send_batched(c.pid, "t", "b2")
        cluster.barrier()
        got = c.receive("t")
        # Eager plane first (send order), then buffers in first-send
        # order with append order inside each buffer.
        assert got == [(a.pid, "a-eager"), (b.pid, "b1"), (b.pid, "b2"),
                       (a.pid, "a1")]

    def test_single_message_per_destination_order_matches_eager(self):
        """The DNE pattern — at most one message per (dst, tag) per
        window — observes exactly the eager plane's delivery order."""
        pids = [("alloc", k) for k in range(4)]
        orders = {}
        for plane in ("send", "send_batched"):
            cluster, procs = _cluster(pids)
            for p in procs[1:]:
                getattr(p, plane)(procs[0].pid, "t", p.pid)
            cluster.barrier()
            orders[plane] = procs[0].receive("t")
        assert orders["send"] == orders["send_batched"]
