"""Unit tests for the allocation process (Algorithms 2-3)."""

import numpy as np
import pytest

from repro.cluster.runtime import SimulatedCluster
from repro.core.allocation import (
    TAG_BOUNDARY,
    TAG_EDGES,
    TAG_SELECT,
    AllocationProcess,
)
from repro.core.hash2d import Hash2DPlacement
from repro.graph.csr import CSRGraph


class _Sink:
    """Minimal expansion-side stand-in to receive allocator output."""

    def __init__(self, cluster, partition):
        from repro.cluster.runtime import Process
        self.proc = cluster.add_process(Process(("expansion", partition)))

    def boundary(self):
        out = {}
        for _, payload in self.proc.receive(TAG_BOUNDARY):
            for v, d in payload:
                out[v] = out.get(v, 0) + d
        return out

    def edges(self):
        out = []
        for _, payload in self.proc.receive(TAG_EDGES):
            out.extend(np.asarray(payload).tolist())
        return out


@pytest.fixture(params=["vectorized", "python"])
def kernel(request):
    """Every allocation test runs against both kernels."""
    return request.param


def _single_proc_setup(graph, num_partitions=2, two_hop=True,
                       kernel="vectorized"):
    """One allocation process owning the whole graph."""
    cluster = SimulatedCluster()
    placement = Hash2DPlacement(1, seed=0)
    alloc = cluster.add_process(AllocationProcess(
        0, graph, np.arange(graph.num_edges), placement, two_hop=two_hop,
        kernel=kernel))
    sinks = [_Sink(cluster, p) for p in range(num_partitions)]
    return cluster, alloc, sinks


def _drive(cluster, alloc, selections):
    """Send selections, run both allocator phases with barriers."""
    from repro.cluster.runtime import Process
    driver = cluster.process(("expansion", 0))
    driver.send(alloc.pid, TAG_SELECT, selections)
    cluster.barrier()
    alloc.one_hop_and_sync()
    cluster.barrier()
    alloc.two_hop_and_report()
    cluster.barrier()


class TestOneHopAllocation:
    def test_allocates_selected_vertex_edges(self, star, kernel):
        cluster, alloc, sinks = _single_proc_setup(star, kernel=kernel)
        _drive(cluster, alloc, [(0, 0)])  # select hub for partition 0
        assert alloc.unallocated == 0
        assert sorted(sinks[0].edges()) == list(range(8))

    def test_new_boundary_with_drest(self, path4, kernel):
        cluster, alloc, sinks = _single_proc_setup(path4, kernel=kernel)
        _drive(cluster, alloc, [(1, 0)])  # select middle vertex 1
        boundary = sinks[0].boundary()
        # neighbours 0 (Drest 0, omitted) and 2 (Drest 1).
        assert boundary == {2: 1}

    def test_conflict_resolved_locally(self, path4, kernel):
        """Two partitions select the two endpoints of edge (1,2): only
        one gets it; both allocations remain edge-disjoint."""
        cluster, alloc, sinks = _single_proc_setup(path4, kernel=kernel)
        _drive(cluster, alloc, [(1, 0), (2, 1)])
        e0 = sinks[0].edges()
        e1 = sinks[1].edges()
        assert set(e0).isdisjoint(e1)
        assert len(e0) + len(e1) == 3  # all of the path's edges

    def test_vertex_replicas_accumulate_partitions(self, star, kernel):
        cluster, alloc, sinks = _single_proc_setup(star, kernel=kernel)
        _drive(cluster, alloc, [(1, 0), (2, 1)])
        hub = alloc._vindex[0]
        assert alloc.vertex_parts[hub] == {0, 1}


class TestTwoHopAllocation:
    def test_triangle_closure(self, triangle, kernel):
        """Selecting vertex 0 allocates (0,1),(0,2) one-hop and (1,2)
        two-hop."""
        cluster, alloc, sinks = _single_proc_setup(triangle, kernel=kernel)
        _drive(cluster, alloc, [(0, 0)])
        assert sorted(sinks[0].edges()) == [0, 1, 2]
        assert alloc.unallocated == 0

    def test_two_hop_disabled(self, triangle, kernel):
        cluster, alloc, sinks = _single_proc_setup(triangle, two_hop=False, kernel=kernel)
        _drive(cluster, alloc, [(0, 0)])
        assert len(sinks[0].edges()) == 2
        assert alloc.unallocated == 1

    def test_two_hop_goes_to_least_loaded(self, kernel):
        """When both endpoints share two partitions, the edge goes to
        the one with fewer local edges."""
        # Square 0-1-2-3 plus diagonal (1,3).
        g = CSRGraph(np.array([[0, 1], [1, 2], [2, 3], [0, 3], [1, 3]]))
        cluster, alloc, sinks = _single_proc_setup(g, num_partitions=2, kernel=kernel)
        # Select 0 for p0 (takes (0,1),(0,3)); then 2 for p1 (takes
        # (1,2),(2,3)); now 1 and 3 both belong to {p0, p1}; the
        # diagonal (1,3) goes to the lighter partition (tie -> p0).
        _drive(cluster, alloc, [(0, 0), (2, 1)])
        # canonical order: (0,1),(0,3),(1,2),(1,3),(2,3) -> diagonal eid 2
        edges = sorted(g.edges.tolist())
        assert edges[3] == [1, 3]
        owner = alloc.alloc[3]
        assert owner in (0, 1)
        assert alloc.unallocated == 0


class TestMultiProcessSync:
    def test_sync_propagates_vertex_partitions(self, kernel):
        """A vertex allocated on one process becomes visible on its
        replica processes after the sync phase."""
        g = CSRGraph(np.array([[0, 1], [1, 2], [2, 3]]))
        cluster = SimulatedCluster()
        placement = Hash2DPlacement(2, seed=0)
        homes = placement.place_edges(g.edges)
        allocs = [cluster.add_process(AllocationProcess(
            k, g, np.flatnonzero(homes == k), placement,
            kernel=kernel)) for k in range(2)]
        for p in range(2):
            _Sink(cluster, p)

        driver = cluster.process(("expansion", 0))
        for proc in placement.replica_processes(1):
            driver.send(("alloc", proc), TAG_SELECT, [(1, 0)])
        cluster.barrier()
        for a in allocs:
            a.one_hop_and_sync()
        cluster.barrier()
        for a in allocs:
            a.two_hop_and_report()
        cluster.barrier()

        # Vertex 1's one-hop neighbours are 0 and 2; whichever processes
        # hold them must agree that they belong to partition 0.
        for a in allocs:
            for gv in (0, 2):
                lv = a._vindex.get(gv)
                if lv is not None and a.rest_degree[lv] >= 0:
                    covered = a.vertex_parts[lv]
                    # vertex 2 neighbours an allocated edge -> {0}
                    if gv == 2:
                        assert covered == {0}

    def test_memory_reported(self, small_rmat, kernel):
        cluster, alloc, _ = _single_proc_setup(small_rmat, kernel=kernel)
        stats = cluster.stats.stats_for(alloc.pid)
        assert stats.peak_resident_bytes > 0
