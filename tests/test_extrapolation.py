"""Unit tests for the trillion-edge cost-model extrapolation."""

import pytest

from repro.bench.extrapolation import (
    TRILLION_EDGE_CONFIG,
    CostModel,
    extrapolate,
    fit_cost_model,
)


def _synthetic_rows(a=1e-6, b=0.05, c=0.2):
    """Rows generated from a known model (exact fit expected).

    The (machines, edges) pairs deliberately avoid edges/machines being
    proportional to machines — that would make the design matrix
    rank-deficient and the fit non-identifiable.
    """
    rows = []
    for machines, edges in ((2, 40_000), (4, 100_000), (8, 640_000),
                            (16, 1_000_000)):
        rows.append({
            "machines": machines,
            "edges": edges,
            "elapsed_seconds": a * edges / machines + b * machines + c,
        })
    return rows


class TestCostModel:
    def test_predict(self):
        model = CostModel(1e-6, 0.1, 1.0)
        assert model.predict_seconds(1_000_000, 10) == pytest.approx(
            0.1 + 1.0 + 1.0)

    def test_predict_validation(self):
        model = CostModel(1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            model.predict_seconds(10, 0)
        with pytest.raises(ValueError):
            model.predict_seconds(-1, 2)


class TestFit:
    def test_recovers_known_coefficients(self):
        model = fit_cost_model(_synthetic_rows(a=2e-6, b=0.03, c=0.5))
        assert model.per_edge_per_machine == pytest.approx(2e-6, rel=1e-6)
        assert model.per_machine == pytest.approx(0.03, rel=1e-6)
        assert model.fixed == pytest.approx(0.5, rel=1e-6)

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            fit_cost_model(_synthetic_rows()[:2])

    def test_clamps_negative_coefficients(self):
        rows = [
            {"machines": 2, "edges": 100, "elapsed_seconds": 1.0},
            {"machines": 4, "edges": 100, "elapsed_seconds": 0.2},
            {"machines": 8, "edges": 100, "elapsed_seconds": 0.05},
        ]
        model = fit_cost_model(rows)
        assert model.per_edge_per_machine >= 0
        assert model.per_machine >= 0
        assert model.fixed >= 0


class TestExtrapolate:
    def test_defaults_to_trillion_config(self):
        model = CostModel(1e-9, 0.01, 0.0)
        out = extrapolate(model)
        assert out["edges"] == TRILLION_EDGE_CONFIG["edges"]
        assert out["machines"] == 256
        assert out["paper_minutes"] == pytest.approx(69.7)
        assert out["predicted_minutes"] == pytest.approx(
            out["predicted_seconds"] / 60.0)

    def test_custom_target(self):
        model = CostModel(0.0, 1.0, 0.0)
        out = extrapolate(model, edges=10, machines=3)
        assert out["predicted_seconds"] == pytest.approx(3.0)

    def test_weak_scaling_shape(self):
        """Under the fitted structure, fixed per-machine load + growing
        machines => time grows linearly in machines (Fig 10j)."""
        model = CostModel(1e-6, 0.05, 0.1)
        per_machine_edges = 1_000_000
        times = [model.predict_seconds(per_machine_edges * m, m)
                 for m in (4, 16, 64)]
        assert times[0] < times[1] < times[2]
        # growth dominated by the linear term
        assert (times[2] - times[1]) > (times[1] - times[0])
