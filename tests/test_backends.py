"""Execution-backend equivalence pins.

The contract of :mod:`repro.cluster.backends`: the ``simulated``,
``threads`` and ``processes`` backends run the *same* Process/barrier
programs and must be observationally identical — bit-identical
``assignment`` arrays and identical message/byte/barrier/memory
accounting totals — for DNE and SNE, under both kernels, at |P| well
below and at the dense-membership width.  Wall clock is the only thing
a backend may change.

Also covered: the outbox replay protocol in isolation (threads ==
inline for every payload shape), the shared-memory arena round trip,
and crash propagation — a step that raises on a parallel backend must
surface as :class:`WorkerStepError` naming the partition, promptly,
with no hang and no orphaned workers.

Run with ``--workers N`` (root conftest option; default 2, CI runs 4).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.backends import (BACKENDS, ProcessesBackend,
                                    ShmArena, ThreadsBackend,
                                    WorkerProgram, WorkerStepError,
                                    create_backend, validate_backend)
from repro.cluster.runtime import Process, SimulatedCluster
from repro.core.distributed_ne import DistributedNE
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.partitioners.sne import SNEPartitioner

PARALLEL = ("threads", "processes")


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return CSRGraph(rmat_edges(9, 6, seed=42))


@pytest.fixture
def workers(request) -> int:
    return request.config.getoption("--workers")


def _run_dne(graph, partitions, kernel, backend, workers):
    return DistributedNE(partitions, seed=0, kernel=kernel,
                         backend=backend, workers=workers).partition(graph)


#: extra keys that must be identical across backends (everything
#: deterministic: traffic, ops, memory, protocol counters, and the
#: superstep ledger — empty-mailbox short-circuits are driver
#: decisions, so executed/skipped step counts cannot depend on the
#: backend or on fused vs per-process dispatch)
_PINNED_EXTRA = ("cluster", "ops_one_hop", "ops_two_hop", "mem_score",
                 "membership", "model_selection_ops",
                 "model_allocation_ops", "random_seed_requests",
                 "remote_seed_requests", "steps_executed",
                 "steps_skipped")


class TestDneBackendEquivalence:
    @pytest.mark.parametrize("kernel", ["vectorized", "python"])
    @pytest.mark.parametrize("partitions", [4, 64])
    def test_backends_bit_identical(self, graph, kernel, partitions,
                                    workers):
        """simulated == threads == processes: assignments and every
        deterministic accounting total, both kernels, |P| ∈ {4, 64}."""
        base = _run_dne(graph, partitions, kernel, "simulated", None)
        for backend in PARALLEL:
            res = _run_dne(graph, partitions, kernel, backend, workers)
            assert np.array_equal(res.assignment, base.assignment), backend
            assert res.iterations == base.iterations, backend
            for key in _PINNED_EXTRA:
                assert res.extra[key] == base.extra[key], (backend, key)

    def test_step_ledger_records_skips(self, graph):
        """Empty-mailbox short-circuits actually fire: a real run both
        executes and skips steps (the cross-backend agreement on the
        exact counts is pinned via _PINNED_EXTRA above)."""
        res = _run_dne(graph, 4, "vectorized", "simulated", None)
        assert res.extra["steps_executed"] > 0
        assert res.extra["steps_skipped"] > 0
        assert res.extra["steps_executed"] == \
            _run_dne(graph, 4, "python", "simulated", None) \
            .extra["steps_executed"]

    def test_min_degree_seed_strategy_identical(self, graph, workers):
        """The min_degree seed scan — SharedSeedSource routing through
        ``seed_vertex_min_degree`` over the shm arrays on the processes
        backend — must stay in lockstep with the in-process lookups
        (every first iteration hits the empty-boundary fallback)."""
        base = DistributedNE(4, seed=0,
                             seed_strategy="min_degree").partition(graph)
        for backend in PARALLEL:
            res = DistributedNE(4, seed=0, seed_strategy="min_degree",
                                backend=backend,
                                workers=workers).partition(graph)
            assert np.array_equal(res.assignment, base.assignment), backend
            assert res.extra["cluster"] == base.extra["cluster"], backend

    def test_history_identical(self, graph, workers):
        """The per-iteration trace (Figure 6 series) survives gathering
        through worker boundaries."""
        base = DistributedNE(4, seed=0, collect_history=True).partition(graph)
        for backend in PARALLEL:
            res = DistributedNE(4, seed=0, collect_history=True,
                                backend=backend,
                                workers=workers).partition(graph)
            assert res.extra["history"] == base.extra["history"], backend


class TestSneBackendEquivalence:
    @pytest.mark.parametrize("kernel", ["vectorized", "python"])
    @pytest.mark.parametrize("partitions", [4, 64])
    def test_backends_bit_identical(self, graph, kernel, partitions,
                                    workers):
        base = SNEPartitioner(partitions, seed=0, kernel=kernel).partition(
            graph)
        for backend in PARALLEL:
            res = SNEPartitioner(partitions, seed=0, kernel=kernel,
                                 backend=backend,
                                 workers=workers).partition(graph)
            assert np.array_equal(res.assignment, base.assignment), backend
            assert res.extra["state_bytes"] == base.extra["state_bytes"]
            assert res.extra["buffer_capacity"] == \
                base.extra["buffer_capacity"]


# ----------------------------------------------------------------------
# Superstep protocol in isolation
# ----------------------------------------------------------------------
class _EchoProcess(Process):
    """Sends one message of every plane/payload shape per step."""

    def step(self, round_no: int):
        role, k = self.pid
        peer = ("echo", (k + 1) % 3)
        self.send(peer, "eager", [(k, round_no)])
        self.send_batched(peer, "bulk",
                          np.array([[k, round_no]], dtype=np.int64))
        self.send_fanout("fan", [(("echo", j), (k, j)) for j in range(3)])
        self.set_resident("state", 64 * (round_no + 1))
        self.account_rpc_pair(peer, 8)
        got = self.receive("bulk")
        return len(got)


def _drive_echo(backend_name, workers):
    cluster = SimulatedCluster()
    procs = [cluster.add_process(_EchoProcess(("echo", k)))
             for k in range(3)]
    backend = create_backend(backend_name, workers)
    backend.attach(cluster, procs)
    try:
        values = []
        for round_no in range(3):
            res = backend.run_superstep(
                [(p.pid, "step", (round_no,)) for p in procs])
            cluster.barrier()
            values.append([res[p.pid].value for p in procs])
    finally:
        backend.close()
    return values, cluster.stats.summary(), \
        {repr(pid): (s.messages_sent, s.bytes_sent, s.messages_received,
                     s.bytes_received, s.send_batches, s.receive_batches,
                     s.peak_resident_bytes)
         for pid, s in cluster.stats.per_process.items()}


class TestOutboxReplay:
    def test_threads_replay_matches_inline(self, workers):
        """Every outbox entry kind (eager send, batched send, fanout,
        resident report, RPC pair) replays to the identical cluster
        state and per-process counters."""
        base = _drive_echo("simulated", None)
        assert _drive_echo("threads", workers) == base


# ----------------------------------------------------------------------
# Crash propagation
# ----------------------------------------------------------------------
class _BoomProcess(Process):
    def step(self):
        if self.pid == ("boom", 1):
            raise RuntimeError("injected failure in partition 1")
        return "ok"


class _BoomProgram(WorkerProgram):
    def build(self, owned_pids, views):
        return {pid: _BoomProcess(pid) for pid in owned_pids}


class TestCrashPropagation:
    def _pids(self):
        return [("boom", k) for k in range(3)]

    def test_threads_surfaces_pid(self, workers):
        cluster = SimulatedCluster()
        procs = [cluster.add_process(_BoomProcess(pid))
                 for pid in self._pids()]
        backend = ThreadsBackend(workers)
        backend.attach(cluster, procs)
        try:
            with pytest.raises(WorkerStepError, match=r"\('boom', 1\)"):
                backend.run_superstep(
                    [(pid, "step", ()) for pid in self._pids()])
        finally:
            backend.close()

    def test_processes_surfaces_pid_no_hang(self, workers):
        """A worker exception must come back as WorkerStepError naming
        the partition — and close() must still tear the workers down."""
        cluster = SimulatedCluster()
        for pid in self._pids():
            cluster.add_process(Process(pid))
        backend = ProcessesBackend(workers)
        backend.start(cluster, _BoomProgram(),
                      {pid: i % workers
                       for i, pid in enumerate(self._pids())}, {})
        try:
            with pytest.raises(WorkerStepError) as excinfo:
                backend.run_superstep(
                    [(pid, "step", ()) for pid in self._pids()])
            assert "('boom', 1)" in str(excinfo.value)
            assert "injected failure in partition 1" in excinfo.value.detail
        finally:
            backend.close()
        assert not backend._procs_mp  # workers joined and cleared


# ----------------------------------------------------------------------
# Shared-memory arena
# ----------------------------------------------------------------------
class TestShmArena:
    def test_round_trip_and_views(self):
        arrays = {
            "a": np.arange(17, dtype=np.int64),
            "b": np.zeros((3, 2), dtype=np.int32),
            "c": np.array([], dtype=np.float64),
        }
        arena = ShmArena.create(arrays)
        try:
            attached = ShmArena.attach(arena.spec())
            try:
                for name, arr in arrays.items():
                    view = attached.array(name)
                    assert view.dtype == arr.dtype
                    assert view.shape == arr.shape
                    assert np.array_equal(view, arr)
                # Writes through one attachment are visible in the other.
                attached.array("a")[0] = 99
                assert arena.array("a")[0] == 99
            finally:
                attached.close()
        finally:
            arena.close()
            arena.unlink()


class TestValidation:
    def test_backend_names(self):
        for name in BACKENDS:
            assert validate_backend(name) == name
        with pytest.raises(ValueError, match="backend must be one of"):
            validate_backend("mpi")
        with pytest.raises(ValueError, match="backend must be one of"):
            DistributedNE(4, backend="mpi")
        with pytest.raises(ValueError, match="backend must be one of"):
            SNEPartitioner(4, backend="mpi")

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ThreadsBackend(0)
        with pytest.raises(ValueError):
            ProcessesBackend(0)
        # Fail-fast at construction, not deep inside the run.
        with pytest.raises(ValueError, match="workers"):
            DistributedNE(4, backend="threads", workers=0)
        with pytest.raises(ValueError, match="workers"):
            SNEPartitioner(4, backend="processes", workers=-1)
