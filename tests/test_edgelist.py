"""Unit tests for repro.graph.edgelist."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.edgelist import (
    canonical_edges,
    edges_from_pairs,
    load_edges_tsv,
    num_vertices,
    random_permute_edges,
    relabel_compact,
    save_edges_tsv,
    vertex_ids,
)


class TestEdgesFromPairs:
    def test_list_of_tuples(self):
        arr = edges_from_pairs([(0, 1), (2, 3)])
        assert arr.shape == (2, 2)
        assert arr.dtype == np.int64

    def test_empty(self):
        arr = edges_from_pairs([])
        assert arr.shape == (0, 2)

    def test_passthrough_array(self):
        src = np.array([[1, 2]], dtype=np.int64)
        assert edges_from_pairs(src).shape == (1, 2)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            edges_from_pairs([(1, 2, 3)])


class TestCanonicalEdges:
    def test_orients_rows(self):
        out = canonical_edges(np.array([[5, 2], [1, 3]]))
        assert (out[:, 0] <= out[:, 1]).all()

    def test_removes_self_loops(self):
        out = canonical_edges(np.array([[1, 1], [0, 2]]))
        assert len(out) == 1
        assert out[0].tolist() == [0, 2]

    def test_dedups_both_orientations(self):
        out = canonical_edges(np.array([[0, 1], [1, 0], [0, 1]]))
        assert len(out) == 1

    def test_sorted_lexicographically(self):
        out = canonical_edges(np.array([[3, 4], [0, 9], [0, 2]]))
        assert out.tolist() == [[0, 2], [0, 9], [3, 4]]

    def test_all_self_loops_gives_empty(self):
        out = canonical_edges(np.array([[1, 1], [2, 2]]))
        assert out.shape == (0, 2)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                    max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_canonical_is_idempotent(self, pairs):
        once = canonical_edges(edges_from_pairs(pairs))
        twice = canonical_edges(once)
        assert np.array_equal(once, twice)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                    min_size=1, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_canonical_preserves_edge_set(self, pairs):
        out = canonical_edges(edges_from_pairs(pairs))
        expected = {(min(u, v), max(u, v)) for u, v in pairs if u != v}
        assert {tuple(row) for row in out.tolist()} == expected


class TestRelabelAndIds:
    def test_relabel_compact_dense_range(self):
        edges = np.array([[10, 20], [20, 30]])
        new, old = relabel_compact(edges)
        assert set(np.unique(new)) == {0, 1, 2}
        assert old.tolist() == [10, 20, 30]

    def test_relabel_roundtrip(self):
        edges = canonical_edges(np.array([[100, 7], [7, 55]]))
        new, old = relabel_compact(edges)
        restored = old[new]
        assert np.array_equal(np.sort(restored, axis=1),
                              np.sort(edges, axis=1))

    def test_num_vertices(self):
        assert num_vertices(np.array([[0, 5]])) == 6
        assert num_vertices(np.empty((0, 2), dtype=np.int64)) == 0

    def test_vertex_ids(self):
        ids = vertex_ids(np.array([[3, 1], [1, 7]]))
        assert ids.tolist() == [1, 3, 7]


class TestPermuteAndIO:
    def test_permutation_is_deterministic_per_seed(self):
        edges = canonical_edges(np.array([[0, 1], [1, 2], [2, 3], [3, 4]]))
        a = random_permute_edges(edges, seed=5)
        b = random_permute_edges(edges, seed=5)
        assert np.array_equal(a, b)

    def test_permutation_preserves_rows(self):
        edges = canonical_edges(np.array([[0, 1], [1, 2], [2, 3]]))
        out = random_permute_edges(edges, seed=1)
        assert sorted(map(tuple, out.tolist())) == sorted(
            map(tuple, edges.tolist()))

    def test_tsv_roundtrip(self, tmp_path):
        edges = canonical_edges(np.array([[0, 1], [2, 5], [1, 4]]))
        path = tmp_path / "edges.tsv"
        save_edges_tsv(path, edges)
        loaded = load_edges_tsv(path)
        assert np.array_equal(loaded, edges)

    def test_tsv_skips_comments(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("# comment\n0\t1\n\n2\t3\n")
        loaded = load_edges_tsv(path)
        assert loaded.tolist() == [[0, 1], [2, 3]]
